//! Causal-tracing overhead baseline: the instrumented simulation's ns/round
//! with the tracer detached vs. attached (`BENCH_PR9.json`; format
//! documented in `DESIGN.md` §14).
//!
//! Two configurations are timed per grid size, both with a live
//! [`SimTelemetry`] streaming round events into an in-memory buffer — so
//! the delta isolates exactly what tracing adds on top of telemetry:
//!
//! * **off** — telemetry only: per-round counters, histograms, and the
//!   ordinary event stream. This is the configuration `BENCH_PR5.json`'s
//!   "on" column already guards, one layer up the stack.
//! * **on** — a [`Tracer`] attached via `Simulation::with_tracer`: the
//!   engine's per-phase round trace fills, and every round additionally
//!   emits its causal span tree (round → phase → shard/cell leaves).

use std::time::Instant;

use cellflow_core::{Params, SystemConfig};
use cellflow_grid::{CellId, GridDims};
use cellflow_sim::{Simulation, SimTelemetry};
use cellflow_telemetry::{EventLog, Registry, SharedBuffer, Tracer};

use crate::perf::GRID_SIZES;

/// Measured tracing overhead for one grid size.
#[derive(Clone, Debug)]
pub struct TraceOverheadResult {
    /// Scenario key, e.g. `"16x16"`.
    pub name: String,
    /// Grid side length.
    pub n: u16,
    /// Rounds per timed repetition.
    pub rounds: u64,
    /// Median ns/round with telemetry on and the tracer detached.
    pub trace_off_ns_per_round: u64,
    /// Median ns/round with the tracer attached (spans emitted per round).
    pub trace_on_ns_per_round: u64,
    /// `on / off` — the multiplicative cost of causal tracing.
    pub overhead_ratio: f64,
}

/// A full tracing-overhead run over the scenario matrix.
#[derive(Clone, Debug)]
pub struct TraceOverheadReport {
    /// Report format identifier.
    pub schema: String,
    /// `true` for `--quick` runs (fewer rounds/reps, same shape).
    pub quick: bool,
    /// Timed repetitions per configuration (median taken).
    pub reps: usize,
    /// Per-scenario results, in [`GRID_SIZES`] order.
    pub scenarios: Vec<TraceOverheadResult>,
}

fn scenario_config(n: u16) -> SystemConfig {
    SystemConfig::new(
        GridDims::square(n),
        CellId::new(1, n - 1),
        Params::from_milli(250, 50, 200).expect("paper parameters are valid"),
    )
    .expect("target is in bounds")
    .with_source(CellId::new(1, 0))
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn time_sim(config: &SystemConfig, traced: bool, warmup: u64, rounds: u64) -> u64 {
    let registry = Registry::new();
    let telemetry = SimTelemetry::new(&registry)
        .with_event_log(EventLog::new().with_stream(Box::new(SharedBuffer::new())));
    let mut sim = Simulation::new(config.clone(), 1).with_telemetry(telemetry);
    if traced {
        sim = sim.with_tracer(Tracer::new(1));
    }
    sim.run(warmup);
    let start = Instant::now();
    sim.run(rounds);
    (start.elapsed().as_nanos() / rounds as u128) as u64
}

/// Runs the tracing-overhead matrix. `quick` shrinks rounds and repetitions
/// (for CI smoke and `bench --check`) while keeping the report shape
/// identical.
pub fn run(quick: bool) -> TraceOverheadReport {
    let (rounds, reps, warmup) = if quick { (120, 2, 60) } else { (600, 5, 300) };
    let scenarios = GRID_SIZES
        .iter()
        .map(|&n| {
            let config = scenario_config(n);
            let off = median(
                (0..reps)
                    .map(|_| time_sim(&config, false, warmup, rounds))
                    .collect(),
            );
            let on = median(
                (0..reps)
                    .map(|_| time_sim(&config, true, warmup, rounds))
                    .collect(),
            );
            TraceOverheadResult {
                name: format!("{n}x{n}"),
                n,
                rounds,
                trace_off_ns_per_round: off,
                trace_on_ns_per_round: on,
                overhead_ratio: on as f64 / off.max(1) as f64,
            }
        })
        .collect();
    TraceOverheadReport {
        schema: "cellflow-bench-trace-v1".to_string(),
        quick,
        reps,
        scenarios,
    }
}

impl TraceOverheadReport {
    /// Renders the report as pretty-printed JSON, keys in a fixed order
    /// (hand-rolled; the workspace builds without a JSON dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{}\",\n", self.schema));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"reps\": {},\n", self.reps));
        s.push_str("  \"scenarios\": [\n");
        for (k, sc) in self.scenarios.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", sc.name));
            s.push_str(&format!("      \"n\": {},\n", sc.n));
            s.push_str(&format!("      \"rounds\": {},\n", sc.rounds));
            s.push_str(&format!(
                "      \"trace_off_ns_per_round\": {},\n",
                sc.trace_off_ns_per_round
            ));
            s.push_str(&format!(
                "      \"trace_on_ns_per_round\": {},\n",
                sc.trace_on_ns_per_round
            ));
            s.push_str(&format!("      \"overhead_ratio\": {:.3}\n", sc.overhead_ratio));
            s.push_str(if k + 1 < self.scenarios.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_telemetry::Json;

    #[test]
    fn quick_run_produces_well_formed_report() {
        let report = run(true);
        assert!(report.quick);
        assert_eq!(report.scenarios.len(), GRID_SIZES.len());
        for sc in &report.scenarios {
            assert!(sc.trace_off_ns_per_round > 0);
            assert!(sc.trace_on_ns_per_round > 0);
            assert!(sc.overhead_ratio > 0.0);
        }
        let json = report.to_json();
        let parsed = Json::parse(&json).expect("report is valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("cellflow-bench-trace-v1")
        );
        assert_eq!(
            parsed.get("scenarios").and_then(Json::as_arr).map(|a| a.len()),
            Some(GRID_SIZES.len())
        );
    }
}
