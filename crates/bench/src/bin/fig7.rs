//! Regenerates the paper's Figure 7: throughput vs safety spacing `rs` for
//! velocities 0.05–0.25, on the 8×8 grid with `l = 0.25`, `K = 2500`.
//!
//! Usage: `cargo run --release -p cellflow-bench --bin fig7 [K]`

use cellflow_bench::{fig7, k_from_args};
use cellflow_sim::sweep::default_threads;
use cellflow_sim::table::{format_table, to_csv};

fn main() {
    let k = k_from_args(2_500);
    let series = fig7(k, default_threads());
    println!("Figure 7: throughput vs rs (8x8, l=0.25, K={k})\n");
    println!("{}", format_table("rs", &series));
    eprintln!("{}", to_csv("rs", &series));
}
