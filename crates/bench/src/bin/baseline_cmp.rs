//! Ablation B: distributed protocol vs an omniscient centralized controller
//! with identical physics, over the Figure 7 `rs` sweep.
//!
//! Usage: `cargo run --release -p cellflow-bench --bin baseline_cmp [K]`

use cellflow_bench::{baseline_comparison, k_from_args};
use cellflow_sim::sweep::default_threads;
use cellflow_sim::table::format_table;

fn main() {
    let k = k_from_args(2_500);
    let (dist, central) = baseline_comparison(k, default_threads());
    println!("Ablation: distributed vs centralized (8x8, l=0.25, v=0.2, K={k})\n");
    println!("{}", format_table("rs", &[dist, central]));
}
