//! Regenerates the flight-recording overhead baseline (`BENCH_PR10.json`):
//! ns/round of the simulation with the recorder detached vs attached, over
//! the fixed grid matrix.
//!
//! Usage: `cargo run --release -p cellflow-bench --bin recording_overhead \
//!   [--quick] [OUT.json]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let report = cellflow_bench::recording_overhead::run(quick);
    println!(
        "{:<8} {:>12} {:>12} {:>9} {:>9}",
        "scenario", "off ns/rd", "on ns/rd", "overhead", "bytes/rd"
    );
    for sc in &report.scenarios {
        println!(
            "{:<8} {:>12} {:>12} {:>8.3}x {:>9}",
            sc.name,
            sc.recording_off_ns_per_round,
            sc.recording_on_ns_per_round,
            sc.overhead_ratio,
            sc.bytes_per_round
        );
    }
    std::fs::write(&out, report.to_json()).expect("write report");
    eprintln!("wrote {out}");
}
