//! The Section IV observation that throughput is independent of path length:
//! throughput vs straight-path length at `v = 0.2`.
//!
//! Usage: `cargo run --release -p cellflow-bench --bin path_length [K]`

use cellflow_bench::{k_from_args, path_length};
use cellflow_sim::sweep::default_threads;
use cellflow_sim::table::format_table;

fn main() {
    let k = k_from_args(2_500);
    let series = path_length(k, default_threads());
    println!("Throughput vs path length (8x8, l=0.25, rs=0.05, K={k})\n");
    println!("{}", format_table("len", &[series]));
}
