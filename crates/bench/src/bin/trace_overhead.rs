//! Regenerates the causal-tracing overhead baseline (`BENCH_PR9.json`):
//! ns/round of the instrumented simulation with the tracer detached vs
//! attached, over the fixed grid matrix.
//!
//! Usage: `cargo run --release -p cellflow-bench --bin trace_overhead \
//!   [--quick] [OUT.json]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());
    let report = cellflow_bench::trace_overhead::run(quick);
    println!(
        "{:<8} {:>12} {:>12} {:>9}",
        "scenario", "off ns/rd", "on ns/rd", "overhead"
    );
    for sc in &report.scenarios {
        println!(
            "{:<8} {:>12} {:>12} {:>8.3}x",
            sc.name, sc.trace_off_ns_per_round, sc.trace_on_ns_per_round, sc.overhead_ratio
        );
    }
    std::fs::write(&out, report.to_json()).expect("write report");
    eprintln!("wrote {out}");
}
