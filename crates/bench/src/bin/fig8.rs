//! Regenerates the paper's Figure 8: throughput vs number of turns along a
//! length-8 path, `rs = 0.05`, four `(l, v)` series, `K = 2500`.
//!
//! Usage: `cargo run --release -p cellflow-bench --bin fig8 [K]`

use cellflow_bench::{fig8, k_from_args};
use cellflow_sim::sweep::default_threads;
use cellflow_sim::table::{format_table, to_csv};

fn main() {
    let k = k_from_args(2_500);
    let series = fig8(k, default_threads());
    println!("Figure 8: throughput vs turns (8x8, rs=0.05, path length 8, K={k})\n");
    println!("{}", format_table("turns", &series));
    eprintln!("{}", to_csv("turns", &series));
}
