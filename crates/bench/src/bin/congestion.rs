//! Congestion sweep (this repository's addition, motivated by the paper's
//! §I): throughput and blocked signals as offered load grows from one to
//! eight injecting sources feeding a single sink.
//!
//! Usage: `cargo run --release -p cellflow-bench --bin congestion [K]`

use cellflow_bench::{congestion, k_from_args};
use cellflow_sim::sweep::default_threads;
use cellflow_sim::table::format_table;

fn main() {
    let k = k_from_args(2_500);
    let (throughput, blocked) = congestion(k, default_threads());
    println!("Congestion: offered load vs delivered throughput (8x8, l=0.2, v=0.2, K={k})\n");
    println!("{}", format_table("sources", &[throughput, blocked]));
}
