//! Regenerates the paper's Figure 9: throughput vs failure rate `pf` for
//! recovery rates 0.05–0.2, under per-round random fail/recover,
//! `rs = 0.05, l = 0.2, v = 0.2`, `K = 20000`.
//!
//! Usage: `cargo run --release -p cellflow-bench --bin fig9 [K]`

use cellflow_bench::{fig9, k_from_args};
use cellflow_sim::sweep::default_threads;
use cellflow_sim::table::{format_table, to_csv};

fn main() {
    let k = k_from_args(20_000);
    let series = fig9(k, default_threads(), 3);
    println!("Figure 9: throughput vs pf (8x8, rs=0.05, l=0.2, v=0.2, K={k}, 3 seeds)\n");
    println!("{}", format_table("pf", &series));
    eprintln!("{}", to_csv("pf", &series));
}
