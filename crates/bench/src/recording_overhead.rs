//! Flight-recording overhead baseline: the simulation's ns/round with the
//! recorder detached vs. attached (`BENCH_PR10.json`; format documented in
//! `DESIGN.md` §15).
//!
//! Two configurations are timed per grid size:
//!
//! * **off** — the bare simulation. Recording-off is the configuration
//!   every other baseline measures; the engine's step hook is a single
//!   `Option` check, and the zero-allocation guarantee `BENCH_PR3.json`
//!   pins already covers it.
//! * **on** — a [`Recorder`](cellflow_core::snapshot::Recorder) attached
//!   via `Simulation::with_recorder`: every round the engine's state is
//!   delta-encoded (a full keyframe every
//!   [`DEFAULT_KEYFRAME_INTERVAL`] rounds) and framed with an FNV-1a
//!   checksum into the in-memory recording buffer.

use std::time::Instant;

use cellflow_core::snapshot::Recorder;
use cellflow_core::{Params, SystemConfig};
use cellflow_grid::{CellId, GridDims};
use cellflow_sim::Simulation;

use crate::perf::GRID_SIZES;

/// The keyframe cadence the baseline records at — the CLI's default.
pub const DEFAULT_KEYFRAME_INTERVAL: u64 = 16;

/// Measured recording overhead for one grid size.
#[derive(Clone, Debug)]
pub struct RecordingOverheadResult {
    /// Scenario key, e.g. `"16x16"`.
    pub name: String,
    /// Grid side length.
    pub n: u16,
    /// Rounds per timed repetition.
    pub rounds: u64,
    /// Median ns/round with no recorder attached.
    pub recording_off_ns_per_round: u64,
    /// Median ns/round with the recorder encoding every round.
    pub recording_on_ns_per_round: u64,
    /// `on / off` — the multiplicative cost of recording.
    pub overhead_ratio: f64,
    /// Recording bytes buffered per round (amortized, integer-truncated) —
    /// pins the encoding's compactness, not just its speed.
    pub bytes_per_round: u64,
}

/// A full recording-overhead run over the scenario matrix.
#[derive(Clone, Debug)]
pub struct RecordingOverheadReport {
    /// Report format identifier.
    pub schema: String,
    /// `true` for `--quick` runs (fewer rounds/reps, same shape).
    pub quick: bool,
    /// Timed repetitions per configuration (median taken).
    pub reps: usize,
    /// Per-scenario results, in [`GRID_SIZES`] order.
    pub scenarios: Vec<RecordingOverheadResult>,
}

fn scenario_config(n: u16) -> SystemConfig {
    SystemConfig::new(
        GridDims::square(n),
        CellId::new(1, n - 1),
        Params::from_milli(250, 50, 200).expect("paper parameters are valid"),
    )
    .expect("target is in bounds")
    .with_source(CellId::new(1, 0))
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Times one configuration; returns `(ns_per_round, recording_bytes)` with
/// `recording_bytes` zero when no recorder is attached.
fn time_sim(config: &SystemConfig, recorded: bool, warmup: u64, rounds: u64) -> (u64, u64) {
    let mut sim = Simulation::new(config.clone(), 1);
    if recorded {
        let recorder = Box::new(Recorder::for_config(
            config,
            1,
            DEFAULT_KEYFRAME_INTERVAL,
            "bench",
        ));
        sim = sim.with_recorder(recorder);
    }
    sim.run(warmup);
    let start = Instant::now();
    sim.run(rounds);
    let ns = (start.elapsed().as_nanos() / rounds as u128) as u64;
    // Bytes are amortized over every recorded frame (warmup included) —
    // steady-state deltas dominate, so the average pins compactness.
    let bytes = sim
        .take_recorder()
        .map(|r| r.bytes_buffered() as u64 / (warmup + rounds + 1))
        .unwrap_or(0);
    (ns, bytes)
}

/// Runs the recording-overhead matrix. `quick` shrinks rounds and
/// repetitions (for CI smoke and `bench --check`) while keeping the report
/// shape identical.
pub fn run(quick: bool) -> RecordingOverheadReport {
    let (rounds, reps, warmup) = if quick { (120, 2, 60) } else { (600, 5, 300) };
    let scenarios = GRID_SIZES
        .iter()
        .map(|&n| {
            let config = scenario_config(n);
            let off = median(
                (0..reps)
                    .map(|_| time_sim(&config, false, warmup, rounds).0)
                    .collect(),
            );
            let mut bytes = 0;
            let on = median(
                (0..reps)
                    .map(|_| {
                        let (ns, b) = time_sim(&config, true, warmup, rounds);
                        bytes = b;
                        ns
                    })
                    .collect(),
            );
            RecordingOverheadResult {
                name: format!("{n}x{n}"),
                n,
                rounds,
                recording_off_ns_per_round: off,
                recording_on_ns_per_round: on,
                overhead_ratio: on as f64 / off.max(1) as f64,
                bytes_per_round: bytes,
            }
        })
        .collect();
    RecordingOverheadReport {
        schema: "cellflow-bench-recording-v1".to_string(),
        quick,
        reps,
        scenarios,
    }
}

impl RecordingOverheadReport {
    /// Renders the report as pretty-printed JSON, keys in a fixed order
    /// (hand-rolled; the workspace builds without a JSON dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{}\",\n", self.schema));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"reps\": {},\n", self.reps));
        s.push_str("  \"scenarios\": [\n");
        for (k, sc) in self.scenarios.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", sc.name));
            s.push_str(&format!("      \"n\": {},\n", sc.n));
            s.push_str(&format!("      \"rounds\": {},\n", sc.rounds));
            s.push_str(&format!(
                "      \"recording_off_ns_per_round\": {},\n",
                sc.recording_off_ns_per_round
            ));
            s.push_str(&format!(
                "      \"recording_on_ns_per_round\": {},\n",
                sc.recording_on_ns_per_round
            ));
            s.push_str(&format!("      \"overhead_ratio\": {:.3},\n", sc.overhead_ratio));
            s.push_str(&format!("      \"bytes_per_round\": {}\n", sc.bytes_per_round));
            s.push_str(if k + 1 < self.scenarios.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_telemetry::Json;

    #[test]
    fn quick_run_produces_well_formed_report() {
        let report = run(true);
        assert!(report.quick);
        assert_eq!(report.scenarios.len(), GRID_SIZES.len());
        for sc in &report.scenarios {
            assert!(sc.recording_off_ns_per_round > 0);
            assert!(sc.recording_on_ns_per_round > 0);
            assert!(sc.overhead_ratio > 0.0);
            assert!(sc.bytes_per_round > 0, "the recorder buffered nothing");
        }
        let json = report.to_json();
        let parsed = Json::parse(&json).expect("report is valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("cellflow-bench-recording-v1")
        );
        assert_eq!(
            parsed.get("scenarios").and_then(Json::as_arr).map(|a| a.len()),
            Some(GRID_SIZES.len())
        );
    }
}
