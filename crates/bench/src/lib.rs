//! Figure-regeneration harness for the paper's evaluation (Section IV).
//!
//! Each `fig*` function reproduces the data series behind one figure of the
//! paper. The binaries in `src/bin/` print them as tables/CSV at the paper's
//! full `K`; the workspace integration tests call them with smaller `K` and
//! assert the qualitative *shape* (who wins, monotonicity, saturation) that
//! the paper reports. `EXPERIMENTS.md` records paper-vs-measured values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod mega;
pub mod perf;
pub mod recording_overhead;
pub mod telemetry_overhead;
pub mod trace_overhead;

use cellflow_sim::baseline::CentralizedBaseline;
use cellflow_sim::scenario::{
    self, fig7_point, fig7_rs_values, fig7_v_values, fig8_point, fig8_series, fig9_pf_values,
    fig9_point, fig9_pr_values, path_length_series,
};
use cellflow_sim::sweep::parallel_map;
use cellflow_sim::table::Series;

/// Figure 7: throughput vs safety spacing `rs` for each velocity series, at
/// `l = 0.25` on the 8×8 grid (paper: `K = 2500`).
pub fn fig7(k: u64, threads: usize) -> Vec<Series> {
    let vs = fig7_v_values();
    let rss = fig7_rs_values();
    vs.iter()
        .map(|&v| {
            let points = parallel_map(&rss, threads, |&rs| {
                let out = scenario::run_spec(&fig7_point(rs, v), k, 1);
                (rs as f64 / 1_000.0, out.throughput)
            });
            Series::new(format!("v={}", v as f64 / 1_000.0), points)
        })
        .collect()
}

/// Figure 8: throughput vs number of turns (0–6) along length-8 paths, at
/// `rs = 0.05`, for each `(l, v)` series (paper: `K = 2500`).
pub fn fig8(k: u64, threads: usize) -> Vec<Series> {
    let turn_counts: Vec<usize> = (0..=6).collect();
    fig8_series()
        .iter()
        .map(|&(l, v)| {
            let points = parallel_map(&turn_counts, threads, |&turns| {
                let spec = fig8_point(turns, l, v).expect("0–6 turns fit the 8×8 grid");
                let out = scenario::run_spec(&spec, k, 1);
                (turns as f64, out.throughput)
            });
            Series::new(
                format!("l={} v={}", l as f64 / 1_000.0, v as f64 / 1_000.0),
                points,
            )
        })
        .collect()
}

/// Figure 9: throughput vs failure rate `pf` for each recovery rate `pr`,
/// averaged over `seeds` independent runs (paper: `K = 20000`, one run).
pub fn fig9(k: u64, threads: usize, seeds: u64) -> Vec<Series> {
    let pfs = fig9_pf_values();
    let seed_list: Vec<u64> = (1..=seeds.max(1)).collect();
    fig9_pr_values()
        .iter()
        .map(|&pr| {
            let points = parallel_map(&pfs, threads, |&pf| {
                let spec = fig9_point(pf, pr);
                let summary = cellflow_sim::stats::replicated_throughput(&spec, k, &seed_list, 1);
                (pf, summary.mean)
            });
            Series::new(format!("pr={pr}"), points)
        })
        .collect()
}

/// Figure 9 with spread: per `(pf, pr)` point, the full [`Summary`] over the
/// replication seeds — what `EXPERIMENTS.md` records.
///
/// [`Summary`]: cellflow_sim::stats::Summary
pub fn fig9_with_spread(
    k: u64,
    threads: usize,
    seeds: u64,
) -> Vec<(f64, f64, cellflow_sim::stats::Summary)> {
    let seed_list: Vec<u64> = (1..=seeds.max(1)).collect();
    let mut points: Vec<(f64, f64)> = Vec::new();
    for pr in fig9_pr_values() {
        for pf in fig9_pf_values() {
            points.push((pf, pr));
        }
    }
    parallel_map(&points, threads, |&(pf, pr)| {
        let spec = fig9_point(pf, pr);
        (
            pf,
            pr,
            cellflow_sim::stats::replicated_throughput(&spec, k, &seed_list, 1),
        )
    })
}

/// Ablation B: distributed protocol vs the centralized omniscient baseline on
/// the Figure 7 scenario, as a pair of series over `rs`.
pub fn baseline_comparison(k: u64, threads: usize) -> (Series, Series) {
    let rss = fig7_rs_values();
    let distributed = parallel_map(&rss, threads, |&rs| {
        let out = scenario::run_spec(&fig7_point(rs, 200), k, 1);
        (rs as f64 / 1_000.0, out.throughput)
    });
    let centralized = parallel_map(&rss, threads, |&rs| {
        let spec = fig7_point(rs, 200);
        let mut b = CentralizedBaseline::new(spec.config.clone()).with_safety_checks(false);
        b.run(k);
        (rs as f64 / 1_000.0, b.throughput())
    });
    (
        Series::new("distributed", distributed),
        Series::new("centralized", centralized),
    )
}

/// The §IV observation that throughput is independent of path length:
/// throughput vs straight-path length (cells), at `v = 0.2`.
pub fn path_length(k: u64, threads: usize) -> Series {
    let specs = path_length_series(200);
    let points = parallel_map(&specs, threads, |(len, spec)| {
        let out = scenario::run_spec(spec, k, 1);
        (*len as f64, out.throughput)
    });
    Series::new("v=0.2", points)
}

/// The congestion sweep: throughput and blocked-signals-per-round vs the
/// number of injecting sources (offered load). Returns `(throughput,
/// blocked)` series sharing the x axis.
pub fn congestion(k: u64, threads: usize) -> (Series, Series) {
    let loads: Vec<u16> = (1..=8).collect();
    let results = parallel_map(&loads, threads, |&n| {
        let out = scenario::run_spec(&scenario::congestion_point(n), k, 1);
        (n as f64, out.throughput, out.mean_blocked)
    });
    (
        Series::new(
            "throughput",
            results.iter().map(|&(x, t, _)| (x, t)).collect(),
        ),
        Series::new("blocked", results.iter().map(|&(x, _, b)| (x, b)).collect()),
    )
}

/// Parses `K` (round count) from argv, with a default.
pub fn k_from_args(default: u64) -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shapes_hold_at_small_k() {
        let series = fig7(400, 4);
        assert_eq!(series.len(), 4);
        for s in &series {
            assert_eq!(s.points.len(), 14);
            // Throughput at the smallest rs beats the largest rs.
            assert!(
                s.points[0].1 > s.points.last().unwrap().1,
                "{}: no decreasing trend",
                s.label
            );
        }
        // Fastest velocity dominates slowest at small rs.
        let slow = &series[0]; // v=0.05
        let fast = &series[3]; // v=0.25
        assert!(fast.points[1].1 > slow.points[1].1);
    }

    #[test]
    fn fig9_zero_failures_limit() {
        // With pf → 0 and pr high, throughput approaches the failure-free value.
        let healthy = scenario::run_spec(&scenario::fig9_point(0.0, 0.2), 600, 1).throughput;
        let free = scenario::run_spec(
            &cellflow_sim::scenario::ExperimentSpec {
                failure: cellflow_sim::scenario::FailureSpec::None,
                ..scenario::fig9_point(0.0, 0.2)
            },
            600,
            1,
        )
        .throughput;
        assert!((healthy - free).abs() < 1e-9);
    }

    #[test]
    fn baseline_dominates_distributed() {
        let (dist, central) = baseline_comparison(400, 4);
        let d: f64 = dist.ys().sum();
        let c: f64 = central.ys().sum();
        assert!(c >= d * 0.95, "centralized {c} vs distributed {d}");
    }

    #[test]
    fn congestion_saturates_without_collapse() {
        let (thr, blocked) = congestion(800, 8);
        let ys: Vec<f64> = thr.ys().collect();
        // More offered load never *reduces* delivered throughput by more than
        // noise — the graceful-degradation claim.
        for w in ys.windows(2) {
            assert!(w[1] >= w[0] * 0.93, "throughput collapsed: {ys:?}");
        }
        // And congestion is real: blocking grows with load.
        let bl: Vec<f64> = blocked.ys().collect();
        assert!(bl.last().unwrap() > &bl[0], "no congestion signal: {bl:?}");
    }

    #[test]
    fn path_length_roughly_flat() {
        let s = path_length(800, 4);
        assert!(s.points.len() >= 6);
        // Degenerate lengths 2–3 (source next to the target: no pipeline,
        // insertion-limited) are faster; the paper's independence claim is
        // about the pipelined regime, which starts at length 4.
        let ys: Vec<f64> = s
            .points
            .iter()
            .filter(|&&(len, _)| len >= 4.0)
            .map(|&(_, y)| y)
            .collect();
        let max = ys.iter().cloned().fold(f64::MIN, f64::max);
        let min = ys.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min > 0.0);
        assert!(max / min < 1.1, "path-length dependence too strong: {ys:?}");
    }
}
