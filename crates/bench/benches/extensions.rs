//! Benchmarks of the paper-§V extensions: 3-D airspace throughput, the
//! multi-commodity crossing, and the occupancy-capacity ablation that
//! motivated the multiflow defaults.

use cellflow_core::Params;
use cellflow_cube::{CellId3, Dims3, System3, SystemConfig3};
use cellflow_grid::{CellId, GridDims};
use cellflow_multiflow::{FlowType, MultiConfig, MultiSystem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const ROUNDS: u64 = 250;

fn cube_tower(n: u16) -> SystemConfig3 {
    SystemConfig3::new(
        Dims3::new(n, n, 3),
        CellId3::new(n - 1, n - 1, 2),
        Params::from_milli(200, 50, 150).unwrap(),
    )
    .unwrap()
    .with_source(CellId3::new(0, 0, 0))
}

fn antagonistic_multi(cap: usize) -> MultiConfig {
    MultiConfig::new(
        GridDims::square(7),
        Params::from_milli(200, 50, 150).unwrap(),
    )
    .unwrap()
    .with_flow(FlowType(0), CellId::new(0, 3), CellId::new(6, 3))
    .unwrap()
    .with_flow(FlowType(1), CellId::new(3, 0), CellId::new(3, 6))
    .unwrap()
    .with_flow(FlowType(2), CellId::new(6, 4), CellId::new(0, 4))
    .unwrap()
    .with_cell_capacity(cap)
}

fn bench_cube(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube_rounds");
    group.throughput(Throughput::Elements(ROUNDS));
    group.sample_size(20);
    for n in [4u16, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}x3")),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut sys = System3::new(cube_tower(n));
                    sys.run(ROUNDS);
                    sys.consumed_total()
                });
            },
        );
    }
    group.finish();
}

fn bench_multiflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiflow_rounds");
    group.throughput(Throughput::Elements(ROUNDS));
    group.sample_size(20);
    for types in [1usize, 2, 3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{types}flows")),
            &types,
            |b, &types| {
                b.iter(|| {
                    let mut cfg = MultiConfig::new(
                        GridDims::square(7),
                        Params::from_milli(200, 50, 150).unwrap(),
                    )
                    .unwrap();
                    let flows = [
                        (CellId::new(0, 3), CellId::new(6, 3)),
                        (CellId::new(3, 0), CellId::new(3, 6)),
                        (CellId::new(6, 4), CellId::new(0, 4)),
                    ];
                    for (k, &(s, t)) in flows.iter().take(types).enumerate() {
                        cfg = cfg.with_flow(FlowType(k as u8), s, t).unwrap();
                    }
                    let mut sys = MultiSystem::new(cfg);
                    sys.run(ROUNDS);
                    (0..types as u8)
                        .map(|t| sys.consumed(FlowType(t)))
                        .sum::<u64>()
                });
            },
        );
    }
    group.finish();
}

fn report_capacity_ablation(c: &mut Criterion) {
    // Achieved deliveries per capacity over a long horizon: the fluidity
    // cliff between cap 1 and cap ≥ 2 under antagonistic crossing load.
    for cap in [1usize, 2, 4, 8] {
        let mut sys = MultiSystem::new(antagonistic_multi(cap));
        sys.run(5_000);
        let total: u64 = (0..3u8).map(|t| sys.consumed(FlowType(t))).sum();
        println!("ablation_capacity cap={cap}: {total} delivered over 5000 rounds");
    }
    c.bench_function("ablation_capacity_done", |b| b.iter(|| 0u8));
}

fn report_cell_size_ablation(c: &mut Criterion) {
    // Cell-size ablation on the rectangular tessellation: a 6-cell corridor
    // whose interior cells are stretched. Steady-state throughput turns out
    // to be roughly INDEPENDENT of cell size: wider cells take longer per
    // hop but carry proportionally longer trains of entities per grant (the
    // coupling moves the whole cell's population at once), so the
    // boundary-crossing rate — set by d and v — dominates. Latency of the
    // first delivery does grow with size (see the unit test
    // `wide_cell_takes_longer_to_traverse`).
    use cellflow_geom::Fixed;
    use cellflow_grid::CellId;
    use cellflow_tess::{TessSystem, Tessellation};
    let params = Params::from_milli(250, 50, 200).unwrap();
    for stretch_milli in [1_000i64, 1_500, 2_000, 3_000] {
        let widths = vec![
            Fixed::ONE,
            Fixed::from_milli(stretch_milli),
            Fixed::from_milli(stretch_milli),
            Fixed::from_milli(stretch_milli),
            Fixed::from_milli(stretch_milli),
            Fixed::ONE,
        ];
        let tess = Tessellation::new(widths, vec![Fixed::ONE], params).unwrap();
        let mut sys = TessSystem::new(tess, CellId::new(5, 0), params)
            .unwrap()
            .with_source(CellId::new(0, 0));
        sys.run(2_500);
        println!(
            "ablation_cell_size stretch={}: throughput {:.4}",
            stretch_milli as f64 / 1_000.0,
            sys.consumed_total() as f64 / 2_500.0
        );
    }
    c.bench_function("ablation_cell_size_done", |b| b.iter(|| 0u8));
}

fn bench_deployment_overhead(c: &mut Criterion) {
    // Shared-variable reference vs the real message-passing deployment
    // (threads + channels + barriers), same workload: the price of actually
    // being distributed, per 100 rounds on an 8×8 grid.
    use cellflow_grid::GridDims as GD;
    let config = cellflow_core::SystemConfig::new(
        GD::square(8),
        CellId::new(1, 7),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(1, 0));
    let mut group = c.benchmark_group("deployment");
    group.sample_size(10);
    group.bench_function("reference_100_rounds", |b| {
        b.iter(|| {
            let mut sys = cellflow_core::System::new(config.clone());
            sys.run(100);
            sys.consumed_total()
        });
    });
    group.bench_function("message_passing_100_rounds", |b| {
        b.iter(|| {
            cellflow_net::NetSystem::new(config.clone())
                .expect("no entity budget")
                .run(100)
                .expect("no node panics")
                .consumed
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cube,
    bench_multiflow,
    bench_deployment_overhead,
    report_capacity_ablation,
    report_cell_size_ablation
);
criterion_main!(benches);
