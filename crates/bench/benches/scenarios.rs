//! Scenario benchmarks: simulation speed of each paper experiment (rounds per
//! second of the Figure 7/8/9 configurations), so regressions in the engine
//! show up per-experiment.

use cellflow_sim::scenario::{fig7_point, fig8_point, fig9_point, run_spec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const ROUNDS: u64 = 250;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_rounds");
    group.throughput(Throughput::Elements(ROUNDS));
    group.sample_size(20);
    for v in [50i64, 250] {
        let spec = fig7_point(50, v);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("v{v}")),
            &spec,
            |b, s| {
                b.iter(|| run_spec(s, ROUNDS, 1));
            },
        );
    }
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_rounds");
    group.throughput(Throughput::Elements(ROUNDS));
    group.sample_size(20);
    for turns in [0usize, 6] {
        let spec = fig8_point(turns, 200, 200).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("turns{turns}")),
            &spec,
            |b, s| {
                b.iter(|| run_spec(s, ROUNDS, 1));
            },
        );
    }
    group.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_rounds");
    group.throughput(Throughput::Elements(ROUNDS));
    group.sample_size(20);
    for (pf, pr) in [(0.01, 0.2), (0.05, 0.05)] {
        let spec = fig9_point(pf, pr);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("pf{pf}_pr{pr}")),
            &spec,
            |b, s| {
                b.iter(|| run_spec(s, ROUNDS, 1));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7, bench_fig8, bench_fig9);
criterion_main!(benches);
