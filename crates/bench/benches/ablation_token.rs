//! Ablation A: token policy. Measures (a) per-round cost and (b) achieved
//! throughput of RoundRobin vs Randomized vs the rotation-free FixedPriority,
//! on a two-flow merge — quantifying what the paper's fairness rule
//! (Figure 5, lines 10–12) costs and buys.

use cellflow_core::{Params, SystemConfig, TokenPolicy};
use cellflow_grid::{CellId, GridDims};
use cellflow_sim::Simulation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Two flows (east and north) merging one hop before the target.
fn merge_config(policy: TokenPolicy) -> SystemConfig {
    SystemConfig::new(
        GridDims::square(4),
        CellId::new(2, 1),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(0, 1))
    .with_source(CellId::new(1, 0))
    .with_token_policy(policy)
}

fn bench_token_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("token_policy_merge");
    group.sample_size(20);
    for (name, policy) in [
        ("round_robin", TokenPolicy::RoundRobin),
        ("randomized", TokenPolicy::Randomized { salt: 7 }),
        ("fixed_priority", TokenPolicy::FixedPriority),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            b.iter(|| {
                let mut sim = Simulation::new(merge_config(p), 1).with_safety_checks(false);
                sim.run(300);
                sim.metrics().consumed_total()
            });
        });
    }
    group.finish();
}

fn report_throughput_ablation(c: &mut Criterion) {
    // Not a timing benchmark: run once per policy and print the achieved
    // throughput so `cargo bench` output records the ablation numbers.
    for (name, policy) in [
        ("round_robin", TokenPolicy::RoundRobin),
        ("randomized", TokenPolicy::Randomized { salt: 7 }),
        ("fixed_priority", TokenPolicy::FixedPriority),
    ] {
        let mut sim = Simulation::new(merge_config(policy), 1).with_safety_checks(false);
        sim.run(2_500);
        println!(
            "ablation_token throughput[{name}] = {:.4} (blocked/round {:.2})",
            sim.metrics().throughput(),
            sim.metrics().mean_blocked()
        );
    }
    // Keep criterion happy with a trivial measured function.
    c.bench_function("ablation_report_done", |b| b.iter(|| 0u8));
}

criterion_group!(benches, bench_token_policies, report_throughput_ablation);
criterion_main!(benches);
