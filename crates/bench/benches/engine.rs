//! Engine performance: cost of one `update` round (and its phases) as the
//! grid scales — the systems-level benchmark behind every figure harness.

use cellflow_core::{move_phase, route_phase, signal_phase, update, Params, System, SystemConfig};
use cellflow_grid::{CellId, GridDims};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn loaded_system(n: u16) -> System {
    let params = Params::from_milli(250, 50, 200).unwrap();
    let config = SystemConfig::new(GridDims::square(n), CellId::new(1, n - 1), params)
        .unwrap()
        .with_source(CellId::new(1, 0))
        .with_source(CellId::new(0, 0));
    let mut sys = System::new(config);
    // Warm up: stable routing and a populated pipeline.
    sys.run(4 * n as u64);
    sys
}

fn bench_update_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_round");
    for n in [8u16, 16, 32, 64] {
        let sys = loaded_system(n);
        group.throughput(Throughput::Elements(u64::from(n) * u64::from(n)));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &sys,
            |b, sys| {
                let config = sys.config().clone();
                let state = sys.state().clone();
                b.iter(|| update(&config, &state, 0));
            },
        );
    }
    group.finish();
}

fn bench_phases(c: &mut Criterion) {
    let sys = loaded_system(16);
    let config = sys.config().clone();
    let state = sys.state().clone();
    let routed = route_phase(&config, &state);
    let signaled = signal_phase(&config, &routed, 0);

    let mut group = c.benchmark_group("phases_16x16");
    group.bench_function("route", |b| b.iter(|| route_phase(&config, &state)));
    group.bench_function("signal", |b| b.iter(|| signal_phase(&config, &routed, 0)));
    group.bench_function("move", |b| b.iter(|| move_phase(&config, &signaled)));
    group.finish();
}

fn bench_long_run(c: &mut Criterion) {
    // Whole-simulation cost: 100 rounds of the Figure 7 scenario.
    let mut group = c.benchmark_group("simulation");
    group.sample_size(20);
    group.bench_function("fig7_100_rounds", |b| {
        b.iter(|| {
            let mut sim = cellflow_sim::Simulation::new(
                cellflow_sim::scenario::fig7_point(50, 200).config,
                1,
            )
            .with_safety_checks(false);
            sim.run(100);
            sim.metrics().consumed_total()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_update_round, bench_phases, bench_long_run);
criterion_main!(benches);
