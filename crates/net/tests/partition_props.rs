//! Partition determinism, pinned three ways (the ISSUE-7 proptest suite):
//!
//! 1. a partition campaign's checksummed report is **byte-identical** across
//!    runs of the same seeded scenario;
//! 2. expanding a [`PartitionPlan`] into its per-round schedule is **stable**
//!    — re-expansion reproduces the identical schedule, a longer horizon is
//!    a superset that agrees on every shared round, and every cut reads as
//!    healed at its heal round;
//! 3. the message-passing deployment under a [`LinkFaultTransport`] matches
//!    the shared-variable reference driving the same masks **bit for bit**,
//!    across random *asymmetric* directed-cut schedules (A→B dead while
//!    B→A lives).

use cellflow_core::{FaultPlan, Params, PartitionPlan, System, SystemConfig};
use cellflow_grid::{CellId, GridDims};
use cellflow_net::NetSystem;
use cellflow_sim::partition::{run_partition, PartitionScenario};
use proptest::prelude::*;

fn single_source_config(n: u16) -> SystemConfig {
    SystemConfig::new(
        GridDims::square(n),
        CellId::new(1, n - 1),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(1, 0))
}

/// Directed neighbor of `(i, j)` in direction `d` (0=E, 1=W, 2=N, 3=S),
/// if it stays on the grid.
fn neighbor(dims: GridDims, i: u16, j: u16, d: u8) -> Option<(CellId, CellId)> {
    let from = CellId::new(i, j);
    let to = match d {
        0 if i + 1 < dims.nx() => CellId::new(i + 1, j),
        1 if i > 0 => CellId::new(i - 1, j),
        2 if j + 1 < dims.ny() => CellId::new(i, j + 1),
        3 if j > 0 => CellId::new(i, j - 1),
        _ => return None,
    };
    Some((from, to))
}

/// A random plan of asymmetric directed cuts (each severs one direction of
/// one edge over its own window) plus an optional flaky band.
fn asymmetric_plan(
    n: u16,
    cuts: &[(u16, u16, u8, u64, u64)],
    flaky: Option<(u64, u32, u64)>,
) -> PartitionPlan {
    let dims = GridDims::square(n);
    let mut plan = PartitionPlan::for_grid(dims);
    for &(i, j, d, start, len) in cuts {
        let (i, j) = (i % n, j % n);
        if let Some((from, to)) = neighbor(dims, i, j, d % 4) {
            plan = plan.cut(from, to, start, Some(start + 1 + len));
        }
    }
    if let Some((seed, rate, heal)) = flaky {
        plan = plan.flaky_links(seed, rate % 400, 0, Some(heal.max(1)));
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: the rendered, checksummed campaign report is
    /// byte-identical across two runs of the same scenario.
    #[test]
    fn reports_are_byte_identical_per_seed(
        seed in 0u64..1_000,
        rate in 50u32..350,
        heal in 20u64..60,
    ) {
        let plan = PartitionPlan::for_grid(GridDims::square(4))
            .flaky_links(seed, rate, 5, Some(heal));
        let scenario = PartitionScenario {
            config: single_source_config(4),
            plan,
            base: FaultPlan::new(),
            rounds: heal + 10,
            settle: 40,
            workers: 1,
        };
        let a = run_partition(&scenario).render();
        let b = run_partition(&scenario).render();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.contains("checksum: "));
    }

    /// Property 2: plan expansion is stable — identical on re-expansion,
    /// prefix-consistent across horizons, and healed at the heal round.
    #[test]
    fn expansion_is_stable_and_heals_on_schedule(
        n in 3u16..=5,
        cuts in proptest::collection::vec(
            (0u16..5, 0u16..5, 0u8..4, 0u64..40, 0u64..30),
            1..6,
        ),
        flaky_seed in 0u64..500,
        horizon in 50u64..90,
    ) {
        let plan = asymmetric_plan(n, &cuts, Some((flaky_seed, 200, 45)));
        let first = plan.expand(horizon);
        prop_assert_eq!(&first, &plan.expand(horizon), "re-expansion diverged");

        // A longer horizon agrees with the shorter one on every round both
        // cover; past its own horizon the short schedule reads all-healed.
        let longer = plan.expand(horizon + 25);
        for round in 0..horizon {
            prop_assert_eq!(
                first.mask_row(round),
                longer.mask_row(round),
                "round {} differs across horizons",
                round
            );
        }
        prop_assert!(first.mask_row(horizon + 5).iter().all(|&m| m == 0));

        // Every scripted cut is healed from its heal round on (when the
        // horizon reaches it).
        if let Some(heal) = plan.heal_round() {
            if heal < horizon + 25 {
                prop_assert!(longer.mask_row(heal).iter().all(|&m| m == 0));
                prop_assert!(!longer.active(heal));
            }
        }
    }

    /// Property 3: sim == net under random asymmetric-cut schedules — the
    /// deployment suppressing announcements on the wire is bit-identical to
    /// the engine masking the same slots.
    #[test]
    fn deployment_matches_reference_under_asymmetric_cuts(
        n in 3u16..=5,
        rounds in 20u64..=70,
        cuts in proptest::collection::vec(
            (0u16..5, 0u16..5, 0u8..4, 0u64..50, 0u64..25),
            1..5,
        ),
    ) {
        let cfg = single_source_config(n);
        let plan = asymmetric_plan(n, &cuts, None);
        let report = NetSystem::new(cfg.clone())
            .unwrap()
            .with_partition(plan.clone())
            .run_monitored(rounds, cellflow_core::standard_monitors(&cfg))
            .unwrap();
        prop_assert!(report.violations.is_empty(), "monitors fired: {:?}", report.violations);

        let schedule = plan.expand(rounds);
        let mut reference = System::new(cfg);
        for round in 0..rounds {
            reference.set_link_cuts(schedule.mask_row(round));
            reference.step();
        }
        prop_assert_eq!(&report.state.cells, &reference.state().cells);
        prop_assert_eq!(report.consumed, reference.consumed_total());
        prop_assert_eq!(report.inserted, reference.inserted_total());
    }
}
