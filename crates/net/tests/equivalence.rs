//! Equivalence of the message-passing deployment and the shared-variable
//! reference: the mechanized form of the paper's claim (§II-B) that the
//! discrete-transition-system model faithfully captures a message-passing
//! implementation.

use cellflow_core::{CellState, Params, System, SystemConfig, SystemState};
use cellflow_geom::Point;
use cellflow_grid::{CellId, GridDims};
use cellflow_net::NetSystem;
use cellflow_routing::Dist;
use proptest::prelude::*;

fn single_source_config(n: u16) -> SystemConfig {
    SystemConfig::new(
        GridDims::square(n),
        CellId::new(1, n - 1),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(1, 0))
}

/// The reference implementation run under the same failure schedule.
fn reference_run(
    config: &SystemConfig,
    rounds: u64,
    schedule: &[(u64, CellId, bool)],
) -> (SystemState, u64, u64) {
    let mut sys = System::new(config.clone());
    for round in 0..rounds {
        for &(when, cell, recover) in schedule {
            if when == round {
                if recover {
                    sys.recover(cell);
                } else {
                    sys.fail(cell);
                }
            }
        }
        sys.step();
    }
    (
        sys.state().clone(),
        sys.consumed_total(),
        sys.inserted_total(),
    )
}

/// With a single source, the distributed runtime's private id pool (rank 0)
/// coincides with the reference's sequential counter, so entire states must
/// be **bit-identical** (modulo the global counter the deployment lacks).
#[test]
fn single_source_states_are_bit_identical() {
    for rounds in [1u64, 7, 40, 150] {
        let cfg = single_source_config(5);
        let net = NetSystem::new(cfg.clone()).unwrap().run(rounds).unwrap();
        let (ref_state, ref_consumed, ref_inserted) = reference_run(&cfg, rounds, &[]);
        assert_eq!(net.state.cells, ref_state.cells, "diverged at K={rounds}");
        assert_eq!(net.consumed, ref_consumed);
        assert_eq!(net.inserted, ref_inserted);
    }
}

#[test]
fn single_source_with_failures_bit_identical() {
    let schedule = vec![
        (5u64, CellId::new(1, 2), false),
        (9, CellId::new(0, 3), false),
        (40, CellId::new(1, 2), true),
        (55, CellId::new(1, 4), false),
    ];
    let cfg = single_source_config(5);
    let net = NetSystem::new(cfg.clone()).unwrap()
        .with_schedule(schedule.clone())
        .run(120)
        .unwrap();
    let (ref_state, ref_consumed, ref_inserted) = reference_run(&cfg, 120, &schedule);
    assert_eq!(net.state.cells, ref_state.cells);
    assert_eq!(net.consumed, ref_consumed);
    assert_eq!(net.inserted, ref_inserted);
}

/// With several sources, identifiers come from disjoint pools (a deployment
/// cannot share a counter), so compare with identifiers erased: all control
/// variables plus the multiset of entity positions per cell.
type ErasedCell = (
    Vec<Point>,
    Dist,
    Option<CellId>,
    Vec<CellId>,
    Option<CellId>,
    Option<CellId>,
    bool,
);

fn erased(state: &SystemState) -> Vec<ErasedCell> {
    state
        .cells
        .iter()
        .map(|c: &CellState| {
            let mut positions: Vec<Point> = c.members.values().copied().collect();
            positions.sort();
            (
                positions,
                c.dist,
                c.next,
                c.ne_prev.iter().copied().collect(),
                c.token,
                c.signal,
                c.failed,
            )
        })
        .collect()
}

#[test]
fn multi_source_equivalent_modulo_ids() {
    let cfg = SystemConfig::new(
        GridDims::square(6),
        CellId::new(3, 3),
        Params::from_milli(200, 50, 150).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(0, 0))
    .with_source(CellId::new(5, 0))
    .with_source(CellId::new(0, 5));
    let net = NetSystem::new(cfg.clone()).unwrap().run(200).unwrap();
    let (ref_state, ref_consumed, ref_inserted) = reference_run(&cfg, 200, &[]);
    assert_eq!(erased(&net.state), erased(&ref_state));
    assert_eq!(net.consumed, ref_consumed);
    assert_eq!(net.inserted, ref_inserted);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized equivalence: random grids, parameters, and failure
    /// schedules produce bit-identical single-source behavior.
    #[test]
    fn equivalence_under_random_schedules(
        n in 3u16..=6,
        rounds in 1u64..=80,
        l in 100i64..=300,
        schedule in proptest::collection::vec(
            (0u64..80, (0u16..6, 0u16..6), prop::bool::ANY),
            0..6,
        ),
    ) {
        let params = Params::from_milli(l, 50, l / 2 + 10).expect("valid");
        let cfg = SystemConfig::new(GridDims::square(n), CellId::new(1, n - 1), params)
            .expect("in bounds")
            .with_source(CellId::new(1, 0));
        let schedule: Vec<(u64, CellId, bool)> = schedule
            .into_iter()
            .map(|(when, (i, j), rec)| (when, CellId::new(i % n, j % n), rec))
            .collect();
        let net = NetSystem::new(cfg.clone()).unwrap()
            .with_schedule(schedule.clone())
            .run(rounds)
            .unwrap();
        let (ref_state, ref_consumed, ref_inserted) = reference_run(&cfg, rounds, &schedule);
        prop_assert_eq!(&net.state.cells, &ref_state.cells);
        prop_assert_eq!(net.consumed, ref_consumed);
        prop_assert_eq!(net.inserted, ref_inserted);
    }
}

/// The equivalence also holds under the randomized token policy: both sides
/// key the pseudo-random choice on the same (salt, cell, round) triple.
#[test]
fn randomized_token_policy_equivalent() {
    use cellflow_core::TokenPolicy;
    let cfg = SystemConfig::new(
        GridDims::square(5),
        CellId::new(2, 2),
        Params::from_milli(200, 50, 150).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(0, 2))
    .with_source(CellId::new(2, 0))
    .with_token_policy(TokenPolicy::Randomized { salt: 0xFEED });
    let net = NetSystem::new(cfg.clone()).unwrap().run(150).unwrap();
    let (ref_state, ref_consumed, _) = reference_run(&cfg, 150, &[]);
    assert_eq!(erased(&net.state), erased(&ref_state));
    assert_eq!(net.consumed, ref_consumed);
}
