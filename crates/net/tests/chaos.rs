//! Chaos-engineering integration tests: seeded message faults, hard thread
//! crashes with re-spawn, unrecoverable kills with timeout degradation, and
//! online monitors over the message-passing runtime.

use std::time::Duration;

use cellflow_core::{
    standard_monitors, CampaignSpec, FaultPlan, Params, System, SystemConfig, SystemState,
};
use cellflow_grid::{CellId, GridDims};
use cellflow_net::{ChaosConfig, NetError, NetSystem};

fn config(n: u16) -> SystemConfig {
    SystemConfig::new(
        GridDims::square(n),
        CellId::new(1, n - 1),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(1, 0))
}

fn reference_run(config: &SystemConfig, rounds: u64, plan: &FaultPlan) -> (SystemState, u64, u64) {
    use cellflow_core::FaultKind;
    let mut sys = System::new(config.clone());
    for round in 0..rounds {
        for event in plan.events_at(round) {
            match event.kind {
                FaultKind::Recover => sys.recover(event.cell),
                // Crash, HardCrash, and Kill all read as `fail` in the
                // shared-variable model — the differences are mechanical
                // (thread death, barrier membership), not behavioral.
                _ => sys.fail(event.cell),
            }
        }
        sys.step();
    }
    (
        sys.state().clone(),
        sys.consumed_total(),
        sys.inserted_total(),
    )
}

/// Same seed, same chaos: two runs of an identical chaos campaign produce
/// byte-identical reports despite real threading.
#[test]
fn chaos_runs_are_deterministic() {
    let chaos = ChaosConfig {
        seed: 0xC0FFEE,
        drop_rate: 0.15,
        delay_rate: 0.10,
        dup_rate: 0.10,
        reorder_rate: 0.20,
        until_round: Some(80),
    };
    let run = || {
        NetSystem::new(config(4))
            .unwrap()
            .with_chaos(chaos)
            .run(120)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert!(a.chaos.dropped > 0, "campaign was supposed to drop messages");
}

/// Duplication and reordering alone are absorbed by the keyed drains: the
/// deployment remains bit-identical to the shared-variable reference.
#[test]
fn dup_and_reorder_are_observationally_invisible() {
    let chaos = ChaosConfig {
        seed: 7,
        drop_rate: 0.0,
        delay_rate: 0.0,
        dup_rate: 0.35,
        reorder_rate: 0.35,
        until_round: None,
    };
    let cfg = config(5);
    let net = NetSystem::new(cfg.clone())
        .unwrap()
        .with_chaos(chaos)
        .run(150)
        .unwrap();
    assert!(net.chaos.duplicated > 0);
    let (ref_state, ref_consumed, ref_inserted) = reference_run(&cfg, 150, &FaultPlan::new());
    assert_eq!(net.state.cells, ref_state.cells);
    assert_eq!(net.consumed, ref_consumed);
    assert_eq!(net.inserted, ref_inserted);
}

/// A hard crash actually kills the cell's thread; the scripted recovery
/// re-spawns a successor from the checkpoint. On a lossless fabric the whole
/// run stays bit-identical to the reference under plain fail/recover.
#[test]
fn hard_crash_respawn_matches_reference() {
    let plan = FaultPlan::new()
        .hard_crash_at(10, CellId::new(1, 2))
        .recover_at(40, CellId::new(1, 2))
        .hard_crash_at(55, CellId::new(0, 3))
        .recover_at(70, CellId::new(0, 3));
    let cfg = config(5);
    let net = NetSystem::new(cfg.clone())
        .unwrap()
        .with_plan(plan.clone())
        .run(120)
        .unwrap();
    let (ref_state, ref_consumed, ref_inserted) = reference_run(&cfg, 120, &plan);
    assert_eq!(net.state.cells, ref_state.cells);
    assert_eq!(net.consumed, ref_consumed);
    assert_eq!(net.inserted, ref_inserted);
}

/// A hard crash with no scripted recovery: the thread dies for good, the
/// barrier seat is withdrawn, and the survivors finish the run normally.
#[test]
fn permanent_hard_crash_still_terminates() {
    let plan = FaultPlan::new().hard_crash_at(15, CellId::new(0, 2));
    let cfg = config(4);
    let net = NetSystem::new(cfg.clone())
        .unwrap()
        .with_plan(plan.clone())
        .run(100)
        .unwrap();
    let (ref_state, ref_consumed, ref_inserted) = reference_run(&cfg, 100, &plan);
    assert_eq!(net.state.cells, ref_state.cells);
    assert_eq!(net.consumed, ref_consumed);
    assert_eq!(net.inserted, ref_inserted);
}

/// A killed cell goes silent without handing its barrier seat over: the
/// survivors must *not* deadlock — the round times out and the run returns a
/// typed error naming the wedged round.
#[test]
fn kill_degrades_to_timeout_not_deadlock() {
    let plan = FaultPlan::new().kill_at(20, CellId::new(2, 2));
    let err = NetSystem::new(config(4))
        .unwrap()
        .with_plan(plan)
        .with_round_timeout(Duration::from_millis(200))
        .run(100)
        .unwrap_err();
    match err {
        NetError::Timeout { round, .. } => assert_eq!(round, 20),
        other => panic!("expected Timeout, got {other:?}"),
    }
}

/// The timeout round in a kill-induced failure is deterministic (the
/// detecting cell is a thread-scheduling race, but the round is not).
#[test]
fn kill_timeout_round_is_deterministic() {
    let run = || {
        let plan = FaultPlan::new().kill_at(7, CellId::new(1, 1));
        NetSystem::new(config(3))
            .unwrap()
            .with_plan(plan)
            .with_round_timeout(Duration::from_millis(150))
            .run(50)
            .unwrap_err()
    };
    let (a, b) = (run(), run());
    match (&a, &b) {
        (NetError::Timeout { round: ra, .. }, NetError::Timeout { round: rb, .. }) => {
            assert_eq!(ra, rb)
        }
        other => panic!("expected two Timeouts, got {other:?}"),
    }
}

/// The headline guarantee: a generated fault campaign (bursts, blackout,
/// flapping, a hard crash) under message chaos completes with **zero**
/// monitor violations, and the quiet tail is long enough for the
/// stabilization stopwatch to certify recovery within the Theorem 10 bound.
#[test]
fn generated_campaign_is_safe_under_monitors() {
    let cfg = config(5);
    let spec = CampaignSpec {
        active_rounds: 80,
        ..CampaignSpec::default()
    };
    let plan = FaultPlan::random_campaign(&cfg, &spec, 0xBAD5EED);
    let chaos = ChaosConfig {
        seed: 0xBAD5EED,
        drop_rate: 0.05,
        delay_rate: 0.05,
        dup_rate: 0.10,
        reorder_rate: 0.10,
        until_round: Some(80),
    };
    let monitors = standard_monitors(&cfg);
    let report = NetSystem::new(cfg)
        .unwrap()
        .with_plan(plan)
        .with_chaos(chaos)
        .run_monitored(200, monitors)
        .unwrap();
    assert!(
        report.violations.is_empty(),
        "monitors fired: {:?}",
        report.violations
    );
    assert!(report.consumed > 0, "the flow never recovered");
    assert!(report
        .monitor_summaries
        .iter()
        .any(|s| s.contains("stabilized")));
}

/// Crash/recover campaigns on a lossless fabric remain differential even
/// when generated: the chaos vocabulary and the reference agree exactly.
#[test]
fn generated_flag_campaign_matches_reference() {
    let cfg = config(4);
    let spec = CampaignSpec {
        active_rounds: 60,
        hard_crashes: 0,
        kills: 0,
        ..CampaignSpec::default()
    };
    let plan = FaultPlan::random_campaign(&cfg, &spec, 99);
    let net = NetSystem::new(cfg.clone())
        .unwrap()
        .with_plan(plan.clone())
        .run(100)
        .unwrap();
    let (ref_state, ref_consumed, ref_inserted) = reference_run(&cfg, 100, &plan);
    assert_eq!(net.state.cells, ref_state.cells);
    assert_eq!(net.consumed, ref_consumed);
    assert_eq!(net.inserted, ref_inserted);
}

/// An expanded cascade campaign (endogenous overload crashes precomputed
/// into a scripted plan) runs identically on the message-passing runtime
/// and the shared-variable reference — one campaign, two runtimes.
#[test]
fn expanded_cascade_plan_is_runtime_equivalent() {
    use cellflow_core::{expand_overload, OverloadTrigger};
    let cfg = config(5).with_capacity(2);
    let base = FaultPlan::new().crash_at(8, CellId::new(1, 2));
    let outcome = expand_overload(&cfg, &base, OverloadTrigger::new(2, 2), None, None, 120);
    assert!(
        outcome.stats.overload_crashes > 0,
        "campaign produced no cascade: {:?}",
        outcome.stats
    );
    let net = NetSystem::new(cfg.clone())
        .unwrap()
        .with_plan(outcome.plan.clone())
        .run(120)
        .unwrap();
    let (ref_state, ref_consumed, ref_inserted) = reference_run(&cfg, 120, &outcome.plan);
    assert_eq!(net.state.cells, ref_state.cells);
    assert_eq!(net.consumed, ref_consumed);
    assert_eq!(net.inserted, ref_inserted);
}

/// Optimistic restarts after overload crashes flow through the supervisor:
/// a restarted cell that overloads again exceeds its restart budget and is
/// quarantined (the flapping discipline of Como et al.), and the overload
/// telemetry counter sees the crashes.
#[test]
fn reoverloading_restarted_cell_hits_flapping_quarantine() {
    use std::sync::Arc;

    use cellflow_core::{expand_overload, FaultKind, OverloadTrigger};
    use cellflow_net::{NetTelemetry, RestartPolicy, SupervisorDecision};
    use cellflow_telemetry::Registry;

    let cfg = config(5).with_capacity(2);
    let base = FaultPlan::new().crash_at(8, CellId::new(1, 2));
    let outcome = expand_overload(&cfg, &base, OverloadTrigger::new(2, 2), None, Some(12), 160);
    // The expansion must contain a flapping cell: some cell overload-crashes
    // at least twice (its optimistic restart re-overloaded).
    let mut crash_counts = std::collections::BTreeMap::new();
    for e in outcome.plan.events() {
        if e.kind == FaultKind::OverloadCrash {
            *crash_counts.entry(e.cell).or_insert(0u32) += 1;
        }
    }
    let flapper = crash_counts
        .iter()
        .find(|&(_, &n)| n >= 2)
        .map(|(&c, _)| c)
        .expect("no cell flapped under optimistic restarts");

    let registry = Registry::new();
    let tel = Arc::new(NetTelemetry::new(&registry));
    let policy = RestartPolicy {
        restart_budget: 1,
        ..RestartPolicy::default()
    };
    let report = NetSystem::new(cfg.clone())
        .unwrap()
        .with_plan(outcome.plan.clone())
        .with_restart_policy(policy)
        .with_telemetry(Arc::clone(&tel))
        .run_monitored(200, standard_monitors(&cfg))
        .unwrap();

    // The flapper's repeat restart was quarantined.
    assert!(
        report.supervisor.iter().any(|d| matches!(
            d,
            SupervisorDecision::Quarantine { cell, .. } if *cell == flapper
        )),
        "no quarantine for flapper {flapper:?}: {:?}",
        report.supervisor
    );
    // And the net registry counted the scripted overload crashes.
    let by_name: std::collections::HashMap<String, cellflow_telemetry::MetricSnapshot> = registry
        .snapshot()
        .into_iter()
        .map(|m| (m.name().to_string(), m))
        .collect();
    match &by_name["cellflow_net_overload_crashes_total"] {
        cellflow_telemetry::MetricSnapshot::Counter { value, .. } => {
            assert!(*value > 0, "overload counter never moved")
        }
        other => panic!("unexpected snapshot {other:?}"),
    }
}
