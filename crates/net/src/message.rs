//! The wire protocol between neighboring cells.

use cellflow_core::EntityId;
use cellflow_geom::Point;
use cellflow_grid::CellId;
use cellflow_routing::Dist;

/// A message between adjacent cells. One round consists of three exchanges;
/// each variant carries exactly the shared variables the corresponding phase
/// of the paper's protocol reads (Figure 2's read arrows, serialized).
///
/// A **failed cell sends nothing** — the paper's "a failed cell … never
/// communicates". Receivers treat silence as `dist = ∞`, `next = ⊥`,
/// `signal = ⊥` (the paper's footnote 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Exchange 1 (before `Route`): the sender's current distance estimate.
    DistAnnounce {
        /// Sending cell.
        from: CellId,
        /// Its `dist` at the start of the round.
        dist: Dist,
    },
    /// Exchange 2 (before `Signal`): the sender's freshly routed `next`
    /// pointer and whether it holds any entities.
    RouteAnnounce {
        /// Sending cell.
        from: CellId,
        /// Its `next` after this round's `Route`.
        next: Option<CellId>,
        /// `Members ≠ ∅`.
        nonempty: bool,
    },
    /// Exchange 3 (before `Move`): the sender's freshly computed signal.
    SignalAnnounce {
        /// Sending cell.
        from: CellId,
        /// Its `signal` after this round's `Signal`.
        signal: Option<CellId>,
    },
    /// During `Move`: an entity crossing the shared boundary, already snapped
    /// flush to the receiver's near edge by the sender.
    Transfer {
        /// Sending cell.
        from: CellId,
        /// The entity's identifier.
        entity: EntityId,
        /// Its position in the receiver's frame (snap applied).
        pos: Point,
    },
    /// End-of-move marker: the sender has finished its `Move` phase and will
    /// send no more transfers this round (receivers need a deterministic
    /// end-of-stream signal per neighbor).
    MoveDone {
        /// Sending cell.
        from: CellId,
    },
}

/// A [`Message`] tagged with the round it belongs to.
///
/// The chaos transport may hold a message back and deliver it during a later
/// exchange; the round tag lets receivers recognize such stragglers and
/// discard them, so a delayed announcement degrades to the paper's
/// footnote-1 silence (`dist = ∞`, `next/signal = ⊥`) instead of smuggling a
/// stale value into the wrong round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// The round in which the message was sent.
    pub round: u64,
    /// Causal context: the sender's cell-round span id
    /// ([`Tracer::cell_round_id`]) when tracing is enabled, 0 otherwise.
    /// Because the id is a pure function of `(seed, round, sender)`, a
    /// delivered, dropped, or delayed message links back to its emitting
    /// cell-round without the transport carrying any extra state — the
    /// receiver (or an offline analyzer holding the seed) recomputes the
    /// same id. Protocol semantics never read this field.
    ///
    /// [`Tracer::cell_round_id`]: cellflow_telemetry::Tracer::cell_round_id
    pub cause: u64,
    /// The payload.
    pub msg: Message,
}

impl Message {
    /// The sending cell of any message variant.
    pub fn sender(&self) -> CellId {
        match *self {
            Message::DistAnnounce { from, .. }
            | Message::RouteAnnounce { from, .. }
            | Message::SignalAnnounce { from, .. }
            | Message::Transfer { from, .. }
            | Message::MoveDone { from } => from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_geom::Fixed;

    #[test]
    fn sender_is_uniform_across_variants() {
        let from = CellId::new(2, 3);
        let msgs = [
            Message::DistAnnounce {
                from,
                dist: Dist::Finite(4),
            },
            Message::RouteAnnounce {
                from,
                next: Some(CellId::new(2, 4)),
                nonempty: true,
            },
            Message::SignalAnnounce { from, signal: None },
            Message::Transfer {
                from,
                entity: EntityId(7),
                pos: Point::new(Fixed::HALF, Fixed::HALF),
            },
            Message::MoveDone { from },
        ];
        for m in msgs {
            assert_eq!(m.sender(), from);
        }
    }
}
