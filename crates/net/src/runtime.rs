//! The concurrent runtime: one thread per cell, channels along grid edges,
//! barrier-synchronized rounds.

use std::collections::HashMap;
use std::sync::Barrier;

use cellflow_core::{CellState, SystemConfig, SystemState};
use cellflow_grid::CellId;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::{CellNode, Message};

/// The result of a message-passing run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetReport {
    /// The assembled final system state (every node's local state).
    pub state: SystemState,
    /// Entities consumed by the target.
    pub consumed: u64,
    /// Entities inserted by sources.
    pub inserted: u64,
}

/// Error from a message-passing run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// A cell thread panicked (carries the panic message when printable).
    NodePanicked(String),
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetError::NodePanicked(msg) => write!(f, "a cell thread panicked: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

/// A message-passing deployment of the protocol: `N²` independent cell
/// threads that share **nothing** and communicate only over per-edge
/// channels, synchronized into rounds by barriers (the paper's synchrony
/// assumption).
///
/// See the crate docs for the three-exchange round structure and the
/// equivalence guarantee against the shared-variable reference.
pub struct NetSystem {
    config: SystemConfig,
    schedule: Vec<(u64, CellId, bool)>,
}

impl NetSystem {
    /// Creates a deployment of `config`.
    ///
    /// # Panics
    ///
    /// Panics if the config carries an entity budget — budgets are a global
    /// counter, which a shared-nothing deployment cannot implement (they
    /// exist for the model checker).
    pub fn new(config: SystemConfig) -> NetSystem {
        assert!(
            config.entity_budget().is_none(),
            "entity budgets are global state; not supported by the distributed runtime"
        );
        NetSystem {
            config,
            schedule: Vec::new(),
        }
    }

    /// Adds a crash/recovery schedule: `(round, cell, recover?)` transitions,
    /// applied by each affected cell locally at the start of that round.
    pub fn with_schedule<I: IntoIterator<Item = (u64, CellId, bool)>>(
        mut self,
        schedule: I,
    ) -> NetSystem {
        self.schedule = schedule.into_iter().collect();
        self
    }

    /// Runs `rounds` rounds and returns the assembled outcome.
    ///
    /// # Errors
    ///
    /// [`NetError::NodePanicked`] if any cell thread panicked.
    pub fn run(&self, rounds: u64) -> Result<NetReport, NetError> {
        let dims = self.config.dims();
        let cells: Vec<CellId> = dims.iter().collect();
        let n = cells.len();

        // One inbox per cell; every neighbor holds a sender clone.
        let mut senders: HashMap<CellId, Sender<Message>> = HashMap::with_capacity(n);
        let mut inboxes: HashMap<CellId, Receiver<Message>> = HashMap::with_capacity(n);
        for &c in &cells {
            let (tx, rx) = unbounded();
            senders.insert(c, tx);
            inboxes.insert(c, rx);
        }

        // send-phase and drain-phase barriers shared by all nodes.
        let barrier = Barrier::new(n);
        let (result_tx, result_rx) = unbounded::<(CellId, CellState, u64, u64)>();

        let outcome = crossbeam::thread::scope(|scope| {
            for &id in &cells {
                let inbox = inboxes.remove(&id).expect("one inbox per cell");
                let mut node = CellNode::new(id, &self.config);
                let peers: HashMap<CellId, Sender<Message>> = node
                    .neighbors()
                    .iter()
                    .map(|&nb| (nb, senders[&nb].clone()))
                    .collect();
                let barrier = &barrier;
                let schedule = &self.schedule;
                let result_tx = result_tx.clone();
                scope.spawn(move |_| {
                    for round in 0..rounds {
                        // Local fail/recover transitions for this round.
                        for &(when, cell, recover) in schedule {
                            if when == round && cell == id {
                                if recover {
                                    node.recover();
                                } else {
                                    node.fail();
                                }
                            }
                        }

                        // Exchange 1: dist → Route.
                        if let Some(dist) = node.announce_dist() {
                            for tx in peers.values() {
                                tx.send(Message::DistAnnounce { from: id, dist }).ok();
                            }
                        }
                        barrier.wait();
                        let mut dists = HashMap::new();
                        for msg in inbox.try_iter() {
                            if let Message::DistAnnounce { from, dist } = msg {
                                dists.insert(from, dist);
                            }
                        }
                        barrier.wait();
                        node.route_step(&dists);

                        // Exchange 2: (next, nonempty) → Signal.
                        if let Some((next, nonempty)) = node.announce_route() {
                            for tx in peers.values() {
                                tx.send(Message::RouteAnnounce {
                                    from: id,
                                    next,
                                    nonempty,
                                })
                                .ok();
                            }
                        }
                        barrier.wait();
                        let mut routes = HashMap::new();
                        for msg in inbox.try_iter() {
                            if let Message::RouteAnnounce {
                                from,
                                next,
                                nonempty,
                            } = msg
                            {
                                routes.insert(from, (next, nonempty));
                            }
                        }
                        barrier.wait();
                        node.signal_step(&routes);

                        // Exchange 3: signal → Move.
                        if let Some(signal) = node.announce_signal() {
                            for tx in peers.values() {
                                tx.send(Message::SignalAnnounce { from: id, signal }).ok();
                            }
                        }
                        barrier.wait();
                        let mut signals = HashMap::new();
                        for msg in inbox.try_iter() {
                            if let Message::SignalAnnounce { from, signal } = msg {
                                signals.insert(from, signal);
                            }
                        }
                        barrier.wait();

                        // Move: transfers travel as messages.
                        for (to, entity, pos) in node.move_step(&signals) {
                            peers[&to]
                                .send(Message::Transfer {
                                    from: id,
                                    entity,
                                    pos,
                                })
                                .ok();
                        }
                        barrier.wait();
                        let transfers: Vec<_> = inbox
                            .try_iter()
                            .filter_map(|msg| match msg {
                                Message::Transfer { entity, pos, .. } => Some((entity, pos)),
                                _ => None,
                            })
                            .collect();
                        barrier.wait();
                        node.receive_transfers(transfers);
                        node.source_step();
                        node.finish_round();
                    }
                    result_tx
                        .send((id, node.state().clone(), node.consumed, node.inserted))
                        .expect("coordinator outlives nodes");
                });
            }
            drop(result_tx);

            // Assemble the final snapshot.
            let mut states: HashMap<CellId, CellState> = HashMap::with_capacity(n);
            let mut consumed = 0u64;
            let mut inserted = 0u64;
            for _ in 0..n {
                let (id, state, c, i) = result_rx.recv().expect("every node reports exactly once");
                consumed += c;
                inserted += i;
                states.insert(id, state);
            }
            let state = SystemState {
                cells: cells
                    .iter()
                    .map(|&c| states.remove(&c).expect("every cell reported"))
                    .collect(),
                // The distributed runtime has no global counter; expose the
                // number of insertions instead (identifiers come from
                // per-source pools).
                next_entity_id: inserted,
            };
            NetReport {
                state,
                consumed,
                inserted,
            }
        });

        outcome.map_err(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            NetError::NodePanicked(msg)
        })
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_core::Params;
    use cellflow_grid::GridDims;

    fn config(n: u16) -> SystemConfig {
        SystemConfig::new(
            GridDims::square(n),
            CellId::new(1, n - 1),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0))
    }

    #[test]
    fn traffic_flows_through_the_deployment() {
        let report = NetSystem::new(config(4)).run(150).unwrap();
        assert!(report.consumed > 0, "nothing was delivered");
        assert_eq!(
            report.inserted,
            report.consumed + report.state.entity_count() as u64
        );
    }

    #[test]
    fn runs_are_deterministic_despite_threading() {
        let a = NetSystem::new(config(4)).run(100).unwrap();
        let b = NetSystem::new(config(4)).run(100).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_applies_failures_locally() {
        let schedule = [
            (10u64, CellId::new(1, 2), false),
            (60, CellId::new(1, 2), true),
        ];
        let report = NetSystem::new(config(4))
            .with_schedule(schedule)
            .run(200)
            .unwrap();
        // The cell recovered and traffic resumed.
        let dims = GridDims::square(4);
        assert!(!report.state.cell(dims, CellId::new(1, 2)).failed);
        assert!(report.consumed > 0);
    }

    #[test]
    #[should_panic(expected = "global state")]
    fn entity_budgets_are_rejected() {
        let _ = NetSystem::new(config(4).with_entity_budget(3));
    }
}
