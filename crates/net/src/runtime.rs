//! The concurrent runtime: one thread per cell, transport links along grid
//! edges, timeout-guarded barrier-synchronized rounds, scripted faults, and
//! an optional monitor collector.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use cellflow_core::fault::{FaultKind, FaultPlan, PartitionPlan, PartitionSchedule};
use cellflow_core::monitor::{Monitor, MonitorCtx, MonitorViolation};
use cellflow_core::{CellState, Dist, SystemConfig, SystemState};
use cellflow_grid::CellId;
use cellflow_telemetry::{cell_ordinal, Counter, Event, SpanBuilder, SpanKind, Tracer};
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::message::{Envelope, Message};
use crate::store::{MemoryStore, PersistedRecord, RecordPoint, SnapshotStore, TearSpec};
use crate::supervisor::{RestartPolicy, SupervisorDecision};
use crate::sync::{PoisonInfo, RoundBarrier, WAITS_PER_ROUND};
use crate::telemetry::NetTelemetry;
use crate::transport::{
    ChaosConfig, ChaosStats, ChaosTransport, LinkFaultTransport, LinkStats, PerfectTransport,
    Transport,
};
use crate::CellNode;

/// The result of a message-passing run.
#[derive(Clone, Debug, PartialEq)]
pub struct NetReport {
    /// The assembled final system state (every node's local state).
    pub state: SystemState,
    /// Entities consumed by the target.
    pub consumed: u64,
    /// Entities inserted by sources.
    pub inserted: u64,
    /// Faults the chaos transport injected (all zero on a perfect fabric).
    pub chaos: ChaosStats,
    /// Announcements the link-fault fabric suppressed on cut edges (zero
    /// when no partition was scripted).
    pub links: LinkStats,
    /// Violations flagged by the monitors (empty when none were installed).
    pub violations: Vec<MonitorViolation>,
    /// One summary line per installed monitor.
    pub monitor_summaries: Vec<String>,
    /// Interventions the restart supervisor applied to the fault plan
    /// (backed-off or quarantined re-spawns); empty under the default
    /// identity policy.
    pub supervisor: Vec<SupervisorDecision>,
}

/// Error from a message-passing run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// A cell thread panicked (carries the panic message when printable).
    NodePanicked(String),
    /// A round failed to complete within the round timeout: some cell
    /// stopped responding without a scripted hand-over (e.g. a
    /// [`FaultKind::Kill`]), and the survivors degraded instead of
    /// deadlocking.
    Timeout {
        /// The round that never completed.
        round: u64,
        /// The cell whose wait detected the stall (the detector — the
        /// culprits are in `silent`).
        cell: CellId,
        /// The cells that had not checked into the stalled round and had no
        /// scripted excuse (hard-crash or tear window) for their silence —
        /// the attributed culprits. Empty if attribution found nobody
        /// (e.g. the stall cleared between detection and attribution).
        silent: Vec<CellId>,
    },
    /// The run's plumbing disconnected unexpectedly (a node exited without
    /// reporting and without poisoning the barrier).
    Disconnected {
        /// Results received before the disconnect.
        reported: u64,
        /// Results expected.
        expected: u64,
    },
    /// The configuration cannot be deployed distributedly.
    UnsupportedConfig(String),
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetError::NodePanicked(msg) => write!(f, "a cell thread panicked: {msg}"),
            NetError::Timeout {
                round,
                cell,
                silent,
            } => {
                write!(f, "round {round} timed out (detected by cell {cell})")?;
                if silent.is_empty() {
                    write!(f, ": a neighbor went silent")
                } else {
                    let names: Vec<String> = silent.iter().map(|c| c.to_string()).collect();
                    write!(f, ": silent cells {}", names.join(", "))
                }
            }
            NetError::Disconnected { reported, expected } => write!(
                f,
                "deployment disconnected: {reported} of {expected} cells reported"
            ),
            NetError::UnsupportedConfig(msg) => write!(f, "unsupported configuration: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Default per-wait round timeout: far above any healthy round (microseconds
/// of compute), low enough that a wedged deployment dies promptly.
const DEFAULT_ROUND_TIMEOUT: Duration = Duration::from_secs(5);

/// Default worker-pool cap. Grids up to this many cells keep the
/// one-thread-per-cell deployment (maximal concurrency, the configuration
/// every equivalence proof historically ran on); larger grids multiplex
/// contiguous shards of cells onto this many pooled workers instead of
/// spawning thousands of OS threads — a 64×64 grid would otherwise need
/// 4096 of them.
const DEFAULT_WORKER_CAP: usize = 64;

/// A message-passing deployment of the protocol: `N²` independent cell
/// threads that share **nothing** and communicate only over per-edge
/// transport links, synchronized into rounds by a timeout-guarded barrier.
///
/// See the crate docs for the round structure and the equivalence guarantee
/// against the shared-variable reference; see [`FaultPlan`] for scripting
/// crashes, hard thread-killing crashes with checkpointed re-spawn, and
/// unrecoverable kills, and [`ChaosConfig`] for message-level fault
/// injection.
pub struct NetSystem {
    config: SystemConfig,
    plan: FaultPlan,
    chaos: Option<ChaosConfig>,
    partition: Option<PartitionPlan>,
    round_timeout: Duration,
    store: Option<Arc<dyn SnapshotStore>>,
    policy: RestartPolicy,
    tears: Vec<TearSpec>,
    telemetry: Option<Arc<NetTelemetry>>,
    tracer: Option<Tracer>,
    worker_cap: usize,
}

impl core::fmt::Debug for NetSystem {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NetSystem")
            .field("config", &self.config)
            .field("plan", &self.plan)
            .field("chaos", &self.chaos)
            .field("partition", &self.partition)
            .field("round_timeout", &self.round_timeout)
            .field("store", &self.store.as_ref().map(|_| "SnapshotStore"))
            .field("policy", &self.policy)
            .field("tears", &self.tears)
            .field("telemetry", &self.telemetry)
            .field("tracer", &self.tracer)
            .field("worker_cap", &self.worker_cap)
            .finish()
    }
}

impl NetSystem {
    /// Creates a deployment of `config`.
    ///
    /// # Errors
    ///
    /// [`NetError::UnsupportedConfig`] if the config carries an entity
    /// budget — budgets are a global counter, which a shared-nothing
    /// deployment cannot implement (they exist for the model checker).
    pub fn new(config: SystemConfig) -> Result<NetSystem, NetError> {
        if config.entity_budget().is_some() {
            return Err(NetError::UnsupportedConfig(
                "entity budgets are global state; not supported by the distributed runtime"
                    .to_string(),
            ));
        }
        Ok(NetSystem {
            config,
            plan: FaultPlan::new(),
            chaos: None,
            partition: None,
            round_timeout: DEFAULT_ROUND_TIMEOUT,
            store: None,
            policy: RestartPolicy::default(),
            tears: Vec::new(),
            telemetry: None,
            tracer: None,
            worker_cap: DEFAULT_WORKER_CAP,
        })
    }

    /// Caps the deployment's thread count. Grids with at most `cap` cells
    /// run one thread per cell; larger grids multiplex contiguous
    /// cell-id-ordered shards onto `cap` pooled workers, each arriving at
    /// the round barrier once per shard
    /// ([`RoundBarrier`](crate::RoundBarrier)`::arrive_many`). The pooled
    /// path exchanges the same messages over the same transports in the
    /// same rounds, so reports are identical to the thread-per-cell
    /// deployment — including timeout attribution: a killed cell's seat
    /// stops arriving and the stall still names it. Default: 64.
    pub fn with_worker_cap(mut self, cap: usize) -> NetSystem {
        self.worker_cap = cap.max(1);
        self
    }

    /// Adds a crash/recovery schedule: `(round, cell, recover?)` transitions,
    /// applied by each affected cell locally at the start of that round.
    /// Convenience wrapper over [`NetSystem::with_plan`].
    pub fn with_schedule<I: IntoIterator<Item = (u64, CellId, bool)>>(
        mut self,
        schedule: I,
    ) -> NetSystem {
        let mut plan = FaultPlan::new();
        for (round, cell, recover) in schedule {
            plan = if recover {
                plan.recover_at(round, cell)
            } else {
                plan.crash_at(round, cell)
            };
        }
        self.plan = plan;
        self
    }

    /// Scripts the run's fault plan (crashes, hard crashes with re-spawn,
    /// kills). Replaces any earlier plan or schedule.
    pub fn with_plan(mut self, plan: FaultPlan) -> NetSystem {
        self.plan = plan;
        self
    }

    /// Injects message-level chaos through a [`ChaosTransport`].
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> NetSystem {
        self.chaos = Some(chaos);
        self
    }

    /// Scripts link faults: the plan expands to a per-round cut schedule
    /// and a [`LinkFaultTransport`] suppresses announcements on cut
    /// directed edges (composing over chaos when both are configured).
    /// Partitioned cells read footnote-1 silence and keep running; rounds
    /// with an active cut count as ambient disturbance for the
    /// stabilization monitor, so re-stabilization is measured from the
    /// heal.
    ///
    /// # Panics
    ///
    /// Panics if the plan was built for a different grid than the config.
    pub fn with_partition(mut self, plan: PartitionPlan) -> NetSystem {
        assert_eq!(
            plan.dims(),
            self.config.dims(),
            "partition plan and deployment must share a grid"
        );
        self.partition = Some(plan);
        self
    }

    /// Overrides the per-wait round timeout (default 5 s).
    pub fn with_round_timeout(mut self, timeout: Duration) -> NetSystem {
        self.round_timeout = timeout;
        self
    }

    /// Installs a snapshot store. Every cell appends a write-ahead
    /// [`RecordPoint::Intent`] record before sending entity transfers and a
    /// [`RecordPoint::Sealed`] record after finishing each round; hard-crash
    /// re-spawns restore from the latest persisted record. Without a store,
    /// each run uses a private in-memory store — same code path, no
    /// durability across runs.
    pub fn with_store(mut self, store: Arc<dyn SnapshotStore>) -> NetSystem {
        self.store = Some(store);
        self
    }

    /// Installs a restart supervision policy (exponential backoff + jitter,
    /// restart budgets, quarantine). The policy rewrites the scripted plan
    /// into the effective plan before the run starts; interventions are
    /// reported in [`NetReport::supervisor`].
    pub fn with_restart_policy(mut self, policy: RestartPolicy) -> NetSystem {
        self.policy = policy;
        self
    }

    /// Scripts a *dirty* crash: at `tear.round` the cell's thread dies
    /// mid-round — its write-ahead record tears halfway through the write,
    /// no transfers are sent, and the round is never sealed. The re-spawn at
    /// `tear.respawn` therefore restores the last durable *sealed* snapshot,
    /// which is stale by construction; the monitors treat the re-join as a
    /// state corruption (conservation rebaseline + stabilization epoch
    /// restart) and the certifier proves the protocol absorbs it.
    pub fn with_tear(mut self, tear: TearSpec) -> NetSystem {
        self.tears.push(tear);
        self
    }

    /// Attaches a telemetry bundle: barrier-wait and per-cell round latency
    /// histograms, message/WAL/supervisor/timeout counters, and the
    /// structured event log the monitor collector streams round events
    /// into. A round timeout additionally emits an [`Event::Timeout`] line,
    /// which dumps the flight recorder when the log carries one.
    pub fn with_telemetry(mut self, telemetry: Arc<NetTelemetry>) -> NetSystem {
        self.telemetry = Some(telemetry);
        self
    }

    /// Attaches a causal tracer. Every envelope a cell sends carries the
    /// sender's deterministic cell-round span id ([`Tracer::cell_round_id`])
    /// as its [`Envelope::cause`], the barrier records which cell's arrival
    /// closed each generation (the critical path), and the collector emits a
    /// span tree per round into the telemetry event log — including, on a
    /// round timeout, a `timeout` span whose `silent` children name the
    /// cells whose cell-round never happened. No-op without
    /// [`NetSystem::with_telemetry`].
    pub fn with_tracer(mut self, tracer: Tracer) -> NetSystem {
        self.tracer = Some(tracer);
        self
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The scripted fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Runs `rounds` rounds and returns the assembled outcome.
    ///
    /// # Errors
    ///
    /// [`NetError::NodePanicked`] if a cell thread panicked;
    /// [`NetError::Timeout`] if a cell went silent without a scripted
    /// hand-over (e.g. [`FaultKind::Kill`]) and the survivors timed out.
    pub fn run(&self, rounds: u64) -> Result<NetReport, NetError> {
        self.run_monitored(rounds, Vec::new())
    }

    /// Runs `rounds` rounds with online monitors: a collector thread
    /// assembles every round's global state from per-node snapshots and
    /// evaluates each monitor against it. Violations and per-monitor
    /// summaries land in the report.
    ///
    /// # Errors
    ///
    /// As [`NetSystem::run`].
    pub fn run_monitored(
        &self,
        rounds: u64,
        monitors: Vec<Box<dyn Monitor>>,
    ) -> Result<NetReport, NetError> {
        self.run_monitored_recorded(rounds, monitors, None)
            .map(|(report, _)| report)
    }

    /// [`NetSystem::run_monitored`] with an optional flight recorder: the
    /// monitor collector — which already reassembles every round's global
    /// state from the cells' sealed snapshots — additionally feeds each
    /// assembled state to the recorder (an opening keyframe for the initial
    /// state at round 0, then one frame per completed round). Returns the
    /// finished recording bytes alongside the report; `None` when no
    /// recorder was attached. Attaching a recorder forces the collector on
    /// even with no monitors installed.
    ///
    /// # Errors
    ///
    /// As [`NetSystem::run`]. On error the recording is discarded — a run
    /// that died mid-round has no complete frame sequence to certify.
    pub fn run_monitored_recorded(
        &self,
        rounds: u64,
        monitors: Vec<Box<dyn Monitor>>,
        recorder: Option<Box<cellflow_core::snapshot::Recorder>>,
    ) -> Result<(NetReport, Option<Vec<u8>>), NetError> {
        let dims = self.config.dims();
        let cells: Vec<CellId> = dims.iter().collect();
        let n = cells.len();
        let collect = !monitors.is_empty() || recorder.is_some();

        // Supervision is a deterministic plan rewrite, applied up front:
        // node threads and the collector both consume the effective plan.
        let (effective, decisions) = self.policy.rewrite(&self.plan);
        let telemetry = self.telemetry.as_deref();
        if let Some(tel) = telemetry {
            tel.supervisor_interventions.add(decisions.len() as u64);
            // The rewrite happens before round 0, so its events carry
            // round 0 and never disturb the stream's round order.
            for d in &decisions {
                let action = match d {
                    SupervisorDecision::Backoff { .. } => "backoff",
                    SupervisorDecision::Quarantine { .. } => "quarantine",
                };
                tel.emit(
                    0,
                    Event::Supervisor {
                        action: action.to_string(),
                        detail: format!("{d:?}"),
                    },
                );
            }
        }

        // Uniform recovery path: hard-crash re-spawns always go through the
        // snapshot store. A run without a configured store gets a private
        // in-memory one.
        let store: Arc<dyn SnapshotStore> = self
            .store
            .clone()
            .unwrap_or_else(|| Arc::new(MemoryStore::new()));

        // The fabric: perfect unless chaos is configured, with scripted
        // link faults layered on top when a partition is scripted.
        let chaos_transport = self.chaos.map(ChaosTransport::new);
        let base: &dyn Transport = match &chaos_transport {
            Some(t) => t,
            None => &PerfectTransport,
        };
        let schedule = self.partition.as_ref().map(|p| p.expand(rounds));
        let link_transport = schedule
            .as_ref()
            .map(|s| LinkFaultTransport::new(base, s.clone()));
        let transport: &dyn Transport = match &link_transport {
            Some(t) => t,
            None => base,
        };

        // One inbox per cell; every neighbor will hold a link to it.
        let mut senders: HashMap<CellId, Sender<Envelope>> = HashMap::with_capacity(n);
        let mut inboxes: HashMap<CellId, Receiver<Envelope>> = HashMap::with_capacity(n);
        for &c in &cells {
            let (tx, rx) = unbounded();
            senders.insert(c, tx);
            inboxes.insert(c, rx);
        }

        let mut barrier = RoundBarrier::new(n, self.round_timeout);
        if self.tracer.is_some() && telemetry.is_some() {
            // Barrier-wait critical path: record which cell closed each
            // generation so the round span can name its last completer.
            barrier = barrier.with_completion_log();
        }
        let barrier = barrier;
        let (result_tx, result_rx) = unbounded::<(CellId, CellState, u64, u64)>();
        let (snap_tx, snap_rx) = unbounded::<Snapshot>();

        let outcome = crossbeam::thread::scope(|scope| {
            let ctx = RunCtx {
                config: &self.config,
                plan: &effective,
                barrier: &barrier,
                rounds,
                collect,
                store: &*store,
                tears: &self.tears,
                telemetry,
                tracer: self.tracer,
            };
            let seat_for = |id: CellId,
                                inboxes: &mut HashMap<CellId, Receiver<Envelope>>,
                                node: &CellNode| Seat {
                inbox: inboxes.remove(&id).expect("one inbox per cell"),
                links: node
                    .neighbors()
                    .iter()
                    .map(|&nb| (nb, transport.link(id, nb, senders[&nb].clone())))
                    .collect(),
                result_tx: result_tx.clone(),
                snap_tx: snap_tx.clone(),
                messages: telemetry
                    .map(|t| t.messages_sent.clone())
                    .unwrap_or_else(Counter::noop),
            };
            if n <= self.worker_cap {
                // One thread per cell: maximal concurrency, the deployment
                // shape every equivalence argument was first made on.
                for &id in &cells {
                    let node = CellNode::new(id, &self.config);
                    let seat = seat_for(id, &mut inboxes, &node);
                    scope.spawn(move |scope| drive(scope, ctx, node, seat, 0));
                }
            } else {
                // Pooled: contiguous cell-id-ordered shards, one worker
                // each, batched barrier arrivals. Same messages, same
                // rounds, same reports — without n OS threads.
                for shard in cells.chunks(n.div_ceil(self.worker_cap)) {
                    let slots: Vec<ShardSlot> = shard
                        .iter()
                        .map(|&id| {
                            let node = CellNode::new(id, &self.config);
                            let seat = seat_for(id, &mut inboxes, &node);
                            ShardSlot {
                                id,
                                node,
                                seat,
                                state: SlotState::Active,
                            }
                        })
                        .collect();
                    scope.spawn(move |_| drive_shard(ctx, slots));
                }
            }
            drop(result_tx);
            drop(snap_tx);

            // Ambient message chaos, per round, for the stabilization clock:
            // only drops/delays count (dup/reorder are absorbed by drains).
            let noisy_until = match &self.chaos {
                Some(c) if !c.is_lossless() => Some(c.until_round.unwrap_or(u64::MAX)),
                _ => None,
            };
            let collector = collect.then(|| {
                let patience = self.round_timeout.saturating_mul(16);
                let config = &self.config;
                let plan = &effective;
                let tears = &self.tears;
                let cells = &cells;
                let partition = schedule.as_ref();
                let tracer = self.tracer;
                let barrier = &barrier;
                scope.spawn(move |_| {
                    collect_rounds(
                        config,
                        plan,
                        tears,
                        rounds,
                        cells,
                        snap_rx,
                        monitors,
                        noisy_until,
                        partition,
                        patience,
                        telemetry,
                        tracer,
                        barrier,
                        recorder,
                    )
                })
            });

            // Assemble the final snapshot; every cell (or its last
            // incarnation) reports exactly once on the success path.
            let mut states: HashMap<CellId, CellState> = HashMap::with_capacity(n);
            let mut consumed = 0u64;
            let mut inserted = 0u64;
            let mut reported = 0u64;
            let run_result = loop {
                if reported == n as u64 {
                    break Ok(());
                }
                match result_rx.recv() {
                    Ok((id, state, c, i)) => {
                        reported += 1;
                        consumed += c;
                        inserted += i;
                        states.insert(id, state);
                    }
                    // All node threads exited without all reporting: the
                    // barrier poison tells us why; otherwise a thread
                    // panicked (the scope join will surface the payload).
                    Err(_) => match barrier.poison() {
                        Some(p) => {
                            let round = p.round();
                            // A cell that cleanly withdrew its barrier seat
                            // (hard-crash awaiting re-spawn, tear window) is
                            // excused; a killed cell vanished without
                            // leaving and is exactly who the stall blames.
                            let mut excused = effective.hard_dead_at(round);
                            for c in effective.killed_at(round) {
                                excused.remove(&c);
                            }
                            for t in &self.tears {
                                if round >= t.round
                                    && (round < t.respawn || t.respawn >= rounds)
                                {
                                    excused.insert(t.cell);
                                }
                            }
                            let silent: Vec<CellId> = cells
                                .iter()
                                .copied()
                                .filter(|c| !p.arrived.contains(c) && !excused.contains(c))
                                .collect();
                            break Err(NetError::Timeout {
                                round,
                                cell: p.cell,
                                silent,
                            });
                        }
                        None => {
                            break Err(NetError::Disconnected {
                                reported,
                                expected: n as u64,
                            })
                        }
                    },
                }
            };

            let (violations, monitor_summaries, recorder_back) = match collector {
                Some(handle) => handle.join().unwrap_or_else(|_| {
                    (Vec::new(), vec!["collector panicked".to_string()], None)
                }),
                None => (Vec::new(), Vec::new(), None),
            };

            // The collector has stopped emitting, so a timeout line lands
            // after every round event — and dumps the flight recorder.
            if let Some(tel) = telemetry {
                if let Err(NetError::Timeout {
                    round,
                    cell,
                    silent,
                }) = &run_result
                {
                    tel.timeouts.inc();
                    let culprits = if silent.is_empty() {
                        "unattributed".to_string()
                    } else {
                        let names: Vec<String> =
                            silent.iter().map(|c| c.to_string()).collect();
                        names.join(", ")
                    };
                    tel.emit(
                        *round,
                        Event::Timeout {
                            detail: format!(
                                "round {round} never completed; stall detected by cell \
                                 ({}, {}); silent: {culprits}",
                                cell.i(),
                                cell.j()
                            ),
                        },
                    );
                    // The stalled round never produced its span tree, so
                    // emit a `timeout` root (cell = the detector) whose
                    // `silent` children carry the exact cell-round id the
                    // culprits' envelopes would have borne as `cause` —
                    // the trace analyzer links the missing cell-rounds
                    // without any runtime state surviving the stall.
                    if let Some(tr) = self.tracer {
                        let r = *round + 1;
                        let mut b = SpanBuilder::new(r);
                        b.open(tr.span_id(r, SpanKind::Timeout, 0), SpanKind::Timeout);
                        b.set_cell(*cell);
                        for &culprit in silent {
                            b.leaf(
                                tr.cell_round_id(r, culprit),
                                SpanKind::Silent,
                                Some(culprit),
                                1,
                                0,
                            );
                        }
                        for event in b.finish() {
                            tel.emit(r, event);
                        }
                    }
                }
                tel.flush();
            }

            run_result.map(|()| {
                (
                    NetReport {
                        state: SystemState {
                            cells: cells
                                .iter()
                                .map(|&c| states.remove(&c).expect("every cell reported"))
                                .collect(),
                            // The distributed runtime has no global counter;
                            // expose the number of insertions instead
                            // (identifiers come from per-source pools).
                            next_entity_id: inserted,
                        },
                        consumed,
                        inserted,
                        chaos: ChaosStats::default(),
                        links: LinkStats::default(),
                        violations,
                        monitor_summaries,
                        supervisor: decisions.clone(),
                    },
                    recorder_back.map(|r| r.finish()),
                )
            })
        });

        let (mut report, recording) = match outcome {
            Ok(inner) => inner?,
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                return Err(NetError::NodePanicked(msg));
            }
        };
        if let Some(t) = &chaos_transport {
            report.chaos = t.stats();
        }
        if let Some(t) = &link_transport {
            report.links = t.stats();
            if let Some(tel) = &self.telemetry {
                tel.links_suppressed.add(report.links.suppressed);
            }
        }
        Ok((report, recording))
    }
}

/// Run-wide immutable context shared by every node thread.
#[derive(Clone, Copy)]
struct RunCtx<'a> {
    config: &'a SystemConfig,
    plan: &'a FaultPlan,
    barrier: &'a RoundBarrier,
    rounds: u64,
    collect: bool,
    store: &'a dyn SnapshotStore,
    tears: &'a [TearSpec],
    telemetry: Option<&'a NetTelemetry>,
    tracer: Option<Tracer>,
}

impl RunCtx<'_> {
    /// A barrier wait, timed into the telemetry histogram when attached.
    fn wait(&self, cell: CellId) -> Result<(), PoisonInfo> {
        match self.telemetry {
            None => self.barrier.wait(cell),
            Some(t) => {
                let span = t.barrier_wait_ns.start();
                let result = self.barrier.wait(cell);
                drop(span);
                result
            }
        }
    }

    /// A batched barrier arrival for a pooled shard — one check-in for every
    /// live seat the worker drives — timed like [`RunCtx::wait`].
    fn wait_many(&self, cells: &[CellId]) -> Result<(), PoisonInfo> {
        match self.telemetry {
            None => self.barrier.arrive_many(cells),
            Some(t) => {
                let span = t.barrier_wait_ns.start();
                let result = self.barrier.arrive_many(cells);
                drop(span);
                result
            }
        }
    }

    /// A counted store append (the write-ahead/seal discipline).
    fn persist(&self, cell: CellId, record: &PersistedRecord) {
        self.store
            .append(cell, record)
            .expect("snapshot store append");
        if let Some(t) = self.telemetry {
            t.wal_appends.inc();
        }
    }

    /// The causal id `cell`'s envelopes carry in (0-based) `round`: its
    /// cell-round span id under the collector's 1-based round numbering, or
    /// 0 when tracing is off.
    fn cause(&self, round: u64, cell: CellId) -> u64 {
        self.tracer.map_or(0, |t| t.cell_round_id(round + 1, cell))
    }

    /// Records how many envelopes one inbox drain pulled.
    fn observe_drain(&self, drained: u64) {
        if let Some(t) = self.telemetry {
            t.inbox_batch.observe(drained);
        }
    }
}

/// One node thread's connections (everything but the node itself, which a
/// hard-crash re-spawn replaces from a checkpoint).
struct Seat {
    inbox: Receiver<Envelope>,
    links: Vec<(CellId, Box<dyn crate::transport::EdgeLink>)>,
    result_tx: Sender<(CellId, CellState, u64, u64)>,
    snap_tx: Sender<Snapshot>,
    /// Handle into `cellflow_net_messages_sent_total` (a no-op counter when
    /// telemetry is detached).
    messages: Counter,
}

impl Seat {
    fn broadcast(&mut self, round: u64, cause: u64, make: impl Fn() -> Message) {
        for (_, link) in self.links.iter_mut() {
            link.send(Envelope {
                round,
                cause,
                msg: make(),
            });
            self.messages.inc();
        }
    }

    fn flush(&mut self) {
        for (_, link) in self.links.iter_mut() {
            link.flush();
        }
    }
}

/// Where one pooled slot is in its lifecycle.
enum SlotState {
    /// Participating in rounds: a live barrier seat, messages flowing.
    Active,
    /// Hard-crashed or torn with a scripted re-spawn: the barrier seat is
    /// reserved at `respawn * WAITS_PER_ROUND` and the slot restores from
    /// the snapshot store when the worker's loop reaches that round.
    Dormant { respawn: u64 },
    /// Out of the run for good: killed (seat never withdrawn, so the stall
    /// attributes to it) or finished (seat left, final state reported).
    Gone,
}

/// One cell multiplexed onto a pooled worker: the same node + seat a
/// dedicated thread would own, plus where it is in its lifecycle.
struct ShardSlot {
    id: CellId,
    node: CellNode,
    seat: Seat,
    state: SlotState,
}

impl ShardSlot {
    /// Reports this slot's final state on the result channel — the pooled
    /// analogue of `drive`'s exit report.
    fn report(&mut self) {
        let state = self.node.state().clone();
        let (c, i) = (self.node.consumed, self.node.inserted);
        self.seat.result_tx.send((self.id, state, c, i)).ok();
    }
}

/// One node's end-of-round report to the monitor collector.
struct Snapshot {
    round: u64,
    id: CellId,
    state: CellState,
    consumed: u64,
    inserted: u64,
}

/// The per-cell thread body, resumable: a hard-crash re-spawn re-enters it
/// at `start_round` with the restored node. Exits silently when the barrier
/// poisons (the coordinator reads the poison) or a scripted kill fires.
fn drive<'scope, 'env>(
    scope: &crossbeam::thread::Scope<'scope, 'env>,
    ctx: RunCtx<'scope>,
    mut node: CellNode,
    mut seat: Seat,
    start_round: u64,
) {
    let id = node.id();
    for round in start_round..ctx.rounds {
        // Dropped at the end of the iteration: wall-clock of one full round
        // on this cell's thread, barrier waits included.
        let _round_span = ctx.telemetry.map(|t| t.cell_round_ns.start());

        // Scripted fault transitions at the start of the round.
        for event in ctx.plan.events_at_for(round, id) {
            match event.kind {
                FaultKind::Crash | FaultKind::OverloadCrash => node.fail(),
                FaultKind::Recover => node.recover(),
                FaultKind::Corrupt(c) => node.corrupt(c),
                FaultKind::HardCrash => {
                    // The deployment-level crash: apply the protocol `fail`
                    // (so the persisted snapshot is the paper's frozen
                    // failed state), seal it into the store, hand the
                    // barrier seat over to the scripted re-spawn (if any),
                    // and let this thread die. The re-spawn restores from
                    // the store — the uniform recovery path.
                    node.fail();
                    let record = PersistedRecord {
                        round,
                        point: RecordPoint::Sealed,
                        checkpoint: node.checkpoint(),
                    };
                    ctx.persist(id, &record);
                    match ctx.plan.respawn_round_after(id, round) {
                        Some(respawn) if respawn < ctx.rounds => {
                            ctx.barrier.leave_and_rejoin_at(respawn * WAITS_PER_ROUND);
                            scope.spawn(move |scope| respawn_cell(scope, ctx, id, seat, respawn));
                        }
                        // No re-spawn (or one past the end of the run,
                        // e.g. pushed there by supervisor backoff).
                        _ => {
                            ctx.barrier.leave();
                            // Report the frozen final state now; nobody
                            // else will speak for this cell.
                            let (c, i) = (node.consumed, node.inserted);
                            seat.result_tx.send((id, node.into_state(), c, i)).ok();
                        }
                    }
                    return;
                }
                FaultKind::Kill => {
                    // Vanish without ceremony: no leave, no report. The
                    // neighbors' next barrier wait times out and the run
                    // degrades to a typed error instead of deadlocking.
                    return;
                }
            }
        }

        // Scripted dirty crash: the thread dies mid-round — the write-ahead
        // record tears halfway through its write, nothing is sent, and the
        // round is never sealed. The re-spawn will restore the last durable
        // *sealed* snapshot, which is stale by construction.
        if let Some(&tear) = ctx.tears.iter().find(|t| t.cell == id && t.round == round) {
            let record = PersistedRecord {
                round,
                point: RecordPoint::Intent,
                checkpoint: node.checkpoint(),
            };
            ctx.store
                .append_torn(id, &record)
                .expect("snapshot store append");
            if let Some(t) = ctx.telemetry {
                t.wal_appends.inc();
            }
            if tear.respawn < ctx.rounds {
                ctx.barrier
                    .leave_and_rejoin_at(tear.respawn * WAITS_PER_ROUND);
                scope.spawn(move |scope| respawn_cell(scope, ctx, id, seat, tear.respawn));
            } else {
                ctx.barrier.leave();
                let (c, i) = (node.consumed, node.inserted);
                seat.result_tx.send((id, node.into_state(), c, i)).ok();
            }
            return;
        }

        // Exchange 1: dist → Route.
        let cause = ctx.cause(round, id);
        if let Some(dist) = node.announce_dist() {
            seat.broadcast(round, cause, || Message::DistAnnounce { from: id, dist });
        }
        seat.flush();
        if ctx.wait(id).is_err() {
            return;
        }
        let mut dists = HashMap::new();
        let mut drained = 0u64;
        for env in seat.inbox.try_iter() {
            drained += 1;
            if env.round != round {
                continue; // a delayed straggler: footnote-1 silence
            }
            if let Message::DistAnnounce { from, dist } = env.msg {
                dists.insert(from, dist);
            }
        }
        ctx.observe_drain(drained);
        if ctx.wait(id).is_err() {
            return;
        }
        node.route_step(&dists);

        // Exchange 2: (next, nonempty) → Signal.
        if let Some((next, nonempty)) = node.announce_route() {
            seat.broadcast(round, cause, || Message::RouteAnnounce {
                from: id,
                next,
                nonempty,
            });
        }
        seat.flush();
        if ctx.wait(id).is_err() {
            return;
        }
        let mut routes = HashMap::new();
        let mut drained = 0u64;
        for env in seat.inbox.try_iter() {
            drained += 1;
            if env.round != round {
                continue;
            }
            if let Message::RouteAnnounce {
                from,
                next,
                nonempty,
            } = env.msg
            {
                routes.insert(from, (next, nonempty));
            }
        }
        ctx.observe_drain(drained);
        if ctx.wait(id).is_err() {
            return;
        }
        node.signal_step(&routes);

        // Exchange 3: signal → Move.
        if let Some(signal) = node.announce_signal() {
            seat.broadcast(round, cause, || Message::SignalAnnounce { from: id, signal });
        }
        seat.flush();
        if ctx.wait(id).is_err() {
            return;
        }
        let mut signals = HashMap::new();
        let mut drained = 0u64;
        for env in seat.inbox.try_iter() {
            drained += 1;
            if env.round != round {
                continue;
            }
            if let Message::SignalAnnounce { from, signal } = env.msg {
                signals.insert(from, signal);
            }
        }
        ctx.observe_drain(drained);
        if ctx.wait(id).is_err() {
            return;
        }

        // Exchange 4: Move — transfers travel as (chaos-exempt) messages.
        // The write-ahead discipline: persist an intent record *before* any
        // transfer leaves, so a crash between send and seal is visible in
        // the store instead of silently losing the round.
        let outgoing = node.move_step(&signals);
        if !outgoing.is_empty() {
            let record = PersistedRecord {
                round,
                point: RecordPoint::Intent,
                checkpoint: node.checkpoint(),
            };
            ctx.persist(id, &record);
        }
        for (to, entity, pos) in outgoing {
            let link = seat
                .links
                .iter_mut()
                .find(|(nb, _)| *nb == to)
                .map(|(_, l)| l)
                .expect("transfers go to neighbors");
            link.send(Envelope {
                round,
                cause,
                msg: Message::Transfer {
                    from: id,
                    entity,
                    pos,
                },
            });
            seat.messages.inc();
        }
        seat.flush();
        if ctx.wait(id).is_err() {
            return;
        }
        let mut drained = 0u64;
        let transfers: Vec<_> = seat
            .inbox
            .try_iter()
            .inspect(|_| drained += 1)
            .filter_map(|env| match env.msg {
                Message::Transfer { entity, pos, .. } if env.round == round => {
                    Some((entity, pos))
                }
                _ => None,
            })
            .collect();
        ctx.observe_drain(drained);
        if ctx.wait(id).is_err() {
            return;
        }
        node.receive_transfers(transfers);
        node.source_step();
        node.finish_round();

        // Seal the round: the durable snapshot a re-spawn restores from.
        let record = PersistedRecord {
            round,
            point: RecordPoint::Sealed,
            checkpoint: node.checkpoint(),
        };
        ctx.persist(id, &record);

        if ctx.collect {
            seat.snap_tx
                .send(Snapshot {
                    round,
                    id,
                    state: node.state().clone(),
                    consumed: node.consumed,
                    inserted: node.inserted,
                })
                .ok();
        }
    }
    let (c, i) = (node.consumed, node.inserted);
    seat.result_tx.send((id, node.into_state(), c, i)).ok();
}

/// The re-spawned incarnation of a crashed cell: waits for its reserved
/// barrier seat to activate, restores the node from the **latest persisted
/// snapshot** (fresh if the store has none — e.g. a tear in round 0), and
/// resumes the ordinary drive loop. After a hard crash the latest record is
/// the sealed frozen-failed state, and the scripted Recover at `respawn`
/// un-fails it; after a dirty tear it is the previous round's seal — a
/// *stale live* state the protocol must re-stabilize from.
fn respawn_cell<'scope, 'env>(
    scope: &crossbeam::thread::Scope<'scope, 'env>,
    ctx: RunCtx<'scope>,
    id: CellId,
    seat: Seat,
    respawn: u64,
) {
    if ctx
        .barrier
        .wait_for_generation(id, respawn * WAITS_PER_ROUND)
        .is_err()
    {
        return;
    }
    let node = match ctx.store.latest(id).expect("snapshot store read") {
        Some(record) => CellNode::restore(id, ctx.config, record.checkpoint, respawn),
        None => CellNode::new(id, ctx.config),
    };
    drive(scope, ctx, node, seat, respawn);
}

/// The pooled worker body: drives a contiguous shard of cells through the
/// identical round structure as [`drive`], checking every live seat into
/// the barrier with one batched arrival per wait point.
///
/// Equivalence with thread-per-cell holds because the barrier still fences
/// every send from every drain: all of a worker's slots broadcast and flush
/// *before* the batched arrival, and no slot drains until the generation
/// advances — which requires every other worker's sends to have flushed
/// too. Within a worker, slots are processed in cell-id order at each step,
/// but no step reads another slot's same-step output, so the order is
/// unobservable.
///
/// Lifecycle transitions mirror `drive` exactly: a hard crash seals the
/// frozen-failed snapshot and either reserves a seat at the scripted
/// re-spawn round (slot goes [`SlotState::Dormant`]) or leaves and reports;
/// a tear appends a torn intent record and does the same; a kill flips the
/// slot to [`SlotState::Gone`] *without* withdrawing its seat, so the next
/// barrier wait times out and the stall attributes to the killed cell, just
/// as when its dedicated thread vanished. Because the worker advances in
/// lockstep with the barrier, its loop reaches round `respawn` exactly when
/// the reserved seat activates — restoration needs no rendezvous unless the
/// whole shard is dormant, in which case the worker parks on
/// [`RoundBarrier::wait_for_generation`] like a re-spawned thread would.
fn drive_shard(ctx: RunCtx<'_>, mut slots: Vec<ShardSlot>) {
    let mut round = 0;
    while round < ctx.rounds {
        // Wall-clock of one full worker round (all slots), waits included.
        let _round_span = ctx.telemetry.map(|t| t.cell_round_ns.start());

        // Re-spawns due this round restore from the latest persisted
        // snapshot — the uniform recovery path.
        for slot in slots.iter_mut() {
            if let SlotState::Dormant { respawn } = slot.state {
                if respawn == round {
                    slot.node = match ctx.store.latest(slot.id).expect("snapshot store read") {
                        Some(r) => CellNode::restore(slot.id, ctx.config, r.checkpoint, round),
                        None => CellNode::new(slot.id, ctx.config),
                    };
                    slot.state = SlotState::Active;
                }
            }
        }

        // Scripted fault transitions, then the scripted dirty crash, in the
        // same per-cell order as `drive`.
        for slot in slots.iter_mut() {
            if !matches!(slot.state, SlotState::Active) {
                continue;
            }
            for event in ctx.plan.events_at_for(round, slot.id) {
                match event.kind {
                    FaultKind::Crash | FaultKind::OverloadCrash => slot.node.fail(),
                    FaultKind::Recover => slot.node.recover(),
                    FaultKind::Corrupt(c) => slot.node.corrupt(c),
                    FaultKind::HardCrash => {
                        slot.node.fail();
                        let record = PersistedRecord {
                            round,
                            point: RecordPoint::Sealed,
                            checkpoint: slot.node.checkpoint(),
                        };
                        ctx.persist(slot.id, &record);
                        match ctx.plan.respawn_round_after(slot.id, round) {
                            Some(respawn) if respawn < ctx.rounds => {
                                ctx.barrier.leave_and_rejoin_at(respawn * WAITS_PER_ROUND);
                                slot.state = SlotState::Dormant { respawn };
                            }
                            _ => {
                                ctx.barrier.leave();
                                slot.report();
                                slot.state = SlotState::Gone;
                            }
                        }
                        break;
                    }
                    FaultKind::Kill => {
                        slot.state = SlotState::Gone;
                        break;
                    }
                }
            }
            if !matches!(slot.state, SlotState::Active) {
                continue;
            }
            if let Some(&tear) = ctx
                .tears
                .iter()
                .find(|t| t.cell == slot.id && t.round == round)
            {
                let record = PersistedRecord {
                    round,
                    point: RecordPoint::Intent,
                    checkpoint: slot.node.checkpoint(),
                };
                ctx.store
                    .append_torn(slot.id, &record)
                    .expect("snapshot store append");
                if let Some(t) = ctx.telemetry {
                    t.wal_appends.inc();
                }
                if tear.respawn < ctx.rounds {
                    ctx.barrier.leave_and_rejoin_at(tear.respawn * WAITS_PER_ROUND);
                    slot.state = SlotState::Dormant {
                        respawn: tear.respawn,
                    };
                } else {
                    ctx.barrier.leave();
                    slot.report();
                    slot.state = SlotState::Gone;
                }
            }
        }

        let live: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.state, SlotState::Active))
            .map(|(k, _)| k)
            .collect();
        let seats: Vec<CellId> = live.iter().map(|&k| slots[k].id).collect();
        if seats.is_empty() {
            // Nothing live in this shard. If anything is dormant, park until
            // the earliest reserved seat's generation (the other workers
            // drive the barrier there); otherwise the worker is done.
            let next = slots
                .iter()
                .filter_map(|s| match s.state {
                    SlotState::Dormant { respawn } => Some((respawn, s.id)),
                    _ => None,
                })
                .min();
            match next {
                Some((respawn, id)) => {
                    if ctx
                        .barrier
                        .wait_for_generation(id, respawn * WAITS_PER_ROUND)
                        .is_err()
                    {
                        return;
                    }
                    round = respawn;
                    continue;
                }
                None => return,
            }
        }

        // Exchange 1: dist → Route.
        for &k in &live {
            let slot = &mut slots[k];
            if let Some(dist) = slot.node.announce_dist() {
                let id = slot.id;
                let cause = ctx.cause(round, id);
                slot.seat
                    .broadcast(round, cause, || Message::DistAnnounce { from: id, dist });
            }
            slot.seat.flush();
        }
        if ctx.wait_many(&seats).is_err() {
            return;
        }
        let mut dists = Vec::with_capacity(live.len());
        for &k in &live {
            let mut map = HashMap::new();
            let mut drained = 0u64;
            for env in slots[k].seat.inbox.try_iter() {
                drained += 1;
                if env.round != round {
                    continue; // a delayed straggler: footnote-1 silence
                }
                if let Message::DistAnnounce { from, dist } = env.msg {
                    map.insert(from, dist);
                }
            }
            ctx.observe_drain(drained);
            dists.push(map);
        }
        if ctx.wait_many(&seats).is_err() {
            return;
        }
        for (i, &k) in live.iter().enumerate() {
            slots[k].node.route_step(&dists[i]);
        }

        // Exchange 2: (next, nonempty) → Signal.
        for &k in &live {
            let slot = &mut slots[k];
            if let Some((next, nonempty)) = slot.node.announce_route() {
                let id = slot.id;
                let cause = ctx.cause(round, id);
                slot.seat.broadcast(round, cause, || Message::RouteAnnounce {
                    from: id,
                    next,
                    nonempty,
                });
            }
            slot.seat.flush();
        }
        if ctx.wait_many(&seats).is_err() {
            return;
        }
        let mut routes = Vec::with_capacity(live.len());
        for &k in &live {
            let mut map = HashMap::new();
            let mut drained = 0u64;
            for env in slots[k].seat.inbox.try_iter() {
                drained += 1;
                if env.round != round {
                    continue;
                }
                if let Message::RouteAnnounce {
                    from,
                    next,
                    nonempty,
                } = env.msg
                {
                    map.insert(from, (next, nonempty));
                }
            }
            ctx.observe_drain(drained);
            routes.push(map);
        }
        if ctx.wait_many(&seats).is_err() {
            return;
        }
        for (i, &k) in live.iter().enumerate() {
            slots[k].node.signal_step(&routes[i]);
        }

        // Exchange 3: signal → Move.
        for &k in &live {
            let slot = &mut slots[k];
            if let Some(signal) = slot.node.announce_signal() {
                let id = slot.id;
                let cause = ctx.cause(round, id);
                slot.seat
                    .broadcast(round, cause, || Message::SignalAnnounce { from: id, signal });
            }
            slot.seat.flush();
        }
        if ctx.wait_many(&seats).is_err() {
            return;
        }
        let mut signals = Vec::with_capacity(live.len());
        for &k in &live {
            let mut map = HashMap::new();
            let mut drained = 0u64;
            for env in slots[k].seat.inbox.try_iter() {
                drained += 1;
                if env.round != round {
                    continue;
                }
                if let Message::SignalAnnounce { from, signal } = env.msg {
                    map.insert(from, signal);
                }
            }
            ctx.observe_drain(drained);
            signals.push(map);
        }
        if ctx.wait_many(&seats).is_err() {
            return;
        }

        // Exchange 4: Move — write-ahead intent before any transfer leaves.
        for (i, &k) in live.iter().enumerate() {
            let slot = &mut slots[k];
            let outgoing = slot.node.move_step(&signals[i]);
            if !outgoing.is_empty() {
                let record = PersistedRecord {
                    round,
                    point: RecordPoint::Intent,
                    checkpoint: slot.node.checkpoint(),
                };
                ctx.persist(slot.id, &record);
            }
            let id = slot.id;
            let cause = ctx.cause(round, id);
            for (to, entity, pos) in outgoing {
                let link = slot
                    .seat
                    .links
                    .iter_mut()
                    .find(|(nb, _)| *nb == to)
                    .map(|(_, l)| l)
                    .expect("transfers go to neighbors");
                link.send(Envelope {
                    round,
                    cause,
                    msg: Message::Transfer {
                        from: id,
                        entity,
                        pos,
                    },
                });
                slot.seat.messages.inc();
            }
            slot.seat.flush();
        }
        if ctx.wait_many(&seats).is_err() {
            return;
        }
        let mut transfers = Vec::with_capacity(live.len());
        for &k in &live {
            let mut drained = 0u64;
            let batch: Vec<_> = slots[k]
                .seat
                .inbox
                .try_iter()
                .inspect(|_| drained += 1)
                .filter_map(|env| match env.msg {
                    Message::Transfer { entity, pos, .. } if env.round == round => {
                        Some((entity, pos))
                    }
                    _ => None,
                })
                .collect();
            ctx.observe_drain(drained);
            transfers.push(batch);
        }
        if ctx.wait_many(&seats).is_err() {
            return;
        }
        for (i, &k) in live.iter().enumerate() {
            let slot = &mut slots[k];
            slot.node.receive_transfers(std::mem::take(&mut transfers[i]));
            slot.node.source_step();
            slot.node.finish_round();
            let record = PersistedRecord {
                round,
                point: RecordPoint::Sealed,
                checkpoint: slot.node.checkpoint(),
            };
            ctx.persist(slot.id, &record);
            if ctx.collect {
                slot.seat
                    .snap_tx
                    .send(Snapshot {
                        round,
                        id: slot.id,
                        state: slot.node.state().clone(),
                        consumed: slot.node.consumed,
                        inserted: slot.node.inserted,
                    })
                    .ok();
            }
        }
        round += 1;
    }
    for slot in slots.iter_mut() {
        if matches!(slot.state, SlotState::Active) {
            slot.report();
        }
    }
}

/// The monitor collector: reassembles each round's global state from node
/// snapshots and feeds it to the monitors. Hard-dead cells (between a
/// hard crash and its re-spawn) send nothing; the collector carries their
/// last reported state forward with the `fail` transition applied, which is
/// exactly the shared-variable reference's reading of those rounds.
#[allow(clippy::too_many_arguments)]
fn collect_rounds(
    config: &SystemConfig,
    plan: &FaultPlan,
    tears: &[TearSpec],
    rounds: u64,
    cells: &[CellId],
    snap_rx: Receiver<Snapshot>,
    mut monitors: Vec<Box<dyn Monitor>>,
    noisy_until: Option<u64>,
    partition: Option<&PartitionSchedule>,
    patience: Duration,
    telemetry: Option<&NetTelemetry>,
    tracer: Option<Tracer>,
    barrier: &RoundBarrier,
    mut recorder: Option<Box<cellflow_core::snapshot::Recorder>>,
) -> (
    Vec<MonitorViolation>,
    Vec<String>,
    Option<Box<cellflow_core::snapshot::Recorder>>,
) {
    let n = cells.len();
    let (mut prev_consumed, mut prev_inserted) = (0u64, 0u64);
    // Per-cell (consumed, inserted) watermarks from the previous round, so
    // the tracer can attribute each round's deliveries/insertions to the
    // cell-round spans that produced them. Only maintained when tracing.
    let mut prev_cells: HashMap<CellId, (u64, u64)> = HashMap::new();
    let mut last: HashMap<CellId, (CellState, u64, u64)> = cells
        .iter()
        .map(|&c| {
            let state = if c == config.target() {
                CellState::initial_target()
            } else {
                CellState::initial()
            };
            (c, (state, 0, 0))
        })
        .collect();
    let mut violations = Vec::new();
    // The recording opens on the deployment's initial state — the keyframe
    // every replay re-derives the run from.
    if let Some(rec) = recorder.as_deref_mut() {
        let initial = SystemState {
            cells: cells.iter().map(|&c| last[&c].0.clone()).collect(),
            next_entity_id: 0,
        };
        rec.record(0, &initial);
    }
    'rounds: for round in 0..rounds {
        let mut dead = plan.hard_dead_at(round);
        // Torn cells are silent between the tear and the re-spawn, exactly
        // like hard-dead cells.
        for t in tears {
            if (t.round..t.respawn.min(rounds)).contains(&round) {
                dead.insert(t.cell);
            }
        }
        let expect = n - dead.len();
        for _ in 0..expect {
            match snap_rx.recv_timeout(patience) {
                Ok(snap) => {
                    debug_assert_eq!(snap.round, round, "snapshots arrive in round order");
                    last.insert(snap.id, (snap.state, snap.consumed, snap.inserted));
                }
                // The run aborted (timeout/kill/panic): report what the
                // completed rounds established.
                Err(_) => break 'rounds,
            }
        }
        let mut consumed_total = 0;
        let mut inserted_total = 0;
        let assembled: Vec<CellState> = cells
            .iter()
            .map(|&c| {
                let (state, consumed, inserted) = &last[&c];
                consumed_total += consumed;
                inserted_total += inserted;
                let mut state = state.clone();
                if dead.contains(&c) {
                    state.failed = true;
                    state.dist = Dist::Infinity;
                    state.next = None;
                    state.signal = None;
                }
                state
            })
            .collect();
        let state = SystemState {
            cells: assembled,
            next_entity_id: inserted_total,
        };
        // One frame per completed round, off the same sealed snapshots the
        // monitors read — the WAL seal is the recording's consistency point.
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(round + 1, &state);
        }
        let mut failed: Vec<CellId> = plan
            .events_at(round)
            .filter(|e| {
                matches!(
                    e.kind,
                    FaultKind::Crash
                        | FaultKind::HardCrash
                        | FaultKind::Kill
                        | FaultKind::OverloadCrash
                )
            })
            .map(|e| e.cell)
            .collect();
        let mut recovered: Vec<CellId> = plan
            .events_at(round)
            .filter(|e| e.kind == FaultKind::Recover)
            .map(|e| e.cell)
            .collect();
        // Scripted corruptions disturb the state this round; a torn cell's
        // re-join does too, because it restores a stale sealed snapshot.
        let mut corrupted: Vec<CellId> = plan
            .events_at(round)
            .filter(|e| matches!(e.kind, FaultKind::Corrupt(_)))
            .map(|e| e.cell)
            .collect();
        for t in tears {
            if t.round == round {
                failed.push(t.cell);
            }
            if t.respawn == round {
                recovered.push(t.cell);
                corrupted.push(t.cell);
            }
        }
        let ctx = MonitorCtx {
            config,
            state: &state,
            round: round + 1,
            failed: &failed,
            recovered: &recovered,
            corrupted: &corrupted,
            // Rounds with lossy chaos or an active link cut disturb the
            // stabilization clock; it restarts when both cease.
            ambient_chaos: noisy_until.is_some_and(|limit| round < limit)
                || partition.is_some_and(|s| s.active(round)),
            consumed_total,
            inserted_total,
        };
        let fresh_violations = violations.len();
        for monitor in monitors.iter_mut() {
            violations.extend(monitor.observe(&ctx));
        }

        // Stream this round's events: fault transitions, fresh monitor
        // verdicts (which dump the flight recorder), and the rollup. Rounds
        // are tagged 1-based, matching the monitors' numbering.
        if let Some(tel) = telemetry {
            tel.rounds_collected.inc();
            tel.overload_crashes.add(
                plan.events_at(round)
                    .filter(|e| e.kind == FaultKind::OverloadCrash)
                    .count() as u64,
            );
            let r = round + 1;
            for &cell in &failed {
                tel.emit(r, Event::Fail { cell });
            }
            for &cell in &recovered {
                tel.emit(r, Event::Recover { cell });
            }
            for &cell in &corrupted {
                tel.emit(r, Event::Corrupt { cell });
            }
            for v in &violations[fresh_violations..] {
                tel.emit(
                    r,
                    Event::Violation {
                        monitor: v.monitor.to_string(),
                        detail: v.detail.clone(),
                    },
                );
            }
            tel.emit(
                r,
                Event::RoundSummary {
                    consumed: consumed_total.saturating_sub(prev_consumed),
                    inserted: inserted_total.saturating_sub(prev_inserted),
                    // Not observable from per-cell snapshots; the sim
                    // runner's stream carries real values for these.
                    blocked: 0,
                    moved: 0,
                },
            );

            // The round's causal span tree: a `round` root over fault
            // transitions, the barrier leaf (whose `cell` is the measured
            // last completer — the critical-path culprit everyone else
            // waited on), and one `cell` leaf per cell whose counters
            // moved, under the same id its envelopes carried as `cause`.
            if let Some(tr) = tracer {
                let mut b = SpanBuilder::new(r);
                b.open(tr.span_id(r, SpanKind::Round, 0), SpanKind::Round);
                b.add_work(expect as u64);
                let mut lanes = [
                    (SpanKind::Fault, &failed, 2u64),
                    (SpanKind::Recover, &recovered, 1),
                    (SpanKind::Corrupt, &corrupted, 1),
                ]
                .map(|(kind, cells, work)| {
                    let mut cells = cells.clone();
                    cells.sort_by_key(|c| (c.i(), c.j()));
                    cells.dedup();
                    (kind, cells, work)
                });
                for (kind, cells, work) in &mut lanes {
                    for &cell in cells.iter() {
                        b.leaf(
                            tr.span_id(r, *kind, cell_ordinal(cell)),
                            *kind,
                            Some(cell),
                            *work,
                            0,
                        );
                    }
                }
                b.leaf(
                    tr.span_id(r, SpanKind::Barrier, 0),
                    SpanKind::Barrier,
                    barrier.last_completer(round),
                    WAITS_PER_ROUND,
                    0,
                );
                for &cell in cells {
                    let (consumed, inserted) = (last[&cell].1, last[&cell].2);
                    let (pc, pi) = prev_cells.get(&cell).copied().unwrap_or((0, 0));
                    let work = consumed.saturating_sub(pc) + inserted.saturating_sub(pi);
                    if work > 0 {
                        b.leaf(tr.cell_round_id(r, cell), SpanKind::Cell, Some(cell), work, 0);
                    }
                    prev_cells.insert(cell, (consumed, inserted));
                }
                for event in b.finish() {
                    tel.emit(r, event);
                }
            }
        }
        prev_consumed = consumed_total;
        prev_inserted = inserted_total;
    }
    let summaries = monitors.iter().map(|m| m.summary()).collect();
    (violations, summaries, recorder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_core::Params;
    use cellflow_grid::GridDims;

    fn config(n: u16) -> SystemConfig {
        SystemConfig::new(
            GridDims::square(n),
            CellId::new(1, n - 1),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0))
    }

    #[test]
    fn traffic_flows_through_the_deployment() {
        let report = NetSystem::new(config(4)).unwrap().run(150).unwrap();
        assert!(report.consumed > 0, "nothing was delivered");
        assert_eq!(
            report.inserted,
            report.consumed + report.state.entity_count() as u64
        );
        assert_eq!(report.chaos, ChaosStats::default());
        assert!(report.violations.is_empty());
    }

    #[test]
    fn recorded_deployment_round_trips_through_the_recording() {
        use cellflow_core::snapshot::{self, Recorder};
        use cellflow_telemetry::{FrameKind, Recording};

        let cfg = config(4);
        let recorder = Box::new(Recorder::for_config(&cfg, 0, 8, "net"));
        let (report, recording) = NetSystem::new(cfg)
            .unwrap()
            .run_monitored_recorded(40, Vec::new(), Some(recorder))
            .unwrap();
        let bytes = recording.expect("a recorder was attached");
        let rec = Recording::parse(&bytes).unwrap();
        // One opening keyframe plus one frame per completed round.
        assert_eq!(rec.frames.len(), 41);
        assert_eq!(rec.frames[0].kind, FrameKind::Keyframe);
        assert_eq!(rec.round_span(), Some((0, 40)));
        // The final frame decodes back to exactly the reported state.
        let last = snapshot::state_at(&rec, 40).unwrap();
        assert_eq!(last.cells, report.state.cells);
        assert_eq!(last.next_entity_id, report.inserted);
    }

    #[test]
    fn runs_are_deterministic_despite_threading() {
        let a = NetSystem::new(config(4)).unwrap().run(100).unwrap();
        let b = NetSystem::new(config(4)).unwrap().run(100).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_applies_failures_locally() {
        let schedule = [
            (10u64, CellId::new(1, 2), false),
            (60, CellId::new(1, 2), true),
        ];
        let report = NetSystem::new(config(4))
            .unwrap()
            .with_schedule(schedule)
            .run(200)
            .unwrap();
        // The cell recovered and traffic resumed.
        let dims = GridDims::square(4);
        assert!(!report.state.cell(dims, CellId::new(1, 2)).failed);
        assert!(report.consumed > 0);
    }

    #[test]
    fn partitioned_deployment_degrades_safely_and_matches_the_reference() {
        use cellflow_core::{PartitionPlan, System};

        let cfg = config(4);
        let plan = PartitionPlan::for_grid(GridDims::square(4)).split_col(2, 20, Some(80));
        let monitors = cellflow_core::standard_monitors(&cfg);
        let report = NetSystem::new(cfg.clone())
            .unwrap()
            .with_partition(plan.clone())
            .run_monitored(160, monitors)
            .unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.links.suppressed > 0, "the split suppressed traffic");
        assert!(report.consumed > 0, "the target-side island kept flowing");
        assert!(report
            .monitor_summaries
            .iter()
            .any(|s| s.contains("stabilized")));

        // The lockstep reference under the same per-round masks agrees
        // cell for cell: both executions read cut edges as silence.
        let schedule = plan.expand(160);
        let mut sys = System::new(cfg);
        for round in 0..160 {
            sys.set_link_cuts(schedule.mask_row(round));
            sys.step();
        }
        assert_eq!(report.state.cells, sys.state().cells);
        assert_eq!(report.consumed, sys.consumed_total());
    }

    #[test]
    fn partitioned_runs_are_deterministic() {
        use cellflow_core::PartitionPlan;

        let run = || {
            let plan =
                PartitionPlan::for_grid(GridDims::square(4)).flaky_links(11, 300, 5, Some(60));
            NetSystem::new(config(4))
                .unwrap()
                .with_partition(plan)
                .run(120)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.links.suppressed > 0);
    }

    #[test]
    #[should_panic(expected = "share a grid")]
    fn mismatched_partition_grid_is_rejected() {
        use cellflow_core::PartitionPlan;

        let plan = PartitionPlan::for_grid(GridDims::square(5)).split_col(2, 0, Some(10));
        let _ = NetSystem::new(config(4)).unwrap().with_partition(plan);
    }

    #[test]
    fn entity_budgets_are_rejected() {
        let err = NetSystem::new(config(4).with_entity_budget(3)).unwrap_err();
        assert!(matches!(err, NetError::UnsupportedConfig(_)));
        assert!(err.to_string().contains("global state"));
    }

    #[test]
    fn hard_crash_recovery_goes_through_the_store_uniformly() {
        // Same plan, explicit durable store vs. the default in-memory one:
        // recovery is the same code path, so the outcomes are identical.
        let plan = FaultPlan::new()
            .hard_crash_at(30, CellId::new(1, 2))
            .recover_at(60, CellId::new(1, 2));
        let dir = std::env::temp_dir().join(format!(
            "cellflow-runtime-uniform-{}",
            std::process::id()
        ));
        let store = crate::store::DurableStore::create(&dir).unwrap();
        let a = NetSystem::new(config(4))
            .unwrap()
            .with_plan(plan.clone())
            .with_store(Arc::new(store))
            .run(150)
            .unwrap();
        let b = NetSystem::new(config(4))
            .unwrap()
            .with_plan(plan)
            .run(150)
            .unwrap();
        assert_eq!(a, b, "store choice must not change observable behavior");
        assert!(!a.state.cell(GridDims::square(4), CellId::new(1, 2)).failed);
        assert!(a.consumed > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tear_respawn_is_absorbed_without_violations() {
        // A dirty crash tears the round-40 write-ahead record; the cell
        // re-joins at 50 from the round-39 seal — a stale live state. The
        // monitors must flag nothing: conservation rebaselines on the
        // corrupted round and the stabilization stopwatch restarts.
        let dir = std::env::temp_dir().join(format!("cellflow-runtime-tear-{}", std::process::id()));
        let store = crate::store::DurableStore::create(&dir).unwrap();
        let cfg = config(4);
        let monitors = cellflow_core::standard_monitors(&cfg);
        let report = NetSystem::new(cfg)
            .unwrap()
            .with_store(Arc::new(store))
            .with_tear(TearSpec {
                cell: CellId::new(1, 2),
                round: 40,
                respawn: 50,
            })
            .run_monitored(160, monitors)
            .unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(!report
            .state
            .cell(GridDims::square(4), CellId::new(1, 2))
            .failed);
        assert!(report.consumed > 0);
        assert!(report
            .monitor_summaries
            .iter()
            .any(|s| s.contains("stabilized")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_events_apply_in_the_deployment() {
        let plan = FaultPlan::new().corrupt_at(
            20,
            CellId::new(2, 2),
            cellflow_core::Corruption::Scramble { salt: 9 },
        );
        let cfg = config(4);
        let monitors = cellflow_core::standard_monitors(&cfg);
        let report = NetSystem::new(cfg)
            .unwrap()
            .with_plan(plan)
            .run_monitored(160, monitors)
            .unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report
            .monitor_summaries
            .iter()
            .any(|s| s.contains("stabilized")));
    }

    #[test]
    fn supervisor_decisions_surface_in_the_report() {
        let cell = CellId::new(1, 2);
        let plan = FaultPlan::new()
            .hard_crash_at(20, cell)
            .recover_at(30, cell)
            .hard_crash_at(60, cell)
            .recover_at(70, cell)
            .hard_crash_at(100, cell)
            .recover_at(110, cell);
        let policy = crate::RestartPolicy {
            backoff_base: 2,
            backoff_max: 8,
            restart_budget: 2,
            jitter_seed: 3,
        };
        let report = NetSystem::new(config(4))
            .unwrap()
            .with_plan(plan)
            .with_restart_policy(policy)
            .run(150)
            .unwrap();
        assert_eq!(report.supervisor.len(), 2, "{:?}", report.supervisor);
        assert!(matches!(
            report.supervisor[0],
            SupervisorDecision::Backoff { attempt: 2, scheduled: 70, .. }
        ));
        assert!(matches!(
            report.supervisor[1],
            SupervisorDecision::Quarantine { attempt: 3, dropped_respawn: 110, .. }
        ));
        // The quarantined cell stays down.
        assert!(report.state.cell(GridDims::square(4), cell).failed);
    }

    #[test]
    fn telemetry_captures_metrics_and_a_valid_event_stream() {
        use cellflow_telemetry::{EventLog, Registry, SharedBuffer};

        let registry = Registry::new();
        let buffer = SharedBuffer::new();
        let tel = Arc::new(
            NetTelemetry::new(&registry)
                .with_event_log(EventLog::new().with_stream(Box::new(buffer.clone()))),
        );
        let cfg = config(4);
        let monitors = cellflow_core::standard_monitors(&cfg);
        let plan = FaultPlan::new()
            .crash_at(10, CellId::new(1, 2))
            .recover_at(30, CellId::new(1, 2));
        let report = NetSystem::new(cfg)
            .unwrap()
            .with_plan(plan)
            .with_telemetry(Arc::clone(&tel))
            .run_monitored(80, monitors)
            .unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);

        // Metrics: 16 cells × 80 rounds × 8 waits, minus early leavers — at
        // least the crashed cell's silent rounds. Just sanity-check shape.
        let by_name: std::collections::HashMap<String, cellflow_telemetry::MetricSnapshot> =
            registry
                .snapshot()
                .into_iter()
                .map(|m| (m.name().to_string(), m))
                .collect();
        let waits = &by_name["cellflow_net_barrier_wait_ns"];
        if let cellflow_telemetry::MetricSnapshot::Histogram { count, .. } = waits {
            assert_eq!(*count, 16 * 80 * WAITS_PER_ROUND);
        } else {
            panic!("barrier waits must be a histogram");
        }
        if let cellflow_telemetry::MetricSnapshot::Counter { value, .. } =
            &by_name["cellflow_net_rounds_total"]
        {
            assert_eq!(*value, 80);
        } else {
            panic!("rounds must be a counter");
        }
        if let cellflow_telemetry::MetricSnapshot::Counter { value, .. } =
            &by_name["cellflow_net_wal_appends_total"]
        {
            assert!(*value >= 16 * 80, "every round seals: {value}");
        } else {
            panic!("wal appends must be a counter");
        }

        // Event stream: schema-valid, one fail + one recover, 80 rollups.
        let stats = cellflow_telemetry::validate_stream(&buffer.contents()).unwrap();
        let kind = |k: &str| {
            stats
                .by_kind
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, c)| *c)
        };
        assert_eq!(kind("fail"), Some(1));
        assert_eq!(kind("recover"), Some(1));
        assert_eq!(kind("round_summary"), Some(80));
        assert_eq!(stats.violations, 0);
        assert_eq!(stats.last_round, 80);
    }

    #[test]
    fn timeout_attributes_the_silent_cell() {
        let victim = CellId::new(2, 2);
        let err = NetSystem::new(config(4))
            .unwrap()
            .with_plan(FaultPlan::new().kill_at(20, victim))
            .with_round_timeout(Duration::from_millis(200))
            .run(60)
            .unwrap_err();
        match &err {
            NetError::Timeout { round, silent, .. } => {
                assert_eq!(*round, 20);
                assert_eq!(silent, &[victim], "the kill victim is the culprit");
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
        assert!(
            err.to_string().contains("silent cells ⟨2, 2⟩"),
            "{err}"
        );
    }

    #[test]
    fn hard_crashed_cells_are_excused_from_timeout_blame() {
        // One cell hard-crashes (cleanly leaving its seat) while another is
        // killed: only the kill victim is silent without excuse.
        let excused = CellId::new(0, 1);
        let victim = CellId::new(2, 2);
        let plan = FaultPlan::new()
            .hard_crash_at(10, excused)
            .kill_at(20, victim);
        let err = NetSystem::new(config(4))
            .unwrap()
            .with_plan(plan)
            .with_round_timeout(Duration::from_millis(200))
            .run(60)
            .unwrap_err();
        match err {
            NetError::Timeout { silent, .. } => assert_eq!(silent, vec![victim]),
            other => panic!("expected a timeout, got {other:?}"),
        }
    }

    #[test]
    fn timeout_emits_an_event_and_dumps_the_flight_recorder() {
        use cellflow_telemetry::{EventLog, Registry, SharedBuffer};

        let dir = std::env::temp_dir().join(format!(
            "cellflow-runtime-flight-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("flight.jsonl");
        let buffer = SharedBuffer::new();
        let tel = Arc::new(NetTelemetry::new(&Registry::new()).with_event_log(
            EventLog::new()
                .with_stream(Box::new(buffer.clone()))
                .with_flight_path(dump.clone()),
        ));
        let cfg = config(4);
        let monitors = cellflow_core::standard_monitors(&cfg);
        let err = NetSystem::new(cfg)
            .unwrap()
            .with_plan(FaultPlan::new().kill_at(20, CellId::new(2, 2)))
            .with_round_timeout(Duration::from_millis(200))
            .with_telemetry(Arc::clone(&tel))
            .run_monitored(60, monitors)
            .unwrap_err();
        assert!(matches!(err, NetError::Timeout { .. }), "{err:?}");

        let stats = cellflow_telemetry::validate_stream(&buffer.contents()).unwrap();
        assert_eq!(stats.timeouts, 1, "the timeout reaches the stream");
        assert_eq!(tel.log_stats().1, 1, "one flight dump written");
        let dumped = std::fs::read_to_string(&dump).unwrap();
        let dump_stats = cellflow_telemetry::validate_stream(&dumped).unwrap();
        assert!(
            dump_stats.by_kind.iter().any(|(k, _)| k == "flight_header"),
            "dump starts with its header: {dumped}"
        );
        assert_eq!(dump_stats.timeouts, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn broadcast_stamps_the_causal_id_on_every_envelope() {
        let from = CellId::new(1, 1);
        let to = CellId::new(1, 2);
        let (tx, rx) = unbounded();
        let mut seat = Seat {
            inbox: unbounded().1,
            links: vec![(to, PerfectTransport.link(from, to, tx))],
            result_tx: unbounded().0,
            snap_tx: unbounded().0,
            messages: Counter::noop(),
        };
        let tracer = Tracer::new(7);
        let cause = tracer.cell_round_id(4, from);
        seat.broadcast(3, cause, || Message::MoveDone { from });
        let env = rx.try_recv().unwrap();
        assert_eq!(env.round, 3);
        assert_eq!(env.cause, cause, "the envelope carries the sender's id");
    }

    #[test]
    fn tracer_emits_causal_spans_and_names_timeout_culprits() {
        use cellflow_telemetry::{EventLog, Registry, SharedBuffer, Trace};

        let victim = CellId::new(2, 2);
        let flapper = CellId::new(1, 2);
        let buffer = SharedBuffer::new();
        let tel = Arc::new(
            NetTelemetry::new(&Registry::new())
                .with_event_log(EventLog::new().with_stream(Box::new(buffer.clone()))),
        );
        let tracer = Tracer::new(42);
        let cfg = config(4);
        let monitors = cellflow_core::standard_monitors(&cfg);
        let plan = FaultPlan::new()
            .crash_at(5, flapper)
            .recover_at(8, flapper)
            .kill_at(20, victim);
        let err = NetSystem::new(cfg)
            .unwrap()
            .with_plan(plan)
            .with_round_timeout(Duration::from_millis(200))
            .with_telemetry(Arc::clone(&tel))
            .with_tracer(tracer)
            .run_monitored(60, monitors)
            .unwrap_err();
        assert!(matches!(err, NetError::Timeout { .. }), "{err:?}");

        let contents = buffer.contents();
        cellflow_telemetry::validate_stream(&contents).unwrap();
        let trace = Trace::parse(&contents).unwrap();
        trace.check_causality().unwrap();

        // Every cell/silent leaf uses the exact id the cell's envelopes
        // carry as `cause` for that round — the whole point of the scheme.
        let mut cell_leaves = 0;
        for span in &trace.spans {
            if let (true, Some(cell)) = (
                span.label == "cell" || span.label == "silent",
                span.cell,
            ) {
                cell_leaves += 1;
                assert_eq!(
                    span.id,
                    tracer.cell_round_id(span.round, cell),
                    "round {} leaf for ({}, {})",
                    span.round,
                    cell.i(),
                    cell.j()
                );
            }
        }
        assert!(cell_leaves > 0, "traced rounds attribute work to cells");
        for label in ["round", "barrier", "fault", "recover", "timeout"] {
            assert!(
                trace.spans.iter().any(|s| s.label == label),
                "missing {label} spans:\n{contents}"
            );
        }

        // The stalled round (0-based 20 → stream tag 21) names the killed
        // cell as the last-arriving culprit.
        let timed_out = trace.timed_out();
        assert_eq!(timed_out, vec![(21, vec![victim])]);
    }

    #[test]
    fn tracer_leaves_the_stream_byte_identical_when_absent() {
        use cellflow_telemetry::{EventLog, Registry, SharedBuffer};

        let run = |traced: bool| {
            let buffer = SharedBuffer::new();
            let tel = Arc::new(
                NetTelemetry::new(&Registry::new())
                    .with_event_log(EventLog::new().with_stream(Box::new(buffer.clone()))),
            );
            let cfg = config(4);
            let monitors = cellflow_core::standard_monitors(&cfg);
            let mut sys = NetSystem::new(cfg)
                .unwrap()
                .with_telemetry(Arc::clone(&tel));
            if traced {
                sys = sys.with_tracer(Tracer::new(42));
            }
            sys.run_monitored(40, monitors).unwrap();
            buffer.contents()
        };
        let plain = run(false);
        let traced = run(true);
        let traced_without_spans: String = traced
            .lines()
            .filter(|l| !l.contains("\"kind\":\"span\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(
            plain, traced_without_spans,
            "tracing only ever adds span lines"
        );
    }

    #[test]
    fn telemetry_does_not_change_observable_behavior() {
        use cellflow_telemetry::Registry;

        let tel = Arc::new(NetTelemetry::new(&Registry::new()));
        let plain = NetSystem::new(config(4)).unwrap().run(100).unwrap();
        let instrumented = NetSystem::new(config(4))
            .unwrap()
            .with_telemetry(tel)
            .run(100)
            .unwrap();
        assert_eq!(plain, instrumented);
    }

    #[test]
    fn pooled_workers_match_thread_per_cell() {
        // The same faulty campaign — crash/recover, hard crash with
        // re-spawn, corruption, and a dirty tear — through both deployment
        // shapes: 16 dedicated threads vs. 3 pooled workers driving shards
        // of 6/6/4 cells. Reports must be identical, monitors included.
        let run = |cap: usize| {
            let cfg = config(4);
            let monitors = cellflow_core::standard_monitors(&cfg);
            let plan = FaultPlan::new()
                .crash_at(10, CellId::new(0, 1))
                .recover_at(40, CellId::new(0, 1))
                .hard_crash_at(30, CellId::new(1, 2))
                .recover_at(60, CellId::new(1, 2))
                .corrupt_at(
                    70,
                    CellId::new(2, 2),
                    cellflow_core::Corruption::Scramble { salt: 5 },
                );
            NetSystem::new(cfg)
                .unwrap()
                .with_plan(plan)
                .with_tear(TearSpec {
                    cell: CellId::new(3, 3),
                    round: 50,
                    respawn: 80,
                })
                .with_worker_cap(cap)
                .run_monitored(150, monitors)
                .unwrap()
        };
        let threaded = run(16);
        let pooled = run(3);
        assert_eq!(pooled, threaded);
        assert!(threaded.consumed > 0, "the campaign kept flowing");
        assert!(threaded.violations.is_empty(), "{:?}", threaded.violations);
    }

    #[test]
    fn pooled_kill_still_attributes_the_silent_cell() {
        // A killed cell's slot stops arriving but its barrier seat is never
        // withdrawn — the pooled worker must preserve exactly the
        // thread-per-cell stall so the timeout still names the victim.
        let victim = CellId::new(2, 2);
        let err = NetSystem::new(config(4))
            .unwrap()
            .with_plan(FaultPlan::new().kill_at(20, victim))
            .with_worker_cap(4)
            .with_round_timeout(Duration::from_millis(200))
            .run(60)
            .unwrap_err();
        match err {
            NetError::Timeout { round, silent, .. } => {
                assert_eq!(round, 20);
                assert_eq!(silent, vec![victim], "the kill victim is the culprit");
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
    }

    #[test]
    fn pooled_large_grid_matches_the_shared_variable_reference() {
        use cellflow_core::System;

        // 32×32 = 1024 cells: far past the default cap of 64, so the run
        // multiplexes 16-cell shards onto pooled workers instead of
        // spawning a thousand OS threads — the cliff the cap removes.
        let cfg = config(32);
        let report = NetSystem::new(cfg.clone()).unwrap().run(48).unwrap();
        let mut sys = System::new(cfg);
        for _ in 0..48 {
            sys.step();
        }
        assert_eq!(report.state.cells, sys.state().cells);
        assert_eq!(report.consumed, sys.consumed_total());
        assert!(report.state.entity_count() > 0, "traffic is in flight");
    }

    #[test]
    fn monitored_clean_run_reports_summaries() {
        let cfg = config(4);
        let monitors = cellflow_core::standard_monitors(&cfg);
        let report = NetSystem::new(cfg)
            .unwrap()
            .run_monitored(80, monitors)
            .unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.monitor_summaries.len(), 4);
        assert!(report.monitor_summaries[0].contains("80 rounds"));
        assert!(report
            .monitor_summaries
            .iter()
            .any(|s| s.contains("stabilized")));
    }
}
