//! Round synchronization with timeouts and dynamic membership.
//!
//! `std::sync::Barrier` trusts every participant to arrive: one silent
//! thread deadlocks the whole deployment forever. [`RoundBarrier`] replaces
//! that blind trust with three mechanisms the chaos runtime needs:
//!
//! * **timeouts** — a participant that waits longer than the configured
//!   round timeout *poisons* the barrier; every other participant's wait
//!   returns the poison instead of blocking, and the runtime surfaces it as
//!   a typed [`NetError::Timeout`](crate::NetError::Timeout);
//! * **leaving** — a hard-crashed cell's thread can withdraw its membership
//!   so the survivors' barrier completes without it (the paper's "a failed
//!   cell … never communicates", without pretending the thread still runs);
//! * **scheduled re-joining** — a recovery re-spawn can reserve a seat at a
//!   future generation, so the successor thread is counted from exactly the
//!   round it resumes at, with no window in which the barrier under- or
//!   over-counts.
//!
//! Generations are absolute: generation `g = round · WAITS_PER_ROUND + k`
//! is the `k`-th wait of round `round`, which is what makes "re-join at the
//! start of round `r`" a plain number.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use cellflow_grid::CellId;

/// Barrier waits per protocol round: two (send-side and drain-side) for each
/// of the three announcement exchanges plus the transfer exchange.
pub const WAITS_PER_ROUND: u64 = 8;

/// Why a wait on a poisoned barrier aborted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoisonInfo {
    /// The generation that failed to complete in time.
    pub generation: u64,
    /// The cell whose wait first timed out (the *detector*, not necessarily
    /// the culprit — the culprit is whoever never arrived).
    pub cell: CellId,
    /// The cells that *had* checked into the stalled generation when the
    /// timeout fired. The culprits are the members missing from this list
    /// (minus cells that cleanly withdrew their seat).
    pub arrived: Vec<CellId>,
}

impl PoisonInfo {
    /// The protocol round the failed generation belongs to.
    pub fn round(&self) -> u64 {
        self.generation / WAITS_PER_ROUND
    }
}

struct Inner {
    participants: usize,
    arrived: usize,
    generation: u64,
    poison: Option<PoisonInfo>,
    /// Who has checked into the current generation — the attribution a
    /// timeout report needs to name the silent cells.
    arrived_cells: Vec<CellId>,
    /// Seats reserved for re-spawned threads, keyed by the generation at
    /// which they start counting.
    joins: BTreeMap<u64, usize>,
    /// When enabled (tracing), `(generation, last cell to arrive)` for
    /// every completed generation — the critical-path attribution "whose
    /// arrival closed this barrier". Scheduling-dependent by nature, so the
    /// tracer keeps it out of deterministic outputs.
    completions: Option<Vec<(u64, CellId)>>,
}

impl Inner {
    /// Completes the current generation and advances to the next, seating
    /// any scheduled joiners whose generation has arrived.
    fn advance(&mut self) {
        if let Some(log) = &mut self.completions {
            if let Some(&last) = self.arrived_cells.last() {
                log.push((self.generation, last));
            }
        }
        self.generation += 1;
        self.arrived = 0;
        self.arrived_cells.clear();
        if let Some(seats) = self.joins.remove(&self.generation) {
            self.participants += seats;
        }
        // If everyone left (e.g. every live cell hard-crashed at once),
        // fast-forward to the next reserved seat so re-spawns still wake.
        while self.participants == 0 {
            let Some((&gen, _)) = self.joins.iter().next() else {
                break;
            };
            self.generation = gen;
            self.participants += self.joins.remove(&gen).expect("key just observed");
        }
    }
}

/// A generation-counted barrier with timeouts, leave, and scheduled re-join.
pub struct RoundBarrier {
    inner: Mutex<Inner>,
    cv: Condvar,
    timeout: Duration,
}

/// `std` mutex poisoning is irrelevant here (we never panic while holding
/// the lock, and our own poison flag carries the real protocol); recover
/// the guard unconditionally.
macro_rules! lock {
    ($mutex:expr) => {
        $mutex.lock().unwrap_or_else(|e| e.into_inner())
    };
}

impl RoundBarrier {
    /// A barrier for `participants` threads where any single wait exceeding
    /// `timeout` poisons the group.
    pub fn new(participants: usize, timeout: Duration) -> RoundBarrier {
        RoundBarrier {
            inner: Mutex::new(Inner {
                participants,
                arrived: 0,
                generation: 0,
                poison: None,
                arrived_cells: Vec::new(),
                joins: BTreeMap::new(),
                completions: None,
            }),
            cv: Condvar::new(),
            timeout,
        }
    }

    /// Turns on the completion log: every completed generation records
    /// which cell's arrival closed it, readable per round via
    /// [`RoundBarrier::last_completer`]. Off by default (the log grows by
    /// [`WAITS_PER_ROUND`] entries per round).
    pub fn with_completion_log(self) -> RoundBarrier {
        lock!(self.inner).completions = Some(Vec::new());
        self
    }

    /// The cell whose arrival completed the last completed generation of
    /// `round` (generations `round·8 .. round·8+8`), if the completion log
    /// is enabled and the round completed any generation. This is the
    /// barrier-wait critical path: everyone else was already waiting on
    /// this cell. Measured attribution — scheduling-dependent, not
    /// deterministic per seed.
    pub fn last_completer(&self, round: u64) -> Option<CellId> {
        let inner = lock!(self.inner);
        let log = inner.completions.as_ref()?;
        let lo = round * WAITS_PER_ROUND;
        let hi = lo + WAITS_PER_ROUND;
        log.iter()
            .filter(|&&(gen, _)| gen >= lo && gen < hi)
            .max_by_key(|&&(gen, _)| gen)
            .map(|&(_, cell)| cell)
    }

    /// The configured per-wait timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// The poison, if any wait has timed out.
    pub fn poison(&self) -> Option<PoisonInfo> {
        lock!(self.inner).poison.clone()
    }

    /// Waits for the current generation to complete.
    ///
    /// # Errors
    ///
    /// The [`PoisonInfo`] if this wait timed out (this caller becomes the
    /// detector) or another participant already poisoned the barrier.
    pub fn wait(&self, cell: CellId) -> Result<(), PoisonInfo> {
        let mut inner = lock!(self.inner);
        if let Some(p) = &inner.poison {
            return Err(p.clone());
        }
        let gen = inner.generation;
        inner.arrived += 1;
        inner.arrived_cells.push(cell);
        if inner.arrived == inner.participants {
            inner.advance();
            self.cv.notify_all();
            return Ok(());
        }
        loop {
            let (guard, result) = self
                .cv
                .wait_timeout(inner, self.timeout)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if let Some(p) = &inner.poison {
                return Err(p.clone());
            }
            if inner.generation != gen {
                return Ok(());
            }
            if result.timed_out() {
                let p = PoisonInfo {
                    generation: gen,
                    cell,
                    arrived: inner.arrived_cells.clone(),
                };
                inner.poison = Some(p.clone());
                self.cv.notify_all();
                return Err(p);
            }
        }
    }

    /// Checks `cells.len()` seats into the current generation at once — the
    /// pooled runtime's one-call-per-shard arrival. Behaviorally equivalent
    /// to `cells.len()` sequential [`RoundBarrier::wait`] calls by the same
    /// thread (every cell lands in the attribution list), minus the wakeup
    /// churn. An empty slice returns immediately without touching the
    /// barrier.
    ///
    /// # Errors
    ///
    /// The [`PoisonInfo`] if this wait timed out (the shard's first cell
    /// becomes the detector) or another participant already poisoned the
    /// barrier.
    pub fn arrive_many(&self, cells: &[CellId]) -> Result<(), PoisonInfo> {
        let Some(&detector) = cells.first() else {
            return Ok(());
        };
        let mut inner = lock!(self.inner);
        if let Some(p) = &inner.poison {
            return Err(p.clone());
        }
        let gen = inner.generation;
        inner.arrived += cells.len();
        inner.arrived_cells.extend_from_slice(cells);
        if inner.arrived == inner.participants {
            inner.advance();
            self.cv.notify_all();
            return Ok(());
        }
        loop {
            let (guard, result) = self
                .cv
                .wait_timeout(inner, self.timeout)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if let Some(p) = &inner.poison {
                return Err(p.clone());
            }
            if inner.generation != gen {
                return Ok(());
            }
            if result.timed_out() {
                let p = PoisonInfo {
                    generation: gen,
                    cell: detector,
                    arrived: inner.arrived_cells.clone(),
                };
                inner.poison = Some(p.clone());
                self.cv.notify_all();
                return Err(p);
            }
        }
    }

    /// Permanently withdraws one seat (a cell that dies and never recovers).
    /// If the leaver was the last arrival the group was waiting on, the
    /// generation completes.
    pub fn leave(&self) {
        let mut inner = lock!(self.inner);
        inner.participants -= 1;
        // Leaving may have been the completion the group was waiting on; an
        // empty group also advances (fast-forwarding to any reserved seats).
        if inner.participants == 0 || inner.arrived == inner.participants {
            inner.advance();
        }
        self.cv.notify_all();
    }

    /// Withdraws one seat now and reserves it again from `generation` on
    /// (a hard crash whose recovery is scheduled). The reserved seat is
    /// counted from the moment the barrier *advances to* `generation`, so
    /// the re-spawned thread must be waiting by then — see
    /// [`RoundBarrier::wait_for_generation`].
    ///
    /// # Panics
    ///
    /// Panics if `generation` is not in the future.
    pub fn leave_and_rejoin_at(&self, generation: u64) {
        let mut inner = lock!(self.inner);
        assert!(
            generation > inner.generation,
            "re-join generation {generation} is not after current {}",
            inner.generation
        );
        *inner.joins.entry(generation).or_insert(0) += 1;
        inner.participants -= 1;
        if inner.participants == 0 || inner.arrived == inner.participants {
            inner.advance();
        }
        self.cv.notify_all();
    }

    /// Blocks until the barrier has advanced to (at least) `generation` —
    /// the rendezvous for a re-spawned thread whose seat was reserved with
    /// [`RoundBarrier::leave_and_rejoin_at`].
    ///
    /// The wait is bounded by a generous multiple of the per-wait timeout:
    /// generations normally advance every few microseconds, so a long stall
    /// means the survivors are themselves wedged (or all dead), and the
    /// re-spawn must not hang forever on their behalf.
    ///
    /// # Errors
    ///
    /// The [`PoisonInfo`] if the barrier is (or becomes) poisoned, or if the
    /// bounded wait expires (this caller poisons and becomes the detector).
    pub fn wait_for_generation(&self, cell: CellId, generation: u64) -> Result<(), PoisonInfo> {
        let cap = self.timeout.saturating_mul(16);
        let mut inner = lock!(self.inner);
        loop {
            if let Some(p) = &inner.poison {
                return Err(p.clone());
            }
            if inner.generation >= generation {
                return Ok(());
            }
            let (guard, result) = self
                .cv
                .wait_timeout(inner, cap)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if result.timed_out() && inner.generation < generation && inner.poison.is_none() {
                let p = PoisonInfo {
                    generation: inner.generation,
                    cell,
                    arrived: inner.arrived_cells.clone(),
                };
                inner.poison = Some(p.clone());
                self.cv.notify_all();
                return Err(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn cell() -> CellId {
        CellId::new(0, 0)
    }

    #[test]
    fn lockstep_rounds_complete() {
        let barrier = RoundBarrier::new(4, Duration::from_secs(5));
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let barrier = &barrier;
                let counter = &counter;
                s.spawn(move || {
                    for _ in 0..32 {
                        barrier.wait(CellId::new(t, 0)).unwrap();
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4 * 32);
        assert_eq!(barrier.poison(), None);
    }

    #[test]
    fn missing_participant_poisons_with_detector() {
        let barrier = RoundBarrier::new(2, Duration::from_millis(50));
        // The second participant never shows up.
        let err = barrier.wait(cell()).unwrap_err();
        assert_eq!(err.generation, 0);
        assert_eq!(err.cell, cell());
        assert_eq!(err.round(), 0);
        assert_eq!(err.arrived, vec![cell()], "only the detector checked in");
        // Subsequent waits observe the existing poison immediately.
        let again = barrier.wait(CellId::new(1, 1)).unwrap_err();
        assert_eq!(again, err);
        assert_eq!(barrier.poison(), Some(err));
    }

    #[test]
    fn leaving_completes_a_pending_generation() {
        let barrier = RoundBarrier::new(2, Duration::from_secs(5));
        std::thread::scope(|s| {
            let b = &barrier;
            let waiter = s.spawn(move || b.wait(cell()));
            std::thread::sleep(Duration::from_millis(20));
            b.leave(); // the second seat withdraws; the waiter's round completes
            assert!(waiter.join().unwrap().is_ok());
        });
        // The survivor now synchronizes alone.
        assert!(barrier.wait(cell()).is_ok());
    }

    #[test]
    fn rejoin_seat_counts_from_its_generation() {
        let barrier = RoundBarrier::new(2, Duration::from_secs(5));
        std::thread::scope(|s| {
            let b = &barrier;
            // Thread A runs generations 0..6 solo after B leaves, then needs
            // B's successor from generation 6 on.
            let successor = s.spawn(move || {
                b.wait_for_generation(CellId::new(1, 0), 6).unwrap();
                for _ in 6..10 {
                    b.wait(CellId::new(1, 0)).unwrap();
                }
            });
            b.leave_and_rejoin_at(6);
            for _ in 0..10 {
                b.wait(cell()).unwrap();
            }
            successor.join().unwrap();
        });
        assert_eq!(barrier.poison(), None);
    }

    #[test]
    fn batched_arrivals_complete_generations_and_attribute() {
        // Two shards of two seats each: each arrives as a batch.
        let barrier = RoundBarrier::new(4, Duration::from_secs(5));
        std::thread::scope(|s| {
            let b = &barrier;
            let other = s.spawn(move || {
                for _ in 0..16 {
                    b.arrive_many(&[CellId::new(2, 0), CellId::new(3, 0)])
                        .unwrap();
                }
            });
            for _ in 0..16 {
                b.arrive_many(&[CellId::new(0, 0), CellId::new(1, 0)])
                    .unwrap();
            }
            other.join().unwrap();
        });
        assert_eq!(barrier.poison(), None);
        // An empty batch is a no-op even with a pending generation.
        assert!(barrier.arrive_many(&[]).is_ok());
        assert_eq!(barrier.poison(), None);

        // A stalled batch poisons with every batched cell in the
        // attribution list and its first cell as the detector.
        let barrier = RoundBarrier::new(3, Duration::from_millis(50));
        let err = barrier
            .arrive_many(&[CellId::new(0, 0), CellId::new(1, 0)])
            .unwrap_err();
        assert_eq!(err.cell, CellId::new(0, 0));
        assert_eq!(err.arrived, vec![CellId::new(0, 0), CellId::new(1, 0)]);
    }

    #[test]
    fn completion_log_names_the_closing_cell() {
        // Solo participant: it completes every generation itself.
        let barrier = RoundBarrier::new(1, Duration::from_secs(5)).with_completion_log();
        for _ in 0..WAITS_PER_ROUND * 2 {
            barrier.wait(cell()).unwrap();
        }
        assert_eq!(barrier.last_completer(0), Some(cell()));
        assert_eq!(barrier.last_completer(1), Some(cell()));
        assert_eq!(barrier.last_completer(2), None, "round never ran");

        // Two staggered participants: the last completer is always the
        // late one.
        let barrier = RoundBarrier::new(2, Duration::from_secs(5)).with_completion_log();
        let late = CellId::new(1, 0);
        std::thread::scope(|s| {
            let b = &barrier;
            let early = s.spawn(move || {
                for _ in 0..WAITS_PER_ROUND {
                    b.wait(cell()).unwrap();
                }
            });
            for _ in 0..WAITS_PER_ROUND {
                std::thread::sleep(Duration::from_millis(2));
                b.wait(late).unwrap();
            }
            early.join().unwrap();
        });
        assert_eq!(barrier.last_completer(0), Some(late));

        // Off by default.
        let plain = RoundBarrier::new(1, Duration::from_secs(5));
        plain.wait(cell()).unwrap();
        assert_eq!(plain.last_completer(0), None);
    }

    #[test]
    fn all_dead_fast_forwards_to_the_rejoin() {
        let barrier = RoundBarrier::new(1, Duration::from_secs(5));
        std::thread::scope(|s| {
            let b = &barrier;
            let successor = s.spawn(move || {
                b.wait_for_generation(cell(), 4).unwrap();
                b.wait(cell()).unwrap() // completes solo
            });
            std::thread::sleep(Duration::from_millis(20));
            // The only participant leaves with a seat reserved at gen 4: the
            // barrier must fast-forward so the successor wakes.
            b.leave_and_rejoin_at(4);
            successor.join().unwrap();
        });
    }
}
