//! Restart supervision for hard-crashed cells: exponential backoff with
//! deterministic jitter, restart budgets, and flapping-cell quarantine.
//!
//! Como et al. (arXiv:1205.0076) show that *how* a distributed system
//! restarts failed components decides whether local failures cascade; a
//! supervisor that blindly re-spawns a flapping cell at full speed is a
//! resonance amplifier. This module applies the classic supervision recipe
//! to the scripted fault world of [`FaultPlan`]:
//!
//! * the **first** restart of a cell is free (fast recovery of a one-off
//!   crash);
//! * each **repeat** restart is pushed back by an exponentially growing
//!   backoff plus a deterministic per-(cell, attempt) jitter, so repeated
//!   victims don't re-join in lockstep;
//! * a cell that exhausts its **restart budget** is *quarantined*: its
//!   scripted re-spawn is dropped and the cell stays down (the paper's
//!   protocol tolerates a permanently failed cell; it does not owe cheap
//!   restarts to one that keeps dying).
//!
//! Everything is a *plan rewrite* performed before the run starts:
//! [`RestartPolicy::rewrite`] maps the scripted plan to an **effective
//! plan**, which both the node threads and the monitor collector then
//! consume. That keeps supervision fully deterministic — same plan, same
//! policy, same effective schedule — which the byte-identical certificate
//! reports of `cellflow stabilize` rely on.

use cellflow_core::{FaultKind, FaultPlan};
use cellflow_grid::CellId;

/// Supervision knobs. The default policy is the identity: no backoff, no
/// budget, every scripted re-spawn honored as written.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Backoff (in rounds) applied to the second restart of a cell; the
    /// `k`-th repeat doubles it `k − 2` more times. `0` disables backoff.
    pub backoff_base: u64,
    /// Backoff ceiling in rounds (the exponential is clamped here).
    pub backoff_max: u64,
    /// Restarts allowed per cell before quarantine. `u32::MAX` means never
    /// quarantine.
    pub restart_budget: u32,
    /// Seed for the deterministic jitter mixed into repeat restarts.
    pub jitter_seed: u64,
}

impl Default for RestartPolicy {
    fn default() -> RestartPolicy {
        RestartPolicy {
            backoff_base: 0,
            backoff_max: 0,
            restart_budget: u32::MAX,
            jitter_seed: 0,
        }
    }
}

/// One supervision intervention, reported alongside the run so campaigns
/// can assert on what the supervisor actually did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SupervisorDecision {
    /// A repeat restart was delayed.
    Backoff {
        /// The restarting cell.
        cell: CellId,
        /// Which restart of this cell this was (1-based).
        attempt: u32,
        /// The re-spawn round the plan scripted.
        scheduled: u64,
        /// The re-spawn round after backoff + jitter.
        delayed_to: u64,
    },
    /// A cell exhausted its restart budget; its re-spawn was dropped.
    Quarantine {
        /// The quarantined cell.
        cell: CellId,
        /// Which restart attempt crossed the budget (1-based).
        attempt: u32,
        /// The re-spawn round that was dropped.
        dropped_respawn: u64,
    },
}

// splitmix64 — the deterministic jitter hash, shared via
// `cellflow_core::hash` (stream-pinned there against this module's
// historical private copy).
use cellflow_core::hash::splitmix64;

impl RestartPolicy {
    /// `true` if this policy never changes a plan (the default).
    pub fn is_identity(&self) -> bool {
        self.backoff_base == 0 && self.restart_budget == u32::MAX
    }

    /// The backoff (without jitter) for the `attempt`-th restart of a cell.
    fn backoff_rounds(&self, attempt: u32) -> u64 {
        if self.backoff_base == 0 || attempt < 2 {
            return 0;
        }
        let doublings = (attempt - 2).min(62);
        self.backoff_base
            .saturating_mul(1u64 << doublings)
            .min(self.backoff_max.max(self.backoff_base))
    }

    /// The deterministic jitter for the `attempt`-th restart of `cell`:
    /// `[0, backoff_base)` rounds, or `0` when backoff is disabled or the
    /// attempt is free.
    fn jitter_rounds(&self, cell: CellId, attempt: u32) -> u64 {
        if self.backoff_base == 0 || attempt < 2 {
            return 0;
        }
        let key = self
            .jitter_seed
            .wrapping_add((cell.i() as u64) << 40)
            .wrapping_add((cell.j() as u64) << 20)
            .wrapping_add(attempt as u64);
        splitmix64(key) % self.backoff_base
    }

    /// Rewrites `plan` into the effective plan this policy supervises:
    /// repeat re-spawns are delayed by backoff + jitter, and re-spawns past
    /// the restart budget are dropped (quarantine). Returns the effective
    /// plan and every intervention taken, in event order. A budget of `N`
    /// honors **at most `N` restarts** per cell; the `N+1`-th is the first
    /// quarantined.
    ///
    /// Only the `Recover` paired with each [`FaultKind::HardCrash`] or
    /// [`FaultKind::OverloadCrash`] is touched (the overload case is how a
    /// supervisor disciplines a cascade campaign's optimistic restarts);
    /// soft crashes ([`FaultKind::Crash`]) recover in place without a
    /// re-spawn and are none of the supervisor's business.
    pub fn rewrite(&self, plan: &FaultPlan) -> (FaultPlan, Vec<SupervisorDecision>) {
        if self.is_identity() {
            return (plan.clone(), Vec::new());
        }
        // Matching runs against the *scripted* rounds, never rounds this
        // rewrite already pushed back — a backoff must not make a recover
        // look available to a later crash.
        let original: Vec<cellflow_core::FaultEvent> = plan.events().to_vec();
        let mut events = original.clone();
        let mut decisions = Vec::new();
        // Supervised crashes in chronological order, counting attempts
        // per cell.
        let mut crashes: Vec<(u64, CellId)> = original
            .iter()
            .filter(|e| {
                matches!(e.kind, FaultKind::HardCrash | FaultKind::OverloadCrash)
            })
            .map(|e| (e.round, e.cell))
            .collect();
        crashes.sort();
        let mut attempts: std::collections::BTreeMap<CellId, u32> =
            std::collections::BTreeMap::new();
        // Every recover a crash has matched, honored or not: a scripted
        // re-spawn answers exactly one crash.
        let mut claimed: std::collections::BTreeSet<usize> =
            std::collections::BTreeSet::new();
        let mut dropped: Vec<usize> = Vec::new();
        for (crash_round, cell) in crashes {
            // The matching scripted re-spawn: the earliest Recover of this
            // cell after the crash that hasn't been claimed yet.
            let Some((idx, scheduled)) = original
                .iter()
                .enumerate()
                .filter(|&(k, e)| {
                    e.cell == cell
                        && e.kind == FaultKind::Recover
                        && e.round > crash_round
                        && !claimed.contains(&k)
                })
                .map(|(k, e)| (k, e.round))
                .min_by_key(|&(_, round)| round)
            else {
                continue; // crash with no scripted re-spawn
            };
            claimed.insert(idx);
            let attempt = attempts.entry(cell).or_insert(0);
            *attempt += 1;
            let attempt = *attempt;
            if attempt > self.restart_budget {
                dropped.push(idx);
                decisions.push(SupervisorDecision::Quarantine {
                    cell,
                    attempt,
                    dropped_respawn: scheduled,
                });
                continue;
            }
            let delay = self.backoff_rounds(attempt) + self.jitter_rounds(cell, attempt);
            if delay > 0 {
                events[idx].round = scheduled + delay;
                decisions.push(SupervisorDecision::Backoff {
                    cell,
                    attempt,
                    scheduled,
                    delayed_to: scheduled + delay,
                });
            }
        }
        let mut effective = FaultPlan::new();
        for (k, e) in events.iter().enumerate() {
            if !dropped.contains(&k) {
                effective = effective.with_event(e.round, e.cell, e.kind);
            }
        }
        (effective, decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> CellId {
        CellId::new(1, 1)
    }

    #[test]
    fn default_policy_is_identity() {
        let plan = FaultPlan::new()
            .hard_crash_at(5, cell())
            .recover_at(10, cell())
            .hard_crash_at(20, cell())
            .recover_at(25, cell());
        let (effective, decisions) = RestartPolicy::default().rewrite(&plan);
        assert_eq!(effective, plan);
        assert!(decisions.is_empty());
    }

    #[test]
    fn first_restart_is_free_repeats_back_off() {
        let plan = FaultPlan::new()
            .hard_crash_at(5, cell())
            .recover_at(10, cell())
            .hard_crash_at(20, cell())
            .recover_at(25, cell())
            .hard_crash_at(40, cell())
            .recover_at(45, cell());
        let policy = RestartPolicy {
            backoff_base: 4,
            backoff_max: 64,
            restart_budget: u32::MAX,
            jitter_seed: 7,
        };
        let (effective, decisions) = policy.rewrite(&plan);
        // First re-spawn untouched.
        assert_eq!(effective.respawn_round_after(cell(), 5), Some(10));
        // Second delayed by 4 + jitter(∈ [0,4)), third by 8 + jitter.
        let second = effective.respawn_round_after(cell(), 20).unwrap();
        assert!((29..33).contains(&second), "second respawn at {second}");
        let third = effective.respawn_round_after(cell(), 40).unwrap();
        assert!((53..57).contains(&third), "third respawn at {third}");
        assert_eq!(decisions.len(), 2);
        assert!(matches!(
            decisions[0],
            SupervisorDecision::Backoff { attempt: 2, scheduled: 25, .. }
        ));
        // Determinism: same inputs, same effective plan.
        assert_eq!(policy.rewrite(&plan).0, effective);
    }

    #[test]
    fn backoff_clamps_at_max() {
        let policy = RestartPolicy {
            backoff_base: 4,
            backoff_max: 10,
            restart_budget: u32::MAX,
            jitter_seed: 0,
        };
        assert_eq!(policy.backoff_rounds(1), 0);
        assert_eq!(policy.backoff_rounds(2), 4);
        assert_eq!(policy.backoff_rounds(3), 8);
        assert_eq!(policy.backoff_rounds(4), 10, "clamped");
        assert_eq!(policy.backoff_rounds(40), 10, "no overflow");
    }

    #[test]
    fn flapping_cell_is_quarantined() {
        let mut plan = FaultPlan::new();
        for k in 0..4u64 {
            plan = plan
                .hard_crash_at(10 * k, cell())
                .recover_at(10 * k + 5, cell());
        }
        let policy = RestartPolicy {
            backoff_base: 0,
            backoff_max: 0,
            restart_budget: 2,
            jitter_seed: 0,
        };
        let (effective, decisions) = policy.rewrite(&plan);
        // Restarts 1 and 2 honored; 3 and 4 quarantined.
        assert_eq!(effective.respawn_round_after(cell(), 0), Some(5));
        assert_eq!(effective.respawn_round_after(cell(), 10), Some(15));
        assert_eq!(effective.respawn_round_after(cell(), 20), None);
        let quarantines: Vec<_> = decisions
            .iter()
            .filter(|d| matches!(d, SupervisorDecision::Quarantine { .. }))
            .collect();
        assert_eq!(quarantines.len(), 2);
        // The quarantined cell counts as hard-dead forever after.
        assert!(effective.hard_dead_at(100).contains(&cell()));
    }

    #[test]
    fn budget_n_honors_at_most_n_restarts() {
        // The off-by-one pin: budget N means at most N restarts — the
        // N+1-th attempt is the first one quarantined, for every N.
        for budget in 1..=3u32 {
            let mut plan = FaultPlan::new();
            for k in 0..5u64 {
                plan = plan
                    .hard_crash_at(10 * k, cell())
                    .recover_at(10 * k + 5, cell());
            }
            let policy = RestartPolicy {
                restart_budget: budget,
                ..RestartPolicy::default()
            };
            let (effective, decisions) = policy.rewrite(&plan);
            let honored = (0..5u64)
                .filter(|&k| effective.respawn_round_after(cell(), 10 * k).is_some())
                .count();
            assert_eq!(honored, budget as usize, "budget {budget}");
            let quarantines = decisions
                .iter()
                .filter(|d| matches!(d, SupervisorDecision::Quarantine { .. }))
                .count();
            assert_eq!(quarantines, 5 - budget as usize, "budget {budget}");
        }
    }

    #[test]
    fn shared_recover_is_claimed_by_one_crash_only() {
        // Two crashes racing for one scripted re-spawn: the first claims
        // it (a free first attempt), the second goes unanswered. The old
        // matcher double-claimed the recover, counting a phantom second
        // attempt and pushing the honored re-spawn back.
        let plan = FaultPlan::new()
            .hard_crash_at(5, cell())
            .hard_crash_at(8, cell())
            .recover_at(10, cell());
        let policy = RestartPolicy {
            backoff_base: 4,
            backoff_max: 64,
            restart_budget: u32::MAX,
            jitter_seed: 7,
        };
        let (effective, decisions) = policy.rewrite(&plan);
        assert_eq!(effective, plan, "single free restart stays as scripted");
        assert!(decisions.is_empty());
    }

    #[test]
    fn backed_off_recover_is_not_rematched_by_a_later_crash() {
        // Attempt 2's recover is delayed past crash 3. Matching runs on
        // scripted rounds, so crash 3 must still claim the *third*
        // recover, not re-claim the delayed second one.
        let plan = FaultPlan::new()
            .hard_crash_at(0, cell())
            .recover_at(5, cell())
            .hard_crash_at(10, cell())
            .recover_at(15, cell())
            .hard_crash_at(40, cell())
            .recover_at(45, cell());
        let policy = RestartPolicy {
            backoff_base: 30,
            backoff_max: 64,
            restart_budget: u32::MAX,
            jitter_seed: 1,
        };
        let (_, decisions) = policy.rewrite(&plan);
        let scheduled: Vec<u64> = decisions
            .iter()
            .filter_map(|d| match d {
                SupervisorDecision::Backoff { scheduled, .. } => Some(*scheduled),
                _ => None,
            })
            .collect();
        // Each scripted recover is delayed at most once, from its own
        // scripted round.
        assert_eq!(scheduled, vec![15, 45]);
    }

    #[test]
    fn overload_crashes_are_supervised_like_hard_crashes() {
        // A cascade campaign's optimistic restarts (OverloadCrash +
        // scripted Recover) flow through the same backoff/budget/
        // quarantine discipline: a cell that keeps re-overloading is
        // quarantined once its budget runs out.
        let mut plan = FaultPlan::new();
        for k in 0..3u64 {
            plan = plan
                .overload_crash_at(10 * k, cell())
                .recover_at(10 * k + 5, cell());
        }
        let policy = RestartPolicy {
            restart_budget: 1,
            ..RestartPolicy::default()
        };
        let (effective, decisions) = policy.rewrite(&plan);
        assert_eq!(effective.respawn_round_after(cell(), 0), Some(5));
        assert_eq!(effective.respawn_round_after(cell(), 10), None);
        let quarantines = decisions
            .iter()
            .filter(|d| matches!(d, SupervisorDecision::Quarantine { .. }))
            .count();
        assert_eq!(quarantines, 2);
    }
}
