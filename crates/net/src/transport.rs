//! The transport abstraction: how envelopes travel along grid edges.
//!
//! The runtime does not talk to channels directly; every directed edge
//! `(from, to)` gets an [`EdgeLink`] from the configured [`Transport`]:
//!
//! * [`PerfectTransport`] — the synchrony assumption of the paper taken at
//!   face value: every message arrives, exactly once, within its exchange.
//! * [`ChaosTransport`] — a seeded adversary that drops, duplicates, delays
//!   (into a later exchange, where the round tag makes receivers discard
//!   the straggler), and reorders announcement traffic per edge.
//!
//! # Determinism
//!
//! Each edge owns a private [`SmallRng`] seeded from
//! `(seed, from, to)`, and fault decisions consume only that stream in the
//! sending node's program order. Thread interleaving therefore cannot
//! change which messages are dropped: two runs with the same seed make
//! byte-identical fault decisions.
//!
//! # What chaos never touches
//!
//! [`Message::Transfer`] and [`Message::MoveDone`] are exempt. A transfer
//! *is* the entity: dropping it would destroy the entity, duplicating it
//! would clone the entity — violations of the model (the paper's Move
//! function relocates entities; it cannot lose them), not interesting
//! network weather. The announcement exchanges are precisely the traffic
//! whose loss the protocol is specified to tolerate (footnote 1: silence
//! reads as `∞`/`⊥`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cellflow_grid::CellId;
use crossbeam::channel::Sender;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::message::{Envelope, Message};

/// A directed edge's sending endpoint, as seen by one node thread.
///
/// Messages queue with [`EdgeLink::send`] and hit the wire at
/// [`EdgeLink::flush`], called once per exchange right before the node
/// enters the exchange's barrier — the point after which receivers drain.
pub trait EdgeLink: Send {
    /// Queues one envelope for the current exchange.
    fn send(&mut self, env: Envelope);

    /// Delivers the exchange's queued traffic (applying any faults).
    fn flush(&mut self);
}

/// A factory of [`EdgeLink`]s — the deployment's network fabric.
pub trait Transport: Sync {
    /// Creates the link for the directed edge `from → to` over the raw
    /// channel `tx`.
    fn link(&self, from: CellId, to: CellId, tx: Sender<Envelope>) -> Box<dyn EdgeLink>;
}

/// The faithful fabric: immediate, exactly-once, in-order delivery.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfectTransport;

struct PerfectLink {
    tx: Sender<Envelope>,
}

impl EdgeLink for PerfectLink {
    fn send(&mut self, env: Envelope) {
        // A receiver that already exited (aborted run) makes sends fail;
        // that is fine, the sender will observe the abort at its barrier.
        self.tx.send(env).ok();
    }

    fn flush(&mut self) {}
}

impl Transport for PerfectTransport {
    fn link(&self, _from: CellId, _to: CellId, tx: Sender<Envelope>) -> Box<dyn EdgeLink> {
        Box::new(PerfectLink { tx })
    }
}

/// Fault rates and seed for a [`ChaosTransport`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the per-edge fault streams.
    pub seed: u64,
    /// Probability an announcement is dropped outright.
    pub drop_rate: f64,
    /// Probability an announcement is held back and delivered during a
    /// later exchange (where the round/variant filter discards it — the
    /// mechanically-honest version of a message "too late to matter").
    pub delay_rate: f64,
    /// Probability a delivered announcement is sent twice.
    pub dup_rate: f64,
    /// Probability a flush's queued messages are emitted in reversed order.
    pub reorder_rate: f64,
    /// Chaos applies only to rounds `< until_round` (`None` = all rounds).
    /// A quiet tail lets stabilization measurements run on a calm network.
    pub until_round: Option<u64>,
}

impl ChaosConfig {
    /// A configuration with every rate zero (useful as a base to tweak).
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop_rate: 0.0,
            delay_rate: 0.0,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            until_round: None,
        }
    }

    /// `true` if no fault can ever fire.
    pub fn is_quiet(&self) -> bool {
        self.drop_rate == 0.0
            && self.delay_rate == 0.0
            && self.dup_rate == 0.0
            && self.reorder_rate == 0.0
    }

    /// `true` if drops and delays are impossible (duplication and
    /// reordering alone are absorbed by the receivers' keyed drains, so
    /// such runs stay bit-identical to the reference).
    pub fn is_lossless(&self) -> bool {
        self.drop_rate == 0.0 && self.delay_rate == 0.0
    }

    fn active(&self, round: u64) -> bool {
        match self.until_round {
            Some(limit) => round < limit,
            None => true,
        }
    }
}

/// Tallies of the faults a [`ChaosTransport`] actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Announcements dropped.
    pub dropped: u64,
    /// Announcements delivered twice.
    pub duplicated: u64,
    /// Announcements delivered one exchange late (read as silence).
    pub delayed: u64,
    /// Flushes whose queue was emitted reversed.
    pub reordered: u64,
}

#[derive(Default)]
struct StatsCells {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    reordered: AtomicU64,
}

/// The adversarial fabric. Create per run; collect the tally with
/// [`ChaosTransport::stats`] after the run completes.
pub struct ChaosTransport {
    config: ChaosConfig,
    stats: Arc<StatsCells>,
}

impl ChaosTransport {
    /// A fabric injecting faults per `config`.
    pub fn new(config: ChaosConfig) -> ChaosTransport {
        ChaosTransport {
            config,
            stats: Arc::new(StatsCells::default()),
        }
    }

    /// The injected-fault tally so far (complete once all links are done).
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            dropped: self.stats.dropped.load(Ordering::Relaxed),
            duplicated: self.stats.duplicated.load(Ordering::Relaxed),
            delayed: self.stats.delayed.load(Ordering::Relaxed),
            reordered: self.stats.reordered.load(Ordering::Relaxed),
        }
    }
}

/// Splitmix-style mix of the run seed and the directed edge's endpoints, so
/// every edge draws from a distinct, schedule-independent stream.
fn edge_seed(seed: u64, from: CellId, to: CellId) -> u64 {
    let mut z = seed
        ^ ((from.i() as u64) << 48)
        ^ ((from.j() as u64) << 32)
        ^ ((to.i() as u64) << 16)
        ^ (to.j() as u64);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct ChaosLink {
    tx: Sender<Envelope>,
    rng: SmallRng,
    config: ChaosConfig,
    stats: Arc<StatsCells>,
    /// Messages queued since the last flush.
    queue: Vec<Envelope>,
    /// Messages held back by a delay fault, delivered (stale) next flush.
    held: Vec<Envelope>,
}

fn is_exempt(msg: &Message) -> bool {
    matches!(msg, Message::Transfer { .. } | Message::MoveDone { .. })
}

impl EdgeLink for ChaosLink {
    fn send(&mut self, env: Envelope) {
        self.queue.push(env);
    }

    fn flush(&mut self) {
        // Stragglers from the previous exchange go out first; their round
        // and variant no longer match what the receiver drains for, so they
        // are read as silence — exactly footnote 1's "no timely response".
        for env in self.held.drain(..) {
            self.tx.send(env).ok();
        }
        let mut queue = std::mem::take(&mut self.queue);
        if queue.len() > 1 && self.rng.gen_bool(self.config.reorder_rate) {
            queue.reverse();
            self.stats.reordered.fetch_add(1, Ordering::Relaxed);
        }
        for env in queue {
            if is_exempt(&env.msg) || !self.config.active(env.round) {
                self.tx.send(env).ok();
                continue;
            }
            if self.rng.gen_bool(self.config.drop_rate) {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if self.rng.gen_bool(self.config.delay_rate) {
                self.stats.delayed.fetch_add(1, Ordering::Relaxed);
                self.held.push(env);
                continue;
            }
            let dup = self.rng.gen_bool(self.config.dup_rate);
            self.tx.send(env.clone()).ok();
            if dup {
                self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                self.tx.send(env).ok();
            }
        }
    }
}

impl Transport for ChaosTransport {
    fn link(&self, from: CellId, to: CellId, tx: Sender<Envelope>) -> Box<dyn EdgeLink> {
        Box::new(ChaosLink {
            tx,
            rng: SmallRng::seed_from_u64(edge_seed(self.config.seed, from, to)),
            config: self.config,
            stats: self.stats.clone(),
            queue: Vec::new(),
            held: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_routing::Dist;
    use crossbeam::channel::unbounded;

    fn announce(round: u64) -> Envelope {
        Envelope {
            round,
            msg: Message::DistAnnounce {
                from: CellId::new(0, 0),
                dist: Dist::Finite(3),
            },
        }
    }

    fn transfer(round: u64) -> Envelope {
        Envelope {
            round,
            msg: Message::Transfer {
                from: CellId::new(0, 0),
                entity: cellflow_core::EntityId(1),
                pos: CellId::new(0, 1).center(),
            },
        }
    }

    #[test]
    fn perfect_link_delivers_immediately() {
        let (tx, rx) = unbounded();
        let mut link = PerfectTransport.link(CellId::new(0, 0), CellId::new(0, 1), tx);
        link.send(announce(0));
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn chaos_drops_at_rate_one_but_never_transfers() {
        let transport = ChaosTransport::new(ChaosConfig {
            drop_rate: 1.0,
            ..ChaosConfig::quiet(42)
        });
        let (tx, rx) = unbounded();
        let mut link = transport.link(CellId::new(0, 0), CellId::new(0, 1), tx);
        for round in 0..10 {
            link.send(announce(round));
            link.send(transfer(round));
            link.flush();
        }
        let received: Vec<Envelope> = rx.try_iter().collect();
        assert_eq!(received.len(), 10, "transfers are exempt from chaos");
        assert!(received
            .iter()
            .all(|e| matches!(e.msg, Message::Transfer { .. })));
        assert_eq!(transport.stats().dropped, 10);
    }

    #[test]
    fn delayed_messages_arrive_stale_next_flush() {
        let transport = ChaosTransport::new(ChaosConfig {
            delay_rate: 1.0,
            ..ChaosConfig::quiet(7)
        });
        let (tx, rx) = unbounded();
        let mut link = transport.link(CellId::new(0, 0), CellId::new(0, 1), tx);
        link.send(announce(0));
        link.flush();
        assert_eq!(rx.try_iter().count(), 0, "held back");
        link.flush();
        let late: Vec<Envelope> = rx.try_iter().collect();
        assert_eq!(late.len(), 1, "straggler delivered exactly once");
        assert_eq!(late[0].round, 0, "still tagged with its original round");
        assert_eq!(transport.stats().delayed, 1);
    }

    #[test]
    fn duplication_doubles_delivery() {
        let transport = ChaosTransport::new(ChaosConfig {
            dup_rate: 1.0,
            ..ChaosConfig::quiet(9)
        });
        let (tx, rx) = unbounded();
        let mut link = transport.link(CellId::new(0, 0), CellId::new(0, 1), tx);
        link.send(announce(0));
        link.flush();
        assert_eq!(rx.try_iter().count(), 2);
        assert_eq!(transport.stats().duplicated, 1);
    }

    #[test]
    fn until_round_quiets_the_tail() {
        let transport = ChaosTransport::new(ChaosConfig {
            drop_rate: 1.0,
            until_round: Some(5),
            ..ChaosConfig::quiet(3)
        });
        let (tx, rx) = unbounded();
        let mut link = transport.link(CellId::new(0, 0), CellId::new(0, 1), tx);
        for round in 0..10 {
            link.send(announce(round));
            link.flush();
        }
        assert_eq!(rx.try_iter().count(), 5, "rounds 5..10 fly clean");
        assert_eq!(transport.stats().dropped, 5);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed| {
            let transport = ChaosTransport::new(ChaosConfig {
                drop_rate: 0.5,
                ..ChaosConfig::quiet(seed)
            });
            let (tx, rx) = unbounded();
            let mut link = transport.link(CellId::new(1, 2), CellId::new(1, 3), tx);
            for round in 0..100 {
                link.send(announce(round));
                link.flush();
            }
            rx.try_iter().map(|e| e.round).collect::<Vec<u64>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds differ somewhere");
    }
}
