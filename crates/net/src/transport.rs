//! The transport abstraction: how envelopes travel along grid edges.
//!
//! The runtime does not talk to channels directly; every directed edge
//! `(from, to)` gets an [`EdgeLink`] from the configured [`Transport`]:
//!
//! * [`PerfectTransport`] — the synchrony assumption of the paper taken at
//!   face value: every message arrives, exactly once, within its exchange.
//! * [`ChaosTransport`] — a seeded adversary that drops, duplicates, delays
//!   (into a later exchange, where the round tag makes receivers discard
//!   the straggler), and reorders announcement traffic per edge.
//! * [`LinkFaultTransport`] — scripted link faults: wraps any inner
//!   transport and silently suppresses announcements on the directed edges
//!   a [`PartitionSchedule`] cuts for that round, so split-brain episodes
//!   compose with message chaos.
//!
//! # Determinism
//!
//! Each edge owns a private [`SmallRng`] seeded from
//! `(seed, from, to)`, and fault decisions consume only that stream in the
//! sending node's program order. Thread interleaving therefore cannot
//! change which messages are dropped: two runs with the same seed make
//! byte-identical fault decisions.
//!
//! # What chaos never touches
//!
//! [`Message::Transfer`] and [`Message::MoveDone`] are exempt. A transfer
//! *is* the entity: dropping it would destroy the entity, duplicating it
//! would clone the entity — violations of the model (the paper's Move
//! function relocates entities; it cannot lose them), not interesting
//! network weather. The announcement exchanges are precisely the traffic
//! whose loss the protocol is specified to tolerate (footnote 1: silence
//! reads as `∞`/`⊥`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cellflow_core::PartitionSchedule;
use cellflow_grid::CellId;
use crossbeam::channel::Sender;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::message::{Envelope, Message};

/// A directed edge's sending endpoint, as seen by one node thread.
///
/// Messages queue with [`EdgeLink::send`] and hit the wire at
/// [`EdgeLink::flush`], called once per exchange right before the node
/// enters the exchange's barrier — the point after which receivers drain.
pub trait EdgeLink: Send {
    /// Queues one envelope for the current exchange.
    fn send(&mut self, env: Envelope);

    /// Delivers the exchange's queued traffic (applying any faults).
    fn flush(&mut self);
}

/// A factory of [`EdgeLink`]s — the deployment's network fabric.
pub trait Transport: Sync {
    /// Creates the link for the directed edge `from → to` over the raw
    /// channel `tx`.
    fn link(&self, from: CellId, to: CellId, tx: Sender<Envelope>) -> Box<dyn EdgeLink>;
}

// Fabrics compose by reference: a wrapper like `LinkFaultTransport` can sit
// over a borrowed `&dyn Transport` without taking ownership of it.
impl<T: Transport + ?Sized> Transport for &T {
    fn link(&self, from: CellId, to: CellId, tx: Sender<Envelope>) -> Box<dyn EdgeLink> {
        (**self).link(from, to, tx)
    }
}

/// The faithful fabric: immediate, exactly-once, in-order delivery.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfectTransport;

struct PerfectLink {
    tx: Sender<Envelope>,
}

impl EdgeLink for PerfectLink {
    fn send(&mut self, env: Envelope) {
        // A receiver that already exited (aborted run) makes sends fail;
        // that is fine, the sender will observe the abort at its barrier.
        self.tx.send(env).ok();
    }

    fn flush(&mut self) {}
}

impl Transport for PerfectTransport {
    fn link(&self, _from: CellId, _to: CellId, tx: Sender<Envelope>) -> Box<dyn EdgeLink> {
        Box::new(PerfectLink { tx })
    }
}

/// Fault rates and seed for a [`ChaosTransport`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the per-edge fault streams.
    pub seed: u64,
    /// Probability an announcement is dropped outright.
    pub drop_rate: f64,
    /// Probability an announcement is held back and delivered during a
    /// later exchange (where the round/variant filter discards it — the
    /// mechanically-honest version of a message "too late to matter").
    pub delay_rate: f64,
    /// Probability a delivered announcement is sent twice.
    pub dup_rate: f64,
    /// Probability a flush's queued messages are emitted in reversed order.
    pub reorder_rate: f64,
    /// Chaos applies only to rounds `< until_round` (`None` = all rounds).
    /// A quiet tail lets stabilization measurements run on a calm network.
    pub until_round: Option<u64>,
}

impl ChaosConfig {
    /// A configuration with every rate zero (useful as a base to tweak).
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop_rate: 0.0,
            delay_rate: 0.0,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            until_round: None,
        }
    }

    /// `true` if no fault can ever fire.
    pub fn is_quiet(&self) -> bool {
        self.drop_rate == 0.0
            && self.delay_rate == 0.0
            && self.dup_rate == 0.0
            && self.reorder_rate == 0.0
    }

    /// `true` if drops and delays are impossible (duplication and
    /// reordering alone are absorbed by the receivers' keyed drains, so
    /// such runs stay bit-identical to the reference).
    pub fn is_lossless(&self) -> bool {
        self.drop_rate == 0.0 && self.delay_rate == 0.0
    }

    fn active(&self, round: u64) -> bool {
        match self.until_round {
            Some(limit) => round < limit,
            None => true,
        }
    }
}

/// Tallies of the faults a [`ChaosTransport`] actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Announcements dropped.
    pub dropped: u64,
    /// Announcements delivered twice.
    pub duplicated: u64,
    /// Announcements delivered one exchange late (read as silence).
    pub delayed: u64,
    /// Flushes whose queue was emitted reversed.
    pub reordered: u64,
}

#[derive(Default)]
struct StatsCells {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    reordered: AtomicU64,
}

/// The adversarial fabric. Create per run; collect the tally with
/// [`ChaosTransport::stats`] after the run completes.
pub struct ChaosTransport {
    config: ChaosConfig,
    stats: Arc<StatsCells>,
}

impl ChaosTransport {
    /// A fabric injecting faults per `config`.
    pub fn new(config: ChaosConfig) -> ChaosTransport {
        ChaosTransport {
            config,
            stats: Arc::new(StatsCells::default()),
        }
    }

    /// The injected-fault tally so far (complete once all links are done).
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            dropped: self.stats.dropped.load(Ordering::Relaxed),
            duplicated: self.stats.duplicated.load(Ordering::Relaxed),
            delayed: self.stats.delayed.load(Ordering::Relaxed),
            reordered: self.stats.reordered.load(Ordering::Relaxed),
        }
    }
}

// Per-edge seed derivation: splitmix of the run seed and the directed
// edge's endpoints, shared via `cellflow_core::hash` (stream-pinned there
// against this module's historical private copy).
use cellflow_core::hash::edge_seed;

struct ChaosLink {
    tx: Sender<Envelope>,
    rng: SmallRng,
    config: ChaosConfig,
    stats: Arc<StatsCells>,
    /// Messages queued since the last flush.
    queue: Vec<Envelope>,
    /// Messages held back by a delay fault, delivered (stale) next flush.
    held: Vec<Envelope>,
}

fn is_exempt(msg: &Message) -> bool {
    matches!(msg, Message::Transfer { .. } | Message::MoveDone { .. })
}

impl EdgeLink for ChaosLink {
    fn send(&mut self, env: Envelope) {
        self.queue.push(env);
    }

    fn flush(&mut self) {
        // Stragglers from the previous exchange go out first; their round
        // and variant no longer match what the receiver drains for, so they
        // are read as silence — exactly footnote 1's "no timely response".
        for env in self.held.drain(..) {
            self.tx.send(env).ok();
        }
        let mut queue = std::mem::take(&mut self.queue);
        if queue.len() > 1 && self.rng.gen_bool(self.config.reorder_rate) {
            queue.reverse();
            self.stats.reordered.fetch_add(1, Ordering::Relaxed);
        }
        for env in queue {
            if is_exempt(&env.msg) || !self.config.active(env.round) {
                self.tx.send(env).ok();
                continue;
            }
            if self.rng.gen_bool(self.config.drop_rate) {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if self.rng.gen_bool(self.config.delay_rate) {
                self.stats.delayed.fetch_add(1, Ordering::Relaxed);
                self.held.push(env);
                continue;
            }
            let dup = self.rng.gen_bool(self.config.dup_rate);
            self.tx.send(env.clone()).ok();
            if dup {
                self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                self.tx.send(env).ok();
            }
        }
    }
}

impl Transport for ChaosTransport {
    fn link(&self, from: CellId, to: CellId, tx: Sender<Envelope>) -> Box<dyn EdgeLink> {
        Box::new(ChaosLink {
            tx,
            rng: SmallRng::seed_from_u64(edge_seed(self.config.seed, from, to)),
            config: self.config,
            stats: self.stats.clone(),
            queue: Vec::new(),
            held: Vec::new(),
        })
    }
}

/// Tally of the traffic a [`LinkFaultTransport`] suppressed on cut edges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Announcements silently dropped because their directed edge was cut.
    pub suppressed: u64,
}

/// Scripted link faults as a composable fabric: wraps any inner
/// [`Transport`] and silently suppresses announcement traffic on the
/// directed edges a [`PartitionSchedule`] cuts for the envelope's round.
///
/// Cuts are *directed*: `A → B` dead while `B → A` lives is expressible,
/// which is how asymmetric link failures and split-brain episodes are
/// scripted. Entity transfers and `MoveDone` stay exempt for the same
/// reason they are exempt from chaos — a cut cannot destroy an entity, and
/// the runtime never moves one onto a cut edge anyway (the grant
/// announcement that would authorize the move is itself suppressed, so the
/// sender reads `⊥` and stays put). Partitioned cells therefore keep
/// running on footnote-1 silence instead of deadlocking.
pub struct LinkFaultTransport<T> {
    inner: T,
    schedule: Arc<PartitionSchedule>,
    suppressed: Arc<AtomicU64>,
}

impl<T: Transport> LinkFaultTransport<T> {
    /// Wraps `inner`, cutting edges per `schedule` (rounds past the
    /// schedule's horizon read as healed).
    pub fn new(inner: T, schedule: PartitionSchedule) -> LinkFaultTransport<T> {
        LinkFaultTransport {
            inner,
            schedule: Arc::new(schedule),
            suppressed: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The suppression tally so far (complete once all links are done).
    pub fn stats(&self) -> LinkStats {
        LinkStats {
            suppressed: self.suppressed.load(Ordering::Relaxed),
        }
    }
}

struct LinkFaultLink {
    inner: Box<dyn EdgeLink>,
    from: CellId,
    to: CellId,
    schedule: Arc<PartitionSchedule>,
    suppressed: Arc<AtomicU64>,
}

impl EdgeLink for LinkFaultLink {
    fn send(&mut self, env: Envelope) {
        if !is_exempt(&env.msg) && self.schedule.is_cut(env.round, self.from, self.to) {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.inner.send(env);
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

impl<T: Transport> Transport for LinkFaultTransport<T> {
    fn link(&self, from: CellId, to: CellId, tx: Sender<Envelope>) -> Box<dyn EdgeLink> {
        Box::new(LinkFaultLink {
            inner: self.inner.link(from, to, tx),
            from,
            to,
            schedule: self.schedule.clone(),
            suppressed: self.suppressed.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_routing::Dist;
    use crossbeam::channel::unbounded;

    fn announce(round: u64) -> Envelope {
        Envelope {
            round,
            cause: 0,
            msg: Message::DistAnnounce {
                from: CellId::new(0, 0),
                dist: Dist::Finite(3),
            },
        }
    }

    fn transfer(round: u64) -> Envelope {
        Envelope {
            round,
            cause: 0,
            msg: Message::Transfer {
                from: CellId::new(0, 0),
                entity: cellflow_core::EntityId(1),
                pos: CellId::new(0, 1).center(),
            },
        }
    }

    #[test]
    fn perfect_link_delivers_immediately() {
        let (tx, rx) = unbounded();
        let mut link = PerfectTransport.link(CellId::new(0, 0), CellId::new(0, 1), tx);
        link.send(announce(0));
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn chaos_drops_at_rate_one_but_never_transfers() {
        let transport = ChaosTransport::new(ChaosConfig {
            drop_rate: 1.0,
            ..ChaosConfig::quiet(42)
        });
        let (tx, rx) = unbounded();
        let mut link = transport.link(CellId::new(0, 0), CellId::new(0, 1), tx);
        for round in 0..10 {
            link.send(announce(round));
            link.send(transfer(round));
            link.flush();
        }
        let received: Vec<Envelope> = rx.try_iter().collect();
        assert_eq!(received.len(), 10, "transfers are exempt from chaos");
        assert!(received
            .iter()
            .all(|e| matches!(e.msg, Message::Transfer { .. })));
        assert_eq!(transport.stats().dropped, 10);
    }

    #[test]
    fn delayed_messages_arrive_stale_next_flush() {
        let transport = ChaosTransport::new(ChaosConfig {
            delay_rate: 1.0,
            ..ChaosConfig::quiet(7)
        });
        let (tx, rx) = unbounded();
        let mut link = transport.link(CellId::new(0, 0), CellId::new(0, 1), tx);
        link.send(announce(0));
        link.flush();
        assert_eq!(rx.try_iter().count(), 0, "held back");
        link.flush();
        let late: Vec<Envelope> = rx.try_iter().collect();
        assert_eq!(late.len(), 1, "straggler delivered exactly once");
        assert_eq!(late[0].round, 0, "still tagged with its original round");
        assert_eq!(transport.stats().delayed, 1);
    }

    #[test]
    fn duplication_doubles_delivery() {
        let transport = ChaosTransport::new(ChaosConfig {
            dup_rate: 1.0,
            ..ChaosConfig::quiet(9)
        });
        let (tx, rx) = unbounded();
        let mut link = transport.link(CellId::new(0, 0), CellId::new(0, 1), tx);
        link.send(announce(0));
        link.flush();
        assert_eq!(rx.try_iter().count(), 2);
        assert_eq!(transport.stats().duplicated, 1);
    }

    #[test]
    fn until_round_quiets_the_tail() {
        let transport = ChaosTransport::new(ChaosConfig {
            drop_rate: 1.0,
            until_round: Some(5),
            ..ChaosConfig::quiet(3)
        });
        let (tx, rx) = unbounded();
        let mut link = transport.link(CellId::new(0, 0), CellId::new(0, 1), tx);
        for round in 0..10 {
            link.send(announce(round));
            link.flush();
        }
        assert_eq!(rx.try_iter().count(), 5, "rounds 5..10 fly clean");
        assert_eq!(transport.stats().dropped, 5);
    }

    #[test]
    fn link_faults_cut_one_direction_but_never_transfers() {
        use cellflow_core::PartitionPlan;
        use cellflow_grid::GridDims;

        let a = CellId::new(0, 0);
        let b = CellId::new(0, 1);
        let plan = PartitionPlan::for_grid(GridDims::square(2)).cut(a, b, 2, Some(5));
        let transport = LinkFaultTransport::new(PerfectTransport, plan.expand(10));

        let (tx, rx) = unbounded();
        let mut cut_link = transport.link(a, b, tx);
        let (back_tx, back_rx) = unbounded();
        let mut open_link = transport.link(b, a, back_tx);
        for round in 0..10 {
            cut_link.send(announce(round));
            cut_link.send(transfer(round));
            cut_link.flush();
            open_link.send(announce(round));
            open_link.flush();
        }
        let received: Vec<Envelope> = rx.try_iter().collect();
        // Announcements vanish during rounds 2..5; transfers always pass.
        let announces = received
            .iter()
            .filter(|e| matches!(e.msg, Message::DistAnnounce { .. }))
            .count();
        assert_eq!(announces, 7);
        assert_eq!(received.len(), 17);
        assert_eq!(back_rx.try_iter().count(), 10, "the reverse edge is open");
        assert_eq!(transport.stats(), LinkStats { suppressed: 3 });
    }

    #[test]
    fn link_faults_compose_over_chaos() {
        use cellflow_core::PartitionPlan;
        use cellflow_grid::GridDims;

        let a = CellId::new(0, 0);
        let b = CellId::new(0, 1);
        let plan = PartitionPlan::for_grid(GridDims::square(2)).cut(a, b, 0, Some(5));
        let chaos = ChaosTransport::new(ChaosConfig {
            dup_rate: 1.0,
            ..ChaosConfig::quiet(3)
        });
        // Composition by reference: the chaos fabric is merely borrowed.
        let transport = LinkFaultTransport::new(&chaos, plan.expand(10));
        let (tx, rx) = unbounded();
        let mut link = transport.link(a, b, tx);
        for round in 0..10 {
            link.send(announce(round));
            link.flush();
        }
        // Rounds 0..5 are cut before chaos sees them; 5..10 get duplicated.
        assert_eq!(rx.try_iter().count(), 10);
        assert_eq!(transport.stats().suppressed, 5);
        assert_eq!(chaos.stats().duplicated, 5);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed| {
            let transport = ChaosTransport::new(ChaosConfig {
                drop_rate: 0.5,
                ..ChaosConfig::quiet(seed)
            });
            let (tx, rx) = unbounded();
            let mut link = transport.link(CellId::new(1, 2), CellId::new(1, 3), tx);
            for round in 0..100 {
                link.send(announce(round));
                link.flush();
            }
            rx.try_iter().map(|e| e.round).collect::<Vec<u64>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds differ somewhere");
    }
}
