//! Durable per-round snapshot storage with a write-ahead record.
//!
//! The first chaos runtime recovered hard-crashed nodes from an in-memory
//! [`NodeCheckpoint`] captured *at the moment of the crash* — which silently
//! assumes every crash is observed cleanly. Real crashes aren't: a node can
//! die between mutating its state and anyone noticing. This module replaces
//! that assumption with a write-ahead snapshot discipline:
//!
//! * an **`Intent`** record is appended *before* a node sends its outgoing
//!   transfers (the only irrevocable, externally visible effect of a
//!   round), so a node that dies mid-round left evidence of what it was
//!   about to do;
//! * a **`Sealed`** record is appended at the end of every completed round;
//! * recovery reads [`SnapshotStore::latest`] — the last record that made
//!   it to the store, **possibly stale** relative to where the cluster is
//!   now. The stabilization certifier is what proves that staleness
//!   harmless: a restored-from-stale node is just one more transiently
//!   corrupted cell, and Corollary 7 bounds its wash-out.
//!
//! [`DurableStore`] is the real implementation: one append-only
//! length-prefixed, CRC-framed file per cell, with torn tails repaired on
//! read. [`MemoryStore`] is the in-process stand-in for tests that don't
//! want a tempdir.

use core::fmt;
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use cellflow_core::{CellState, Dist, EntityId};
use cellflow_geom::{Fixed, Point};
use cellflow_grid::CellId;

use crate::node::NodeCheckpoint;

/// Where in its round a node was when a record was persisted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecordPoint {
    /// Written *before* the round's transfers were sent (the write-ahead
    /// record): the state the node intended to expose.
    Intent,
    /// Written after the round completed (or at a clean crash, freezing the
    /// failed state).
    Sealed,
}

/// One persisted snapshot of one cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PersistedRecord {
    /// The (0-based) protocol round the record belongs to.
    pub round: u64,
    /// Whether the record is a write-ahead intent or an end-of-round seal.
    pub point: RecordPoint,
    /// The node identity at that point.
    pub checkpoint: NodeCheckpoint,
}

/// A snapshot-store failure.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot store I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// A scripted *dirty* crash for the deployment runtime: `cell`'s thread is
/// torn down in the middle of round `round` — after appending (only) its
/// `Intent` record and **without** sending its transfers or sealing the
/// round — and re-spawned at round `respawn` from whatever
/// [`SnapshotStore::latest`] returns, which is by construction stale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TearSpec {
    /// The victim cell.
    pub cell: CellId,
    /// The (0-based) round torn mid-flight.
    pub round: u64,
    /// The (0-based) round the re-spawn resumes at; must exceed `round`.
    pub respawn: u64,
}

/// Durable (or durable-enough-for-tests) per-cell snapshot storage.
///
/// `Send + Sync`: node threads append concurrently, each to its own cell's
/// stream; a re-spawned thread reads its predecessor's stream after the
/// predecessor is gone.
pub trait SnapshotStore: Send + Sync {
    /// Appends `record` to `cell`'s stream.
    fn append(&self, cell: CellId, record: &PersistedRecord) -> Result<(), StoreError>;

    /// The last fully persisted record of `cell`'s stream, if any.
    fn latest(&self, cell: CellId) -> Result<Option<PersistedRecord>, StoreError>;

    /// Fault-injection aid: begin appending `record` but tear the write
    /// partway through, as a crash mid-`write(2)` would. The default is a
    /// no-op (a torn write to a memory store leaves no trace at all).
    fn append_torn(&self, cell: CellId, record: &PersistedRecord) -> Result<(), StoreError> {
        let _ = (cell, record);
        Ok(())
    }
}

/// An in-process store keeping only the latest record per cell — the
/// fast path for tests and for runs that don't need crash durability.
#[derive(Debug, Default)]
pub struct MemoryStore {
    cells: Mutex<HashMap<CellId, PersistedRecord>>,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }
}

impl SnapshotStore for MemoryStore {
    fn append(&self, cell: CellId, record: &PersistedRecord) -> Result<(), StoreError> {
        let mut cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        cells.insert(cell, record.clone());
        Ok(())
    }

    fn latest(&self, cell: CellId) -> Result<Option<PersistedRecord>, StoreError> {
        let cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        Ok(cells.get(&cell).cloned())
    }
}

/// A filesystem-backed store: one append-only file per cell
/// (`cell_{i}_{j}.wal`), each record framed as
/// `[payload_len: u32 LE][fnv1a(payload): u64 LE][payload]`.
///
/// A record whose frame is incomplete or whose checksum mismatches is a
/// *torn tail* (the writer died mid-append); [`DurableStore::latest`]
/// truncates it away so subsequent appends extend a clean stream, and
/// returns the last intact record.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
}

impl DurableStore {
    /// Creates a store under `dir`, wiping any previous cell streams there
    /// (a fresh deployment's recovery log).
    pub fn create<P: AsRef<Path>>(dir: P) -> Result<DurableStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "wal") {
                std::fs::remove_file(path)?;
            }
        }
        Ok(DurableStore { dir })
    }

    /// Opens a store under `dir`, preserving existing cell streams (a
    /// restarted deployment recovering its predecessor's log).
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<DurableStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(DurableStore { dir })
    }

    fn path_for(&self, cell: CellId) -> PathBuf {
        self.dir.join(format!("cell_{}_{}.wal", cell.i(), cell.j()))
    }
}

impl SnapshotStore for DurableStore {
    fn append(&self, cell: CellId, record: &PersistedRecord) -> Result<(), StoreError> {
        let payload = encode_record(record);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path_for(cell))?;
        file.write_all(&frame(&payload))?;
        file.sync_data()?;
        Ok(())
    }

    fn latest(&self, cell: CellId) -> Result<Option<PersistedRecord>, StoreError> {
        let path = self.path_for(cell);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let (records, clean_len) = decode_stream(&bytes);
        if clean_len < bytes.len() {
            // Torn tail: the writer died mid-append. Repair so future
            // appends extend a stream every reader can fully parse.
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(clean_len as u64)?;
            file.sync_data()?;
        }
        Ok(records.into_iter().last())
    }

    fn append_torn(&self, cell: CellId, record: &PersistedRecord) -> Result<(), StoreError> {
        let payload = encode_record(record);
        let framed = frame(&payload);
        let torn = &framed[..framed.len() / 2];
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path_for(cell))?;
        file.write_all(torn)?;
        file.sync_data()?;
        Ok(())
    }
}

// The checksummed frame codec, shared with the flight-recording format
// (see `cellflow_core::hash`, implemented in `cellflow_dts::hash`). The
// byte layout is frozen and pinned by stream tests there and below, so
// WAL files written before the consolidation keep parsing.
use cellflow_core::hash::{frame, next_frame, FrameStep};

/// Parses every intact frame; returns the records and the byte length of
/// the clean prefix (everything after it is a torn tail).
fn decode_stream(bytes: &[u8]) -> (Vec<PersistedRecord>, usize) {
    let mut records = Vec::new();
    let mut at = 0;
    // Incomplete header/payload or checksum mismatch ends the clean prefix.
    while let FrameStep::Frame { payload, next } = next_frame(bytes, at) {
        let Some(record) = decode_record(payload) else {
            break; // undecodable payload: treat as torn
        };
        records.push(record);
        at = next;
    }
    (records, at)
}

// ---- record codec (hand-rolled: the workspace vendors no serialization
// framework for net, and the format is trivial) ----

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn cell_opt(&mut self, v: Option<CellId>) {
        match v {
            None => self.u8(0),
            Some(c) => {
                self.u8(1);
                self.u16(c.i());
                self.u16(c.j());
            }
        }
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.at..self.at + n)?;
        self.at += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn cell_opt(&mut self) -> Option<Option<CellId>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(CellId::new(self.u16()?, self.u16()?))),
            _ => None,
        }
    }
}

fn encode_record(record: &PersistedRecord) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    e.u64(record.round);
    e.u8(match record.point {
        RecordPoint::Intent => 0,
        RecordPoint::Sealed => 1,
    });
    let cp = &record.checkpoint;
    e.u64(cp.source_seq());
    e.u64(cp.consumed());
    e.u64(cp.inserted());
    let st = cp.state();
    e.u8(st.failed as u8);
    match st.dist {
        Dist::Infinity => e.u8(0),
        Dist::Finite(d) => {
            e.u8(1);
            e.u32(d);
        }
    }
    e.cell_opt(st.next);
    e.cell_opt(st.token);
    e.cell_opt(st.signal);
    e.u32(st.ne_prev.len() as u32);
    for &n in &st.ne_prev {
        e.u16(n.i());
        e.u16(n.j());
    }
    e.u32(st.members.len() as u32);
    for (&eid, &pos) in &st.members {
        e.u64(eid.0);
        e.i64(pos.x.raw());
        e.i64(pos.y.raw());
    }
    e.0
}

fn decode_record(payload: &[u8]) -> Option<PersistedRecord> {
    let mut d = Dec { bytes: payload, at: 0 };
    let round = d.u64()?;
    let point = match d.u8()? {
        0 => RecordPoint::Intent,
        1 => RecordPoint::Sealed,
        _ => return None,
    };
    let source_seq = d.u64()?;
    let consumed = d.u64()?;
    let inserted = d.u64()?;
    let failed = match d.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let dist = match d.u8()? {
        0 => Dist::Infinity,
        1 => Dist::Finite(d.u32()?),
        _ => return None,
    };
    let next = d.cell_opt()?;
    let token = d.cell_opt()?;
    let signal = d.cell_opt()?;
    let mut state = CellState::initial();
    state.failed = failed;
    state.dist = dist;
    state.next = next;
    state.token = token;
    state.signal = signal;
    for _ in 0..d.u32()? {
        state.ne_prev.insert(CellId::new(d.u16()?, d.u16()?));
    }
    for _ in 0..d.u32()? {
        let eid = EntityId(d.u64()?);
        let x = Fixed::from_raw(d.i64()?);
        let y = Fixed::from_raw(d.i64()?);
        state.members.insert(eid, Point::new(x, y));
    }
    if d.at != payload.len() {
        return None; // trailing garbage inside a checksummed frame
    }
    Some(PersistedRecord {
        round,
        point,
        checkpoint: NodeCheckpoint::new(state, source_seq, consumed, inserted),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_core::{Params, SystemConfig};
    use cellflow_grid::GridDims;

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::new(3, 1),
            CellId::new(2, 0),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(0, 0))
    }

    fn sample_record(round: u64, point: RecordPoint) -> PersistedRecord {
        let mut state = CellState::initial();
        state.dist = Dist::Finite(3);
        state.next = Some(CellId::new(1, 0));
        state.ne_prev.insert(CellId::new(0, 0));
        state
            .members
            .insert(EntityId(7), Point::new(Fixed::from_milli(320), Fixed::HALF));
        PersistedRecord {
            round,
            point,
            checkpoint: NodeCheckpoint::new(state, 4, 2, 9),
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cellflow-store-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn codec_roundtrips() {
        let rec = sample_record(12, RecordPoint::Intent);
        let decoded = decode_record(&encode_record(&rec)).unwrap();
        assert_eq!(decoded, rec);
    }

    /// Stream pinning for the framing consolidation: a WAL stream framed by
    /// the store's historical private formulation (reproduced verbatim)
    /// must decode unchanged through the shared `core::hash` codec, and the
    /// shared codec must emit byte-identical frames — existing on-disk WAL
    /// files neither break nor change shape.
    #[test]
    fn shared_framing_matches_the_historical_wal_bytes() {
        fn frame_legacy(payload: &[u8]) -> Vec<u8> {
            let mut out = Vec::with_capacity(12 + payload.len());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(
                &cellflow_core::hash::fnv1a(payload).to_le_bytes(),
            );
            out.extend_from_slice(payload);
            out
        }
        let records = [
            sample_record(1, RecordPoint::Intent),
            sample_record(1, RecordPoint::Sealed),
            sample_record(2, RecordPoint::Sealed),
        ];
        let mut legacy_stream = Vec::new();
        let mut shared_stream = Vec::new();
        for rec in &records {
            let payload = encode_record(rec);
            legacy_stream.extend_from_slice(&frame_legacy(&payload));
            shared_stream.extend_from_slice(&frame(&payload));
        }
        assert_eq!(legacy_stream, shared_stream, "frame bytes changed");
        let (decoded, clean) = decode_stream(&legacy_stream);
        assert_eq!(clean, legacy_stream.len());
        assert_eq!(decoded, records.to_vec());
        // A legacy torn tail still truncates at the same clean prefix.
        let clean_len = legacy_stream.len();
        legacy_stream.extend_from_slice(&frame_legacy(&encode_record(&records[0]))[..10]);
        let (decoded, clean) = decode_stream(&legacy_stream);
        assert_eq!((decoded.len(), clean), (3, clean_len));
    }

    #[test]
    fn memory_store_keeps_latest_only() {
        let store = MemoryStore::new();
        let cell = CellId::new(1, 0);
        assert!(store.latest(cell).unwrap().is_none());
        store.append(cell, &sample_record(1, RecordPoint::Sealed)).unwrap();
        store.append(cell, &sample_record(2, RecordPoint::Intent)).unwrap();
        let last = store.latest(cell).unwrap().unwrap();
        assert_eq!((last.round, last.point), (2, RecordPoint::Intent));
    }

    #[test]
    fn durable_store_survives_reopen() {
        let dir = tempdir("reopen");
        let cell = CellId::new(1, 0);
        {
            let store = DurableStore::create(&dir).unwrap();
            store.append(cell, &sample_record(1, RecordPoint::Sealed)).unwrap();
            store.append(cell, &sample_record(2, RecordPoint::Sealed)).unwrap();
        }
        let store = DurableStore::open(&dir).unwrap();
        let last = store.latest(cell).unwrap().unwrap();
        assert_eq!(last, sample_record(2, RecordPoint::Sealed));
        // `create` on the same dir wipes the streams.
        let fresh = DurableStore::create(&dir).unwrap();
        assert!(fresh.latest(cell).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_repaired_and_appends_continue() {
        let dir = tempdir("torn");
        let cell = CellId::new(0, 0);
        let store = DurableStore::create(&dir).unwrap();
        store.append(cell, &sample_record(1, RecordPoint::Sealed)).unwrap();
        store.append_torn(cell, &sample_record(2, RecordPoint::Sealed)).unwrap();
        // The torn record is invisible; reading repairs the tail.
        let last = store.latest(cell).unwrap().unwrap();
        assert_eq!(last.round, 1);
        // A post-repair append lands cleanly after the intact prefix.
        store.append(cell, &sample_record(3, RecordPoint::Intent)).unwrap();
        let last = store.latest(cell).unwrap().unwrap();
        assert_eq!((last.round, last.point), (3, RecordPoint::Intent));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_middle_byte_truncates_from_there() {
        let dir = tempdir("flip");
        let cell = CellId::new(0, 0);
        let store = DurableStore::create(&dir).unwrap();
        store.append(cell, &sample_record(1, RecordPoint::Sealed)).unwrap();
        let good_len = std::fs::metadata(store.path_for(cell)).unwrap().len();
        store.append(cell, &sample_record(2, RecordPoint::Sealed)).unwrap();
        // Flip a byte inside the second record's payload.
        let path = store.path_for(cell);
        let mut bytes = std::fs::read(&path).unwrap();
        let k = good_len as usize + 13;
        bytes[k] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let last = store.latest(cell).unwrap().unwrap();
        assert_eq!(last.round, 1, "corrupted record rejected by checksum");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            good_len,
            "repair truncated the corrupted tail"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_from_record_rebuilds_the_node() {
        let cfg = config();
        let rec = sample_record(5, RecordPoint::Sealed);
        let node = crate::CellNode::restore(CellId::new(1, 0), &cfg, rec.checkpoint.clone(), 6);
        assert_eq!(node.state(), rec.checkpoint.state());
    }
}
