//! Message-passing realization of the distributed cellular flows protocol.
//!
//! The paper specifies its protocol over *shared variables* (Figure 2) and
//! sketches the translation: *"At the beginning of each round,
//! `Cell_{i,j}` broadcasts messages containing the values of these variables
//! and receives similar values from its neighbors"* (§II-B). This crate is
//! that translation made concrete: **one OS thread per cell**, unidirectional
//! channels along every grid edge, and no shared state whatsoever — each cell
//! owns its [`CellState`](cellflow_core::CellState) and learns about its
//! neighbors exclusively through messages.
//!
//! # Round structure
//!
//! The atomic `update = Route; Signal; Move` of the shared-variable model
//! compiles to **three message exchanges per round**, because each phase
//! reads variables its neighbors computed *earlier in the same round*:
//!
//! 1. exchange `dist` → compute `Route` (new `dist`, `next`);
//! 2. exchange `(next, Members ≠ ∅)` → compute `Signal` (new `NEPrev`,
//!    `token`, `signal`);
//! 3. exchange `signal` → compute `Move`; entity transfers travel as
//!    messages and are incorporated before the round ends.
//!
//! Barriers separate the exchanges, mirroring the paper's synchrony
//! assumption (bounded message delay, instantaneous computation).
//!
//! # Faults, chaos, and timeouts
//!
//! Messages travel over a pluggable [`Transport`]. The default
//! [`PerfectTransport`] delivers everything instantly; [`ChaosTransport`]
//! injects seeded, deterministic message faults (drop, delay, duplicate,
//! reorder) per edge, exempting entity transfers so conservation holds.
//! A cell that receives nothing from a neighbor treats it exactly as the
//! paper's footnote 1 prescribes for a failed cell — reads `dist = ∞` and
//! `signal = ⊥` — so lost messages degrade safely instead of corrupting
//! state.
//!
//! Scripted faults come from a [`FaultPlan`](cellflow_core::FaultPlan):
//! protocol-level crash/recover flags, *hard* crashes that kill the cell's
//! thread and re-spawn a successor from a checkpoint at the scripted
//! recovery round, and unrecoverable kills. Round synchronization uses a
//! timeout-guarded barrier ([`sync::RoundBarrier`]): a silent neighbor
//! poisons the barrier and the run returns a typed
//! [`NetError::Timeout`] instead of deadlocking.
//!
//! [`NetSystem::run_monitored`] additionally streams per-round snapshots to
//! a collector thread that reassembles the global state and evaluates
//! online [`Monitor`](cellflow_core::Monitor)s — safety (Theorem 5),
//! routing sanity, conservation, and the stabilization stopwatch
//! (Theorem 10) — reporting violations in the [`NetReport`].
//!
//! # Equivalence
//!
//! The observable behavior is **bit-identical** to the reference
//! shared-variable implementation in `cellflow-core`: integration tests run
//! both side by side (including under failure schedules) and compare entire
//! system states round by round. That is the mechanized version of the
//! paper's claim that the discrete-transition-system model faithfully
//! captures a message-passing deployment.
//!
//! ```
//! use cellflow_core::{Params, SystemConfig};
//! use cellflow_grid::{CellId, GridDims};
//! use cellflow_net::NetSystem;
//!
//! let config = SystemConfig::new(
//!     GridDims::square(4),
//!     CellId::new(3, 3),
//!     Params::from_milli(250, 50, 200)?,
//! )?
//! .with_source(CellId::new(0, 0));
//! let report = NetSystem::new(config)?.run(120)?;
//! assert!(report.consumed > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod message;
mod node;
mod runtime;
pub mod store;
mod supervisor;
pub mod sync;
mod telemetry;
mod transport;

pub use message::{Envelope, Message};
pub use node::{CellNode, NodeCheckpoint};
pub use runtime::{NetError, NetReport, NetSystem};
pub use store::{
    DurableStore, MemoryStore, PersistedRecord, RecordPoint, SnapshotStore, StoreError, TearSpec,
};
pub use supervisor::{RestartPolicy, SupervisorDecision};
pub use sync::{PoisonInfo, WAITS_PER_ROUND};
pub use telemetry::NetTelemetry;
pub use transport::{
    ChaosConfig, ChaosStats, ChaosTransport, EdgeLink, LinkFaultTransport, LinkStats,
    PerfectTransport, Transport,
};
