//! Telemetry binding for the message-passing runtime.
//!
//! A [`NetTelemetry`] bundles the metric handles the runtime's threads
//! record into — barrier wait and per-cell round latency histograms,
//! message/WAL/supervisor counters — with a shared [`EventLog`] the
//! monitor collector streams round events into (failures, recoveries,
//! corruptions, monitor verdicts, per-round rollups). A round timeout is
//! emitted as a [`Event::Timeout`] line, which also triggers the event
//! log's flight-recorder dump when one is configured — a chaos run that
//! dies leaves the last K rounds on disk.
//!
//! All handles come from one [`Registry`]; pass a disabled registry and an
//! empty log and every recording operation is a no-op, so the runtime
//! carries its instrumentation unconditionally.

use std::sync::Mutex;

use cellflow_telemetry::{Counter, Event, EventLog, Histogram, Registry};

/// The net runtime's metric handles and event sink. Construct once per run
/// (or share across runs to aggregate), attach with
/// [`NetSystem::with_telemetry`](crate::NetSystem::with_telemetry).
pub struct NetTelemetry {
    registry: Registry,
    /// Nanoseconds spent in each barrier wait (8 waits per round per cell).
    pub(crate) barrier_wait_ns: Histogram,
    /// Nanoseconds each cell thread spends on one full round.
    pub(crate) cell_round_ns: Histogram,
    /// Protocol messages sent over edge links (announcements + transfers).
    pub(crate) messages_sent: Counter,
    /// Envelopes drained from an inbox in one exchange.
    pub(crate) inbox_batch: Histogram,
    /// Write-ahead/seal records appended to the snapshot store.
    pub(crate) wal_appends: Counter,
    /// Supervisor interventions (backoffs and quarantines).
    pub(crate) supervisor_interventions: Counter,
    /// Round timeouts surfaced as [`NetError::Timeout`](crate::NetError).
    pub(crate) timeouts: Counter,
    /// Rounds the monitor collector assembled.
    pub(crate) rounds_collected: Counter,
    /// Endogenous overload crashes observed in the effective plan
    /// ([`FaultKind::OverloadCrash`](cellflow_core::FaultKind)).
    pub(crate) overload_crashes: Counter,
    /// Announcements the link-fault fabric suppressed on cut edges.
    pub(crate) links_suppressed: Counter,
    log: Mutex<EventLog>,
}

impl NetTelemetry {
    /// Registers the runtime's metrics on `registry` (under
    /// `cellflow_net_*` names) with a disabled event log; attach one with
    /// [`NetTelemetry::with_event_log`].
    pub fn new(registry: &Registry) -> NetTelemetry {
        NetTelemetry {
            registry: registry.clone(),
            barrier_wait_ns: registry.histogram("cellflow_net_barrier_wait_ns"),
            cell_round_ns: registry.histogram("cellflow_net_cell_round_ns"),
            messages_sent: registry.counter("cellflow_net_messages_sent_total"),
            inbox_batch: registry.histogram("cellflow_net_inbox_batch_size"),
            wal_appends: registry.counter("cellflow_net_wal_appends_total"),
            supervisor_interventions: registry.counter("cellflow_net_supervisor_total"),
            timeouts: registry.counter("cellflow_net_timeouts_total"),
            rounds_collected: registry.counter("cellflow_net_rounds_total"),
            overload_crashes: registry.counter("cellflow_net_overload_crashes_total"),
            links_suppressed: registry.counter("cellflow_net_links_suppressed_total"),
            log: Mutex::new(EventLog::new()),
        }
    }

    /// Attaches the structured event sink (stream and/or flight recorder).
    pub fn with_event_log(self, log: EventLog) -> NetTelemetry {
        NetTelemetry {
            log: Mutex::new(log),
            ..self
        }
    }

    /// The registry the metric handles live in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Emits one event into the log (and the flight recorder, if any).
    pub fn emit(&self, round: u64, event: Event) {
        self.log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .emit(round, event);
    }

    /// Flushes the event stream.
    pub fn flush(&self) {
        self.log.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }

    /// `(events emitted, flight dumps written)` so far.
    pub fn log_stats(&self) -> (u64, u64) {
        let log = self.log.lock().unwrap_or_else(|e| e.into_inner());
        (log.events_emitted(), log.dumps_written())
    }
}

impl std::fmt::Debug for NetTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (events, dumps) = self.log_stats();
        f.debug_struct("NetTelemetry")
            .field("registry", &self.registry)
            .field("events", &events)
            .field("dumps", &dumps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_telemetry::SharedBuffer;

    #[test]
    fn registers_standard_names() {
        let reg = Registry::new();
        let tel = NetTelemetry::new(&reg);
        tel.messages_sent.add(3);
        tel.barrier_wait_ns.observe(500);
        let names: Vec<String> = reg
            .snapshot()
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        assert!(names.contains(&"cellflow_net_messages_sent_total".to_string()));
        assert!(names.contains(&"cellflow_net_barrier_wait_ns".to_string()));
        assert!(names.contains(&"cellflow_net_links_suppressed_total".to_string()));
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn emit_goes_through_the_shared_log() {
        let buffer = SharedBuffer::new();
        let tel = NetTelemetry::new(&Registry::disabled())
            .with_event_log(EventLog::new().with_stream(Box::new(buffer.clone())));
        tel.emit(
            4,
            Event::Timeout {
                detail: "test".into(),
            },
        );
        tel.flush();
        assert_eq!(tel.log_stats().0, 1);
        let stats = cellflow_telemetry::validate_stream(&buffer.contents()).unwrap();
        assert_eq!(stats.timeouts, 1);
    }
}
