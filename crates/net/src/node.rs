//! The per-cell node: one cell's state plus the protocol logic, expressed
//! over *received messages* instead of shared-variable reads.

use std::collections::{BTreeSet, HashMap};

use cellflow_core::{gap_free_toward, CellState, Corruption, EntityId, SystemConfig};
use cellflow_geom::Point;
use cellflow_grid::CellId;
use cellflow_routing::{route_update, Dist};

/// One cell of the message-passing deployment.
///
/// Owns its [`CellState`] exclusively; every method consumes the messages of
/// one exchange (as a map from neighbor to payload — missing entries are the
/// paper's "no timely response" and read as `∞`/`⊥`) and advances the local
/// state exactly as the corresponding phase of the shared-variable reference
/// would. The runtime wires these methods to real channels; the unit tests
/// below drive them directly.
pub struct CellNode {
    id: CellId,
    neighbors: Vec<CellId>,
    is_target: bool,
    is_source: bool,
    source_rank: u64,
    source_seq: u64,
    round: u64,
    state: CellState,
    config: SystemConfig,
    /// Entities consumed by this node (only ever nonzero on the target).
    pub consumed: u64,
    /// Entities inserted by this node (only ever nonzero on sources).
    pub inserted: u64,
}

impl CellNode {
    /// Creates the node for `id` under `config`, in the initial state.
    pub fn new(id: CellId, config: &SystemConfig) -> CellNode {
        let is_target = id == config.target();
        let source_rank = config
            .sources()
            .iter()
            .position(|&s| s == id)
            .map(|k| k as u64);
        CellNode {
            id,
            neighbors: config.dims().neighbors(id).collect(),
            is_target,
            is_source: source_rank.is_some(),
            source_rank: source_rank.unwrap_or(0),
            source_seq: 0,
            round: 0,
            state: if is_target {
                CellState::initial_target()
            } else {
                CellState::initial()
            },
            config: config.clone(),
            consumed: 0,
            inserted: 0,
        }
    }

    /// This node's cell identifier.
    pub fn id(&self) -> CellId {
        self.id
    }

    /// The node's current protocol state.
    pub fn state(&self) -> &CellState {
        &self.state
    }

    /// The neighbors this node exchanges messages with.
    pub fn neighbors(&self) -> &[CellId] {
        &self.neighbors
    }

    /// Crash this node: it stops sending and pins `dist = ∞` (the `fail`
    /// transition executed locally).
    pub fn fail(&mut self) {
        self.state.failed = true;
        self.state.dist = Dist::Infinity;
        self.state.next = None;
        self.state.signal = None;
    }

    /// Recover this node; the target re-anchors its distance at 0.
    pub fn recover(&mut self) {
        self.state.failed = false;
        if self.is_target {
            self.state.dist = Dist::Finite(0);
        }
    }

    /// `true` while crashed (a crashed node sends nothing).
    pub fn is_failed(&self) -> bool {
        self.state.failed
    }

    /// Applies a transient state corruption locally — the deployment's
    /// enactment of [`FaultKind::Corrupt`], bit-identical to the reference
    /// system's [`System::corrupt`] because both delegate to
    /// [`Corruption::apply`] on the same [`CellState`].
    ///
    /// [`FaultKind::Corrupt`]: cellflow_core::FaultKind::Corrupt
    /// [`System::corrupt`]: cellflow_core::System::corrupt
    pub fn corrupt(&mut self, corruption: Corruption) {
        corruption.apply(&self.config, self.id, &mut self.state);
    }

    /// Exchange 1 payload: the `dist` this node broadcasts, or `None` when
    /// crashed (silence).
    pub fn announce_dist(&self) -> Option<Dist> {
        (!self.state.failed).then_some(self.state.dist)
    }

    /// `Route` over the received distance announcements. Missing neighbors
    /// read as `∞` (footnote 1 of the paper).
    pub fn route_step(&mut self, dists: &HashMap<CellId, Dist>) {
        if self.state.failed || self.is_target {
            return;
        }
        let (dist, next) = route_update(
            self.neighbors
                .iter()
                .map(|&n| (n, dists.get(&n).copied().unwrap_or(Dist::Infinity))),
            self.config.dist_cap(),
        );
        self.state.dist = dist;
        self.state.next = next;
    }

    /// Exchange 2 payload: `(next, Members ≠ ∅)`, or silence when crashed.
    pub fn announce_route(&self) -> Option<(Option<CellId>, bool)> {
        (!self.state.failed).then_some((self.state.next, !self.state.members.is_empty()))
    }

    /// `Signal` over the received route announcements.
    pub fn signal_step(&mut self, routes: &HashMap<CellId, (Option<CellId>, bool)>) {
        if self.state.failed {
            return;
        }
        let ne_prev: BTreeSet<CellId> = self
            .neighbors
            .iter()
            .filter(|&&n| matches!(routes.get(&n), Some(&(next, nonempty)) if next == Some(self.id) && nonempty))
            .copied()
            .collect();
        let policy = self.config.token_policy();
        let mut token = self.state.token;
        // Mirror of the reference `Signal`: a corrupted non-neighbor token
        // reads as ⊥ rather than being trusted (or panicking below).
        if token.is_some_and(|t| !self.id.is_neighbor(t)) {
            token = None;
        }
        if token.is_none() {
            token = policy.choose(&ne_prev, self.id, self.round);
        }
        let (signal, new_token) = match token {
            None => (None, None),
            Some(tok) => {
                let dir = self.id.dir_to(tok).expect("token is a neighbor");
                if gap_free_toward(
                    self.config.params(),
                    self.id,
                    dir,
                    self.state.members.values(),
                ) {
                    let rotated = if ne_prev.len() > 1 {
                        policy.rotate(&ne_prev, tok, self.id, self.round)
                    } else if ne_prev.len() == 1 {
                        ne_prev.first().copied()
                    } else {
                        None
                    };
                    (Some(tok), rotated)
                } else {
                    (None, Some(tok))
                }
            }
        };
        self.state.ne_prev = ne_prev;
        self.state.token = new_token;
        self.state.signal = signal;
    }

    /// Exchange 3 payload: the freshly computed `signal`, or silence.
    pub fn announce_signal(&self) -> Option<Option<CellId>> {
        (!self.state.failed).then_some(self.state.signal)
    }

    /// `Move` over the received signal announcements: translate members if
    /// permitted; crossing entities leave as `(neighbor, id, snapped
    /// position)` transfer messages (already in the receiver's frame) or are
    /// consumed if this node's `next` is the target.
    pub fn move_step(
        &mut self,
        signals: &HashMap<CellId, Option<CellId>>,
    ) -> Vec<(CellId, EntityId, Point)> {
        let mut outgoing = Vec::new();
        if self.state.failed || self.state.members.is_empty() {
            return outgoing;
        }
        let Some(nx) = self.state.next else {
            return outgoing;
        };
        // A crashed neighbor sent nothing: its stale signal reads as ⊥.
        if signals.get(&nx).copied().flatten() != Some(self.id) {
            return outgoing;
        }
        let dir = self.id.dir_to(nx).expect("next is a neighbor");
        let params = self.config.params();
        let (v, h) = (params.v(), params.half_l());
        let boundary = self.id.boundary(dir);
        let snapshot: Vec<(EntityId, Point)> =
            self.state.members.iter().map(|(&k, &p)| (k, p)).collect();
        for (eid, pos) in snapshot {
            let new_pos = pos.translate(dir, v);
            let far_edge = new_pos.along(dir.axis()) + h * dir.sign();
            let crossed = if dir.sign() > 0 {
                far_edge > boundary
            } else {
                far_edge < boundary
            };
            if crossed {
                self.state.members.remove(&eid);
                if nx == self.config.target() {
                    self.consumed += 1;
                } else {
                    let entry = nx.boundary(dir.opposite());
                    let snapped = new_pos.with_along(dir.axis(), entry + h * dir.sign());
                    outgoing.push((nx, eid, snapped));
                }
            } else {
                self.state.members.insert(eid, new_pos);
            }
        }
        outgoing
    }

    /// Incorporates entities that crossed into this cell this round.
    pub fn receive_transfers<I: IntoIterator<Item = (EntityId, Point)>>(&mut self, transfers: I) {
        for (eid, pos) in transfers {
            self.state.members.insert(eid, pos);
        }
    }

    /// Source insertion (end of `Move`): at most one entity per round, at the
    /// configured policy's placement, with an identifier from this source's
    /// private pool (`rank << 32 | seq` — a real deployment cannot share a
    /// counter; with a single source this coincides with the reference's
    /// sequential ids).
    pub fn source_step(&mut self) {
        if !self.is_source || self.state.failed {
            return;
        }
        let placement =
            self.config
                .source_policy()
                .placement(self.config.params(), self.id, &self.state);
        if let Some(pos) = placement {
            let eid = EntityId((self.source_rank << 32) | self.source_seq);
            self.source_seq += 1;
            self.state.members.insert(eid, pos);
            self.inserted += 1;
        }
    }

    /// Marks the end of the round (advances the local round counter used by
    /// the randomized token policy).
    pub fn finish_round(&mut self) {
        self.round += 1;
    }

    /// Consumes the node, yielding its final state (for assembly into a
    /// whole-system snapshot).
    pub fn into_state(self) -> CellState {
        self.state
    }

    /// Captures everything a re-spawned thread needs to impersonate this
    /// node: the protocol state plus the private counters (source pool
    /// position, consumed/inserted tallies).
    ///
    /// Taken at the moment of a hard crash — after [`CellNode::fail`], so
    /// the checkpointed state is the *failed* state, exactly what the
    /// paper's failure model says survives a crash (members frozen, flag
    /// set, `dist = ∞`).
    pub fn checkpoint(&self) -> NodeCheckpoint {
        NodeCheckpoint {
            state: self.state.clone(),
            source_seq: self.source_seq,
            consumed: self.consumed,
            inserted: self.inserted,
        }
    }

    /// Rebuilds the node for `id` from a checkpoint, resuming at
    /// `resume_round` (the round the re-spawned thread participates in
    /// first; the internal round counter feeds the token policy, so it must
    /// match the global round, not the crash round).
    pub fn restore(
        id: CellId,
        config: &SystemConfig,
        checkpoint: NodeCheckpoint,
        resume_round: u64,
    ) -> CellNode {
        let mut node = CellNode::new(id, config);
        node.state = checkpoint.state;
        node.source_seq = checkpoint.source_seq;
        node.consumed = checkpoint.consumed;
        node.inserted = checkpoint.inserted;
        node.round = resume_round;
        node
    }
}

/// A crashed node's preserved identity — see [`CellNode::checkpoint`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeCheckpoint {
    state: CellState,
    source_seq: u64,
    consumed: u64,
    inserted: u64,
}

impl NodeCheckpoint {
    /// Assembles a checkpoint from its parts — the decode half of a durable
    /// snapshot store; the encode half reads the accessors below.
    pub fn new(state: CellState, source_seq: u64, consumed: u64, inserted: u64) -> NodeCheckpoint {
        NodeCheckpoint {
            state,
            source_seq,
            consumed,
            inserted,
        }
    }

    /// The checkpointed protocol state.
    pub fn state(&self) -> &CellState {
        &self.state
    }

    /// The source pool position at checkpoint time.
    pub fn source_seq(&self) -> u64 {
        self.source_seq
    }

    /// Entities consumed up to checkpoint time.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Entities inserted up to checkpoint time.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_core::Params;
    use cellflow_grid::GridDims;

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::new(3, 1),
            CellId::new(2, 0),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(0, 0))
    }

    #[test]
    fn route_step_treats_silence_as_infinity() {
        let cfg = config();
        let mut node = CellNode::new(CellId::new(1, 0), &cfg);
        // Only the target responded.
        let mut dists = HashMap::new();
        dists.insert(CellId::new(2, 0), Dist::Finite(0));
        node.route_step(&dists);
        assert_eq!(node.state().dist, Dist::Finite(1));
        assert_eq!(node.state().next, Some(CellId::new(2, 0)));
        // Nobody responded at all: both neighbors read ∞.
        let mut node = CellNode::new(CellId::new(1, 0), &cfg);
        node.route_step(&HashMap::new());
        assert_eq!(node.state().dist, Dist::Infinity);
        assert_eq!(node.state().next, None);
    }

    #[test]
    fn failed_node_is_silent_and_inert() {
        let cfg = config();
        let mut node = CellNode::new(CellId::new(1, 0), &cfg);
        node.fail();
        assert!(node.is_failed());
        assert_eq!(node.announce_dist(), None);
        assert_eq!(node.announce_route(), None);
        assert_eq!(node.announce_signal(), None);
        let mut dists = HashMap::new();
        dists.insert(CellId::new(2, 0), Dist::Finite(0));
        node.route_step(&dists);
        assert_eq!(
            node.state().dist,
            Dist::Infinity,
            "crashed: Route is a no-op"
        );
        node.recover();
        assert!(!node.is_failed());
    }

    #[test]
    fn target_recovery_reanchors() {
        let cfg = config();
        let mut target = CellNode::new(CellId::new(2, 0), &cfg);
        target.fail();
        assert_eq!(target.state().dist, Dist::Infinity);
        target.recover();
        assert_eq!(target.state().dist, Dist::Finite(0));
    }

    #[test]
    fn signal_grants_and_rotates_from_messages() {
        let cfg = config();
        let mut mid = CellNode::new(CellId::new(1, 0), &cfg);
        // Upstream neighbor routes through us and is nonempty.
        let mut routes = HashMap::new();
        routes.insert(CellId::new(0, 0), (Some(CellId::new(1, 0)), true));
        routes.insert(CellId::new(2, 0), (None, false));
        mid.signal_step(&routes);
        assert_eq!(mid.state().signal, Some(CellId::new(0, 0)));
        assert_eq!(mid.state().token, Some(CellId::new(0, 0)));
        assert_eq!(mid.state().ne_prev.len(), 1);
    }

    #[test]
    fn move_step_emits_snapped_transfers() {
        let cfg = config();
        let mut src = CellNode::new(CellId::new(0, 0), &cfg);
        let mut dists = HashMap::new();
        dists.insert(CellId::new(1, 0), Dist::Finite(1));
        src.route_step(&dists);
        // Seed an entity near the east boundary.
        src.state.members.insert(
            EntityId(0),
            Point::new(
                cellflow_geom::Fixed::from_milli(850),
                cellflow_geom::Fixed::HALF,
            ),
        );
        let mut signals = HashMap::new();
        signals.insert(CellId::new(1, 0), Some(CellId::new(0, 0)));
        let out = src.move_step(&signals);
        assert_eq!(out.len(), 1);
        let (to, eid, pos) = out[0];
        assert_eq!(to, CellId::new(1, 0));
        assert_eq!(eid, EntityId(0));
        assert_eq!(pos.x, cellflow_geom::Fixed::from_milli(1_125));
        assert!(src.state().members.is_empty());
        // The receiver incorporates it verbatim.
        let mut mid = CellNode::new(CellId::new(1, 0), &cfg);
        mid.receive_transfers([(eid, pos)]);
        assert_eq!(mid.state().members[&eid], pos);
    }

    #[test]
    fn consumption_happens_at_the_sender() {
        let cfg = config();
        let mut mid = CellNode::new(CellId::new(1, 0), &cfg);
        let mut dists = HashMap::new();
        dists.insert(CellId::new(2, 0), Dist::Finite(0));
        mid.route_step(&dists);
        mid.state.members.insert(
            EntityId(3),
            Point::new(
                cellflow_geom::Fixed::from_milli(1_850),
                cellflow_geom::Fixed::HALF,
            ),
        );
        let mut signals = HashMap::new();
        signals.insert(CellId::new(2, 0), Some(CellId::new(1, 0)));
        let out = mid.move_step(&signals);
        assert!(out.is_empty(), "target-bound entities are not forwarded");
        assert_eq!(mid.consumed, 1);
        assert!(mid.state().members.is_empty());
    }

    #[test]
    fn source_mints_from_private_pool() {
        let cfg = SystemConfig::new(
            GridDims::new(3, 1),
            CellId::new(2, 0),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(0, 0))
        .with_source(CellId::new(1, 0));
        let mut second = CellNode::new(CellId::new(1, 0), &cfg);
        second.source_step();
        assert_eq!(second.inserted, 1);
        let id = *second.state().members.keys().next().unwrap();
        assert_eq!(id, EntityId(1 << 32), "rank-1 pool");
        // Crashed sources do nothing.
        second.fail();
        second.source_step();
        assert_eq!(second.inserted, 1);
    }
}
