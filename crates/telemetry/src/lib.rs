//! # cellflow-telemetry
//!
//! The unified observability substrate for the cellular-flows workspace.
//! The paper's evaluation (§IV) is measurement-driven — throughput,
//! stabilization time, and failure response are all read off executions —
//! so every runtime here (the shared-variable simulator, the zero-clone
//! engine, the message-passing net runtime) feeds **one** telemetry layer
//! instead of each keeping private counters:
//!
//! * [`Registry`] — sharded, lock-cheap metrics: monotonic [`Counter`]s,
//!   [`Gauge`]s, and fixed power-of-two-bucket [`Histogram`]s. A registry
//!   created with [`Registry::disabled`] mints no-op handles whose every
//!   operation is a single pointer check, so instrumentation can stay in
//!   hot paths (the engine's Route/Signal/Move phases) without perturbing
//!   the perf envelope when telemetry is off.
//! * [`PhaseTimers`] / [`Span`] — span-style phase timing; a span records
//!   its elapsed nanoseconds into its histogram on drop and never reads
//!   the clock when disabled.
//! * [`Event`] + [`EventLog`] — a schema-versioned (`"v":1`) JSONL event
//!   stream unifying sim trace events, failure/corruption activity,
//!   monitor verdicts, net-runtime timeouts, and supervisor actions; and
//!   [`FlightRecorder`], a bounded ring of the last K rounds that
//!   auto-dumps to disk when a violation or timeout arrives — failed chaos
//!   runs leave replayable artifacts.
//! * [`recording`] — deterministic flight recordings (`.rec` files):
//!   checksummed per-round state frames (full keyframe every K rounds,
//!   deltas between) behind `cellflow record`/`replay`/`diff`/`bisect`.
//!   This crate owns the container format; the state codec lives in
//!   `cellflow_core::snapshot`, one layer up.
//! * [`prometheus`] — text-format exposition of any registry snapshot,
//!   plus a strict validator; [`report`] — latency tables and round
//!   timelines for the `cellflow metrics` / `cellflow inspect` commands.
//! * [`json`] — the dependency-free JSON value model and parser backing
//!   stream validation (the workspace builds hermetically; no serde).
//!
//! Everything is deterministic where it can be: snapshots sort by name,
//! serialized lines use fixed key order, renders are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod prometheus;
pub mod recorder;
pub mod recording;
pub mod registry;
pub mod report;
pub mod trace;

pub use event::{validate_stream, Event, StreamStats, SCHEMA_VERSION};
pub use trace::{cell_ordinal, SpanBuilder, SpanKind, Trace, TraceSpan, Tracer};
pub use json::Json;
pub use recorder::{EventLog, FlightRecorder, SharedBuffer};
pub use recording::{
    FrameKind, RecError, RecFrame, RecHeader, Recording, RecordingWriter, REC_SCHEMA_VERSION,
};
pub use registry::{
    Counter, Gauge, Histogram, MetricSnapshot, PhaseTimers, Registry, SchedulerMetrics, Span,
    BUCKETS, SHARDS,
};
