//! A minimal JSON value model and recursive-descent parser.
//!
//! The workspace builds hermetically against vendored dependency stubs, so
//! `serde`/`serde_json` are not available to the default feature set. All
//! telemetry output is therefore *hand-serialized* (fixed key order,
//! deterministic formatting), and this module supplies the other half:
//! enough of a parser to validate JSONL event streams, round-trip the
//! schema in tests, and drive `cellflow inspect` — without any dependency.
//!
//! Numbers keep their integer-ness: integers parse to [`Json::Int`] (full
//! `i64`/`u64` range via [`Json::as_u64`]) and anything with a fraction or
//! exponent to [`Json::Float`], so round IDs and entity IDs survive
//! round-trips exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no fraction or exponent in the source). Stored as `i128`
    /// so the full `u64` and `i64` ranges both fit.
    Int(i128),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (`BTreeMap`), which makes comparisons and
    /// re-rendering deterministic; telemetry writers emit fixed key orders
    /// on their own.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// The object's field `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if this is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON (sorted object keys).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (k, (key, value)) in map.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` as a JSON string literal (quotes and escapes included).
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::new();
    escape_into(s, &mut out);
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are left as replacement chars; the
                            // telemetry writers never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this is
                    // always aligned).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "bad utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number at byte {start}"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null"), Ok(Json::Null));
        assert_eq!(Json::parse(" true "), Ok(Json::Bool(true)));
        assert_eq!(Json::parse("false"), Ok(Json::Bool(false)));
        assert_eq!(Json::parse("42"), Ok(Json::Int(42)));
        assert_eq!(Json::parse("-7"), Ok(Json::Int(-7)));
        assert_eq!(Json::parse("1.5"), Ok(Json::Float(1.5)));
        assert_eq!(Json::parse("1e3"), Ok(Json::Float(1000.0)));
        assert_eq!(Json::parse("\"hi\""), Ok(Json::Str("hi".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":"x"}],"c":null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn integers_keep_full_u64_range() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.as_i64(), None, "out of i64 range");
        assert_eq!(Json::parse("-9223372036854775808").unwrap().as_i64(), Some(i64::MIN));
    }

    #[test]
    fn escapes_round_trip() {
        let original = "line\nquote\"back\\slash\ttab\u{1}done";
        let rendered = escape(original);
        match Json::parse(&rendered).unwrap() {
            Json::Str(s) => assert_eq!(s, original),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse(r#""Aé""#).unwrap(),
            Json::Str("Aé".into())
        );
        assert_eq!(Json::parse("\"héllo→\"").unwrap(), Json::Str("héllo→".into()));
    }

    #[test]
    fn render_round_trips() {
        let text = r#"{"kind":"transfer","entity":3,"from":[1,2],"to":[1,3],"ok":true,"x":1.5}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.render()), Ok(v));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "tru", "{\"a\"1}", "\"unterminated", "1 2", "{\"a\":}", "[,]", "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(Json::parse("[]"), Ok(Json::Arr(vec![])));
        assert_eq!(Json::parse("{}"), Ok(Json::Obj(BTreeMap::new())));
        assert_eq!(Json::parse("[ ]").unwrap().render(), "[]");
    }
}
