//! Human-readable renderings of telemetry data for the `cellflow metrics`
//! and `cellflow inspect` subcommands: per-phase latency tables from a
//! registry snapshot, and a round timeline from a recorded JSONL stream.

use std::fmt::Write as _;

use crate::event::{validate_stream, Event};
use crate::registry::MetricSnapshot;

fn bucket_quantile(buckets: &[(u64, u64)], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for &(upper, count) in buckets {
        seen += count;
        if seen >= rank {
            return upper;
        }
    }
    buckets.last().map(|&(upper, _)| upper).unwrap_or(0)
}

/// Renders every histogram in `snapshot` as a fixed-width latency table
/// (count, mean, p50/p90/p99 bucket upper bounds, max bucket), and every
/// counter/gauge as a name/value list below it. Deterministic: rows follow
/// snapshot (name) order.
pub fn render_tables(snapshot: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let histograms: Vec<_> = snapshot
        .iter()
        .filter_map(|m| match m {
            MetricSnapshot::Histogram {
                name,
                count,
                sum,
                buckets,
            } => Some((name, *count, *sum, buckets)),
            _ => None,
        })
        .collect();
    if !histograms.is_empty() {
        let width = histograms.iter().map(|(n, ..)| n.len()).max().unwrap().max(9);
        let _ = writeln!(
            out,
            "{:<width$}  {:>10}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}",
            "histogram", "count", "mean", "p50", "p90", "p99", "max"
        );
        for (name, count, sum, buckets) in &histograms {
            let mean = if *count == 0 { 0 } else { sum / count };
            let _ = writeln!(
                out,
                "{name:<width$}  {count:>10}  {mean:>12}  {p50:>12}  {p90:>12}  {p99:>12}  {max:>12}",
                p50 = bucket_quantile(buckets, *count, 0.50),
                p90 = bucket_quantile(buckets, *count, 0.90),
                p99 = bucket_quantile(buckets, *count, 0.99),
                max = buckets.last().map(|&(upper, _)| upper).unwrap_or(0),
            );
        }
    }
    let scalars: Vec<_> = snapshot
        .iter()
        .filter_map(|m| match m {
            MetricSnapshot::Counter { name, value } => Some((name, value.to_string())),
            MetricSnapshot::Gauge { name, value } => Some((name, value.to_string())),
            MetricSnapshot::Histogram { .. } => None,
        })
        .collect();
    if !scalars.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let width = scalars.iter().map(|(n, _)| n.len()).max().unwrap().max(7);
        let _ = writeln!(out, "{:<width$}  {:>12}", "metric", "value");
        for (name, value) in scalars {
            let _ = writeln!(out, "{name:<width$}  {value:>12}");
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

#[derive(Default)]
struct RoundRow {
    inserted: u64,
    transferred: u64,
    consumed: u64,
    blocked: u64,
    failed: u64,
    recovered: u64,
    corrupted: u64,
    notes: Vec<String>,
}

/// Renders a recorded JSONL stream as a per-round timeline. Each round with
/// activity gets one row of event counts; violations, timeouts, and
/// supervisor actions are called out by name in the final column. At most
/// `max_rows` round rows are shown (0 = unlimited); elided rows are
/// summarized so nothing disappears silently.
///
/// # Errors
///
/// Returns `(line number, problem)` if the stream fails schema validation.
pub fn render_timeline(text: &str, max_rows: usize) -> Result<String, (usize, String)> {
    let stats = validate_stream(text)?;
    let mut rounds: Vec<(u64, RoundRow)> = Vec::new();
    let mut header: Option<(u64, String, u64)> = None;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        // validate_stream already proved every line parses.
        let (round, event) = Event::parse_line(line).map_err(|e| (0, e))?;
        if let Event::FlightHeader { trigger, rounds } = &event {
            header = Some((round, trigger.clone(), *rounds));
            continue;
        }
        let row = match rounds.last_mut() {
            Some((r, row)) if *r == round => row,
            _ => {
                rounds.push((round, RoundRow::default()));
                &mut rounds.last_mut().unwrap().1
            }
        };
        match event {
            Event::Insert { .. } => row.inserted += 1,
            Event::Transfer { .. } => row.transferred += 1,
            Event::Consume { .. } => row.consumed += 1,
            Event::Block { .. } => row.blocked += 1,
            Event::Fail { .. } => row.failed += 1,
            Event::Recover { .. } => row.recovered += 1,
            Event::Corrupt { .. } => row.corrupted += 1,
            Event::Violation { monitor, .. } => row.notes.push(format!("VIOLATION[{monitor}]")),
            Event::Timeout { .. } => row.notes.push("TIMEOUT".to_string()),
            Event::Supervisor { action, .. } => row.notes.push(format!("supervisor:{action}")),
            Event::RoundSummary {
                consumed,
                inserted,
                blocked,
                ..
            } => {
                // Rollup lines substitute for per-event records when the
                // producer didn't stream individual events.
                row.consumed = row.consumed.max(consumed);
                row.inserted = row.inserted.max(inserted);
                row.blocked = row.blocked.max(blocked);
            }
            Event::Grant { .. } | Event::FlightHeader { .. } | Event::Span { .. } => {}
        }
    }

    let mut out = String::new();
    if let Some((round, trigger, kept)) = header {
        let _ = writeln!(
            out,
            "flight dump: trigger `{trigger}` at round {round}, {kept} round(s) of history"
        );
    }
    let _ = writeln!(
        out,
        "rounds {}..={}  events {}  violations {}  timeouts {}",
        stats.first_round, stats.last_round, stats.events, stats.violations, stats.timeouts
    );
    let _ = writeln!(
        out,
        "{:>8}  {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4}  notes",
        "round", "ins", "mov", "con", "blk", "fail", "rec", "cor"
    );
    let total = rounds.len();
    let shown = if max_rows == 0 { total } else { max_rows.min(total) };
    let skip = total - shown;
    if skip > 0 {
        let _ = writeln!(out, "{:>8}  … {skip} earlier round(s) elided …", "");
    }
    for (round, row) in rounds.iter().skip(skip) {
        let _ = writeln!(
            out,
            "{round:>8}  {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4}  {}",
            row.inserted,
            row.transferred,
            row.consumed,
            row.blocked,
            row.failed,
            row.recovered,
            row.corrupted,
            row.notes.join(" ")
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use cellflow_grid::CellId;

    #[test]
    fn tables_render_histograms_and_scalars() {
        let reg = Registry::new();
        reg.counter("rounds_total").add(5);
        reg.gauge("depth").set(-1);
        let h = reg.histogram("round_ns");
        for v in [10, 20, 30, 1000] {
            h.observe(v);
        }
        let text = render_tables(&reg.snapshot());
        assert!(text.contains("histogram"));
        assert!(text.contains("round_ns"));
        assert!(text.contains("rounds_total"));
        assert!(text.contains("depth"));
        let mean_row: &str = text.lines().find(|l| l.starts_with("round_ns")).unwrap();
        assert!(mean_row.contains("265"), "mean of 1060/4: {mean_row}");
    }

    #[test]
    fn empty_snapshot_says_so() {
        assert!(render_tables(&[]).contains("no metrics"));
    }

    #[test]
    fn timeline_aggregates_rounds_and_flags_triggers() {
        let mut text = String::new();
        text.push_str(
            &Event::Insert {
                cell: CellId::new(0, 0),
                entity: 1,
            }
            .to_line(3),
        );
        text.push('\n');
        text.push_str(&Event::Consume { entity: 1 }.to_line(4));
        text.push('\n');
        text.push_str(
            &Event::Violation {
                monitor: "safety".into(),
                detail: "two entities".into(),
            }
            .to_line(4),
        );
        let rendered = render_timeline(&text, 0).unwrap();
        assert!(rendered.contains("rounds 3..=4"));
        assert!(rendered.contains("VIOLATION[safety]"));
    }

    #[test]
    fn timeline_elides_beyond_max_rows() {
        let mut text = String::new();
        for round in 0..10 {
            text.push_str(&Event::Consume { entity: round }.to_line(round));
            text.push('\n');
        }
        let rendered = render_timeline(&text, 3).unwrap();
        assert!(rendered.contains("7 earlier round(s) elided"));
        assert!(rendered.contains("\n       9  "));
        assert!(!rendered.contains("\n       2  "));
    }

    #[test]
    fn timeline_reports_flight_header() {
        let mut fr = crate::recorder::FlightRecorder::new(4);
        fr.push(7, Event::Fail {
            cell: CellId::new(1, 1),
        });
        fr.push(
            8,
            Event::Violation {
                monitor: "conservation".into(),
                detail: "x".into(),
            },
        );
        let dump = fr.render_dump("violation", 8);
        let rendered = render_timeline(&dump, 0).unwrap();
        assert!(rendered.contains("flight dump: trigger `violation` at round 8"));
        assert!(rendered.contains("2 round(s) of history"));
    }

    #[test]
    fn timeline_rejects_invalid_streams() {
        assert!(render_timeline("garbage\n", 0).is_err());
    }
}
