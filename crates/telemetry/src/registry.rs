//! The sharded, lock-cheap metrics registry.
//!
//! Three metric kinds cover everything the workspace measures:
//!
//! * [`Counter`] — a monotonic event count, **sharded** across
//!   [`SHARDS`] relaxed atomics so that the net runtime's `N²` cell threads
//!   never contend on one cache line;
//! * [`Gauge`] — a signed instantaneous level (queue depth, population);
//! * [`Histogram`] — a fixed power-of-two-bucket latency distribution
//!   (ns per phase, barrier wait, round time) with an atomic count per
//!   bucket. Observing never allocates, so instrumented hot loops keep the
//!   zero-clone engine's steady-state no-allocation guarantee.
//!
//! Every handle is a cheap `Arc` clone of registry-owned storage, and every
//! handle has a **no-op form**: a handle minted by [`Registry::disabled`]
//! carries no storage at all, so the disabled fast path is a single
//! `Option` check that the optimizer folds away — the perf envelope of the
//! uninstrumented code is preserved (asserted by `BENCH_PR5.json` and the
//! bench tests).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of independent counter shards. Enough that a grid of cell threads
/// rarely collides; small enough that summing is trivial.
pub const SHARDS: usize = 16;

/// Number of histogram buckets: bucket `k` holds observations in
/// `[2^k, 2^(k+1))` (bucket 0 also holds 0), so 40 buckets cover 1 ns up to
/// ~18 minutes — every latency this workspace can produce.
pub const BUCKETS: usize = 40;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a fixed shard, assigned round-robin at first use.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Relaxed) % SHARDS;
}

fn my_shard() -> usize {
    MY_SHARD.with(|s| *s)
}

#[derive(Default)]
struct CounterInner {
    shards: [AtomicU64; SHARDS],
}

/// A monotonic counter. Cloning shares the underlying storage; a default or
/// [`Counter::noop`] handle silently discards increments.
#[derive(Clone, Default)]
pub struct Counter {
    inner: Option<Arc<CounterInner>>,
}

impl Counter {
    /// A handle that records nothing (the disabled sink).
    pub fn noop() -> Counter {
        Counter::default()
    }

    /// `true` if increments actually land somewhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(inner) = &self.inner {
            inner.shards[my_shard()].fetch_add(n, Relaxed);
        }
    }

    /// The current total across all shards (0 for a no-op handle).
    pub fn value(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.shards.iter().map(|s| s.load(Relaxed)).sum(),
            None => 0,
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

#[derive(Default)]
struct GaugeInner {
    value: AtomicI64,
}

/// A signed instantaneous level.
#[derive(Clone, Default)]
pub struct Gauge {
    inner: Option<Arc<GaugeInner>>,
}

impl Gauge {
    /// A handle that records nothing.
    pub fn noop() -> Gauge {
        Gauge::default()
    }

    /// `true` if updates actually land somewhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(inner) = &self.inner {
            inner.value.store(v, Relaxed);
        }
    }

    /// Adjusts the level by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(inner) = &self.inner {
            inner.value.fetch_add(delta, Relaxed);
        }
    }

    /// Raises the level to `v` if it is higher than the current value
    /// (a cheap racy high-water mark — exact under one writer, and never
    /// loses more than a concurrent update's worth of precision otherwise).
    #[inline]
    pub fn record_max(&self, v: i64) {
        if let Some(inner) = &self.inner {
            let mut cur = inner.value.load(Relaxed);
            while v > cur {
                match inner.value.compare_exchange_weak(cur, v, Relaxed, Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// The current level (0 for a no-op handle).
    pub fn value(&self) -> i64 {
        match &self.inner {
            Some(inner) => inner.value.load(Relaxed),
            None => 0,
        }
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.value())
    }
}

struct HistogramInner {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> HistogramInner {
        HistogramInner {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index of an observation: `floor(log2(v))`, clamped.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((63 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The inclusive upper edge of bucket `k` (`2^(k+1) − 1`).
pub fn bucket_upper(k: usize) -> u64 {
    if k + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (k + 1)) - 1
    }
}

/// A fixed-bucket distribution of `u64` observations (nanoseconds, queue
/// sizes, …). Observing is two relaxed atomic adds — no locks, no
/// allocation.
#[derive(Clone, Default)]
pub struct Histogram {
    inner: Option<Arc<HistogramInner>>,
}

impl Histogram {
    /// A handle that records nothing.
    pub fn noop() -> Histogram {
        Histogram::default()
    }

    /// `true` if observations actually land somewhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(inner) = &self.inner {
            inner.counts[bucket_of(v)].fetch_add(1, Relaxed);
            inner.sum.fetch_add(v, Relaxed);
        }
    }

    /// Starts a span whose elapsed nanoseconds are recorded when the guard
    /// drops (or on [`Span::stop`]).
    #[inline]
    pub fn start(&self) -> Span {
        Span {
            started: self.is_enabled().then(Instant::now),
            histogram: self.clone(),
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.counts.iter().map(|c| c.load(Relaxed)).sum(),
            None => 0,
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.sum.load(Relaxed),
            None => 0,
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// The upper edge of the bucket containing quantile `q` ∈ [0, 1] — an
    /// upper bound on the true quantile, within a factor of 2.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(k);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Per-bucket observation counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        match &self.inner {
            Some(inner) => std::array::from_fn(|k| inner.counts[k].load(Relaxed)),
            None => [0; BUCKETS],
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(count={}, p50={}, p99={})",
            self.count(),
            self.quantile(0.5),
            self.quantile(0.99)
        )
    }
}

/// A timing span: records its elapsed nanoseconds into the histogram it was
/// started from when dropped. No-op (and free of `Instant` calls) when the
/// histogram is disabled.
#[must_use = "a span records on drop; binding it to _ measures nothing"]
pub struct Span {
    started: Option<Instant>,
    histogram: Histogram,
}

impl Span {
    /// Ends the span now and returns the recorded nanoseconds (`None` if
    /// the histogram is disabled).
    pub fn stop(mut self) -> Option<u64> {
        let started = self.started.take()?;
        let ns = started.elapsed().as_nanos() as u64;
        self.histogram.observe(ns);
        Some(ns)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(started) = self.started.take() {
            self.histogram.observe(started.elapsed().as_nanos() as u64);
        }
    }
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// One metric's point-in-time reading, as taken by [`Registry::snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricSnapshot {
    /// A counter's total.
    Counter {
        /// Metric name.
        name: String,
        /// Current total.
        value: u64,
    },
    /// A gauge's level.
    Gauge {
        /// Metric name.
        name: String,
        /// Current level.
        value: i64,
    },
    /// A histogram's distribution.
    Histogram {
        /// Metric name.
        name: String,
        /// Total observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// `(inclusive upper edge, observations)` for every non-empty
        /// bucket, ascending.
        buckets: Vec<(u64, u64)>,
    },
}

impl MetricSnapshot {
    /// The metric's name.
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter { name, .. }
            | MetricSnapshot::Gauge { name, .. }
            | MetricSnapshot::Histogram { name, .. } => name,
        }
    }
}

/// A named collection of metrics shared by everything one run instruments.
///
/// Cloning shares the registry. Handles minted by a disabled registry are
/// all no-ops, so instrumented code needs no `if telemetry` branches of its
/// own — it asks for its metrics unconditionally and the disabled path
/// costs one pointer check per operation.
#[derive(Clone)]
pub struct Registry {
    inner: Option<Arc<Mutex<BTreeMap<String, Slot>>>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(Mutex::new(BTreeMap::new()))),
        }
    }

    /// The disabled registry: every handle it mints is a no-op.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// `true` if this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn slot(&self, name: &str, make: impl FnOnce() -> Slot) -> Option<Slot> {
        let inner = self.inner.as_ref()?;
        let mut map = inner.lock().unwrap_or_else(|e| e.into_inner());
        let slot = map.entry(name.to_string()).or_insert_with(make);
        Some(match slot {
            Slot::Counter(c) => Slot::Counter(c.clone()),
            Slot::Gauge(g) => Slot::Gauge(g.clone()),
            Slot::Histogram(h) => Slot::Histogram(h.clone()),
        })
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.slot(name, || {
            Slot::Counter(Counter {
                inner: Some(Arc::new(CounterInner::default())),
            })
        }) {
            None => Counter::noop(),
            Some(Slot::Counter(c)) => c,
            Some(other) => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.slot(name, || {
            Slot::Gauge(Gauge {
                inner: Some(Arc::new(GaugeInner::default())),
            })
        }) {
            None => Gauge::noop(),
            Some(Slot::Gauge(g)) => g,
            Some(other) => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.slot(name, || {
            Slot::Histogram(Histogram {
                inner: Some(Arc::new(HistogramInner::default())),
            })
        }) {
            None => Histogram::noop(),
            Some(Slot::Histogram(h)) => h,
            Some(other) => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// A point-in-time reading of every registered metric, sorted by name
    /// (deterministic rendering order).
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let map = inner.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(name, slot)| match slot {
                Slot::Counter(c) => MetricSnapshot::Counter {
                    name: name.clone(),
                    value: c.value(),
                },
                Slot::Gauge(g) => MetricSnapshot::Gauge {
                    name: name.clone(),
                    value: g.value(),
                },
                Slot::Histogram(h) => MetricSnapshot::Histogram {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h
                        .bucket_counts()
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(k, &c)| (bucket_upper(k), c))
                        .collect(),
                },
            })
            .collect()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Registry(disabled)"),
            Some(inner) => {
                let map = inner.lock().unwrap_or_else(|e| e.into_inner());
                write!(f, "Registry({} metrics)", map.len())
            }
        }
    }
}

/// The engine's per-phase span set (Route / Signal / Move plus the whole
/// round), registered under the `cellflow_engine_*` names. Defined here so
/// every layer that drives an engine shares one metric vocabulary.
#[derive(Clone, Debug)]
pub struct PhaseTimers {
    /// `Route` phase nanoseconds.
    pub route: Histogram,
    /// `Signal` phase nanoseconds.
    pub signal: Histogram,
    /// `Move` phase (including source insertion) nanoseconds.
    pub mv: Histogram,
    /// Whole-round nanoseconds.
    pub round: Histogram,
}

impl PhaseTimers {
    /// Registers the standard engine phase histograms on `registry`.
    pub fn register(registry: &Registry) -> PhaseTimers {
        PhaseTimers {
            route: registry.histogram("cellflow_engine_route_ns"),
            signal: registry.histogram("cellflow_engine_signal_ns"),
            mv: registry.histogram("cellflow_engine_move_ns"),
            round: registry.histogram("cellflow_engine_round_ns"),
        }
    }
}

/// The sparse scheduler's metric set: how much of the grid each round
/// actually touched, and how long each shard worker spent per phase.
/// Registered under the `cellflow_engine_*` names beside [`PhaseTimers`] so
/// the occupancy of the active set lands in the same registry as the phase
/// timings it explains.
#[derive(Clone, Debug)]
pub struct SchedulerMetrics {
    /// Distinct cells any phase ran on in the most recent round
    /// (`cellflow_engine_active_cells`). A dense round sets this to the full
    /// cell count; a quiescent sparse round to near zero.
    pub active_cells: Gauge,
    /// Running total of cells skipped by the active-set scheduler
    /// (`cellflow_engine_skipped_cells_total`).
    pub skipped_cells: Counter,
    /// Per-shard per-phase worker nanoseconds
    /// (`cellflow_engine_shard_phase_ns`): one observation per worker per
    /// sharded phase, so the histogram's spread exposes shard imbalance.
    pub shard_phase: Histogram,
}

impl SchedulerMetrics {
    /// Registers the scheduler gauges/counters on `registry`.
    pub fn register(registry: &Registry) -> SchedulerMetrics {
        SchedulerMetrics {
            active_cells: registry.gauge("cellflow_engine_active_cells"),
            skipped_cells: registry.counter("cellflow_engine_skipped_cells_total"),
            shard_phase: registry.histogram("cellflow_engine_shard_phase_ns"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shard_and_sum() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        // A clone shares storage; the registry hands back the same counter.
        let c2 = reg.counter("c");
        c2.inc();
        assert_eq!(c.value(), 6);
        assert!(c.is_enabled());
    }

    #[test]
    fn counters_sum_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("t");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8_000);
    }

    #[test]
    fn gauges_set_add_and_record_max() {
        let g = Registry::new().gauge("g");
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
        g.record_max(5);
        assert_eq!(g.value(), 7, "record_max never lowers");
        g.record_max(42);
        assert_eq!(g.value(), 42);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Registry::new().histogram("h");
        for v in [0, 1, 2, 3, 100, 1000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1_001_106);
        assert_eq!(h.mean(), 1_001_106 / 7);
        // p50 of 7 values = 4th smallest (3) → bucket [2,4) → upper edge 3.
        assert_eq!(h.quantile(0.5), 3);
        assert!(h.quantile(1.0) >= 1_000_000);
        assert_eq!(h.quantile(0.0), 1, "rank clamps to the first observation");
        let counts = h.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), 7);
        assert_eq!(counts[0], 2); // 0 and 1
    }

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(9), 1023);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn spans_record_elapsed_time() {
        let h = Registry::new().histogram("span");
        {
            let _span = h.start();
        }
        let ns = h.start().stop();
        assert_eq!(h.count(), 2);
        assert!(ns.is_some());
    }

    #[test]
    fn disabled_registry_is_a_total_noop() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        c.inc();
        g.set(9);
        h.observe(100);
        assert_eq!((c.value(), g.value(), h.count()), (0, 0, 0));
        assert!(!h.is_enabled());
        assert_eq!(h.start().stop(), None, "disabled spans never read the clock");
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("z_events").add(3);
        reg.gauge("m_depth").set(-2);
        reg.histogram("a_ns").observe(7);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|m| m.name()).collect();
        assert_eq!(names, ["a_ns", "m_depth", "z_events"]);
        assert_eq!(
            snap[2],
            MetricSnapshot::Counter {
                name: "z_events".into(),
                value: 3
            }
        );
        match &snap[0] {
            MetricSnapshot::Histogram {
                count,
                sum,
                buckets,
                ..
            } => {
                assert_eq!((*count, *sum), (1, 7));
                assert_eq!(buckets, &[(7, 1)]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn phase_timers_register_standard_names() {
        let reg = Registry::new();
        let timers = PhaseTimers::register(&reg);
        timers.route.observe(1);
        timers.round.observe(4);
        let names: Vec<String> = reg.snapshot().iter().map(|m| m.name().to_string()).collect();
        assert!(names.contains(&"cellflow_engine_route_ns".to_string()));
        assert!(names.contains(&"cellflow_engine_round_ns".to_string()));
        assert_eq!(names.len(), 4);
    }
}
