//! Causal tracing: deterministic span trees over protocol rounds.
//!
//! The metrics registry (PR 5) answers *how much* — counters and latency
//! histograms aggregated over a whole run. This module answers *why this
//! round, which cell, along which chain*: every round becomes a small tree
//! of [`Event::Span`] records (round → phase → shard/cell leaves in the
//! engine; round → barrier/fault/cell leaves in the net runtime), stitched
//! together by seed-derived ids so the same execution always produces the
//! same tree.
//!
//! Three design rules keep the trace compatible with the workspace's
//! byte-identical-reports contract:
//!
//! 1. **Ids are pure functions of `(seed, round, kind, ordinal)`** via the
//!    frozen `dts::hash` primitives (re-exported as `core::hash`). A cell's
//!    per-round span id ([`Tracer::cell_round_id`]) is computed identically
//!    by the emitting worker thread (stamped into `Envelope.cause`), by the
//!    collector (the cell's span in the stream), and by the offline
//!    analyzer — so a delivered, dropped, or delayed message links back to
//!    its emitting cell-round without any shared state.
//! 2. **Logical clocks, not wall clocks, order the tree.** `open`/`close`
//!    ticks come from a per-round sequence counter; `work` counts
//!    deterministic units (cells touched, barrier waits). Measured wall
//!    nanoseconds ride along in `ns` but are never used by the default
//!    [`Trace::render`] output, so double runs of `cellflow trace` diff
//!    byte-identically.
//! 3. **Spans are only emitted when tracing is on**, so default-off streams
//!    and reports stay byte-identical to previous releases.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cellflow_dts::hash::{splitmix64, walk_seed};
use cellflow_grid::CellId;

use crate::event::Event;
use crate::registry::Registry;
use crate::report;

/// Domain-separation salt folded into every tracer seed (ASCII `trace_v1`).
const TRACE_SALT: u64 = 0x7472_6163_655f_7631;

/// Width of the flamegraph bar column, in characters.
const BAR_WIDTH: usize = 32;

/// The vocabulary of span labels, each with a frozen id-derivation code.
///
/// Codes are part of the trace id scheme: changing one changes every id in
/// every trace, so — like the `dts::hash` constants — they must never move.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// One protocol round (root of the per-round tree).
    Round,
    /// The Route phase sweep.
    Route,
    /// The Signal phase sweep.
    Signal,
    /// The Move phase sweep.
    Move,
    /// One row-band shard of a phase sweep.
    Shard,
    /// One cell's activity within a round (the causal linking span).
    Cell,
    /// The net runtime's barrier waits for a round.
    Barrier,
    /// A round deadline expiry (root span; the detector is attributed).
    Timeout,
    /// A cell that never arrived at a timed-out barrier (footnote-1
    /// silence made indistinguishable from a crash).
    Silent,
    /// A scripted or emergent crash taking effect.
    Fault,
    /// A cell recovering.
    Recover,
    /// A state-corruption injection.
    Corrupt,
}

impl SpanKind {
    /// The frozen id-derivation code.
    pub fn code(self) -> u64 {
        match self {
            SpanKind::Round => 1,
            SpanKind::Route => 2,
            SpanKind::Signal => 3,
            SpanKind::Move => 4,
            SpanKind::Shard => 5,
            SpanKind::Cell => 6,
            SpanKind::Barrier => 7,
            SpanKind::Timeout => 8,
            SpanKind::Silent => 9,
            SpanKind::Fault => 10,
            SpanKind::Recover => 11,
            SpanKind::Corrupt => 12,
        }
    }

    /// The label serialized into [`Event::Span`].
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Round => "round",
            SpanKind::Route => "route",
            SpanKind::Signal => "signal",
            SpanKind::Move => "move",
            SpanKind::Shard => "shard",
            SpanKind::Cell => "cell",
            SpanKind::Barrier => "barrier",
            SpanKind::Timeout => "timeout",
            SpanKind::Silent => "silent",
            SpanKind::Fault => "fault",
            SpanKind::Recover => "recover",
            SpanKind::Corrupt => "corrupt",
        }
    }
}

/// The seeded id mint. `Copy` and stateless so every thread (engine shards,
/// net worker threads, the collector, the offline analyzer) can derive the
/// same ids without coordination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tracer {
    seed: u64,
}

impl Tracer {
    /// Builds a tracer for a campaign seed. The salt domain-separates trace
    /// ids from every other consumer of the shared hash (chaos streams,
    /// supervisor jitter, walk seeds).
    pub fn new(seed: u64) -> Self {
        Tracer {
            seed: splitmix64(seed ^ TRACE_SALT),
        }
    }

    /// The id of the span `(round, kind, ordinal)` — deterministic, nonzero
    /// (0 is the "no parent" sentinel in the stream).
    pub fn span_id(&self, round: u64, kind: SpanKind, ordinal: u64) -> u64 {
        let per_round = splitmix64(self.seed ^ round);
        let per_kind = walk_seed(per_round, kind.code() as usize);
        let id = splitmix64(per_kind ^ ordinal);
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// The causal linking id for `cell`'s activity in `round`: stamped into
    /// outgoing message envelopes by the sender, used as the cell's span id
    /// by the collector, and recomputed by analyzers. One id, three sites,
    /// zero shared state.
    pub fn cell_round_id(&self, round: u64, cell: CellId) -> u64 {
        self.span_id(round, SpanKind::Cell, cell_ordinal(cell))
    }
}

/// The per-kind ordinal for a cell: its packed grid coordinate.
pub fn cell_ordinal(cell: CellId) -> u64 {
    ((cell.i() as u64) << 16) | cell.j() as u64
}

/// An in-progress span inside [`SpanBuilder`].
#[derive(Clone, Debug)]
struct SpanRec {
    id: u64,
    parent: u64,
    kind: SpanKind,
    cell: Option<CellId>,
    work: u64,
    open: u64,
    close: u64,
    ns: u64,
}

/// Builds one round's span tree, assigning logical open/close ticks from a
/// deterministic per-round sequence. Emission order is span-open order, so
/// the serialized stream is reproducible.
#[derive(Clone, Debug)]
pub struct SpanBuilder {
    round: u64,
    seq: u64,
    stack: Vec<usize>,
    spans: Vec<SpanRec>,
}

impl SpanBuilder {
    /// Starts an empty tree for `round` (the stream's 1-based round tag).
    pub fn new(round: u64) -> Self {
        SpanBuilder {
            round,
            seq: 0,
            stack: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// The round this builder emits at.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Opens a span as a child of the innermost open span (or as a root).
    pub fn open(&mut self, id: u64, kind: SpanKind) {
        let parent = self.stack.last().map_or(0, |&k| self.spans[k].id);
        self.seq += 1;
        self.spans.push(SpanRec {
            id,
            parent,
            kind,
            cell: None,
            work: 0,
            open: self.seq,
            close: 0,
            ns: 0,
        });
        self.stack.push(self.spans.len() - 1);
    }

    /// Opens and immediately closes a child span (the common case for
    /// shard/cell/fault leaves).
    pub fn leaf(&mut self, id: u64, kind: SpanKind, cell: Option<CellId>, work: u64, ns: u64) {
        self.open(id, kind);
        if let Some(cell) = cell {
            self.set_cell(cell);
        }
        self.add_work(work);
        self.add_ns(ns);
        self.close();
    }

    /// Attributes the innermost open span to `cell`.
    pub fn set_cell(&mut self, cell: CellId) {
        if let Some(&k) = self.stack.last() {
            self.spans[k].cell = Some(cell);
        }
    }

    /// Adds deterministic logical work units to the innermost open span.
    pub fn add_work(&mut self, work: u64) {
        if let Some(&k) = self.stack.last() {
            self.spans[k].work += work;
        }
    }

    /// Adds measured wall nanoseconds to the innermost open span.
    pub fn add_ns(&mut self, ns: u64) {
        if let Some(&k) = self.stack.last() {
            self.spans[k].ns += ns;
        }
    }

    /// Closes the innermost open span.
    pub fn close(&mut self) {
        if let Some(k) = self.stack.pop() {
            self.seq += 1;
            self.spans[k].close = self.seq;
        }
    }

    /// Closes anything still open and returns the tree as events in
    /// span-open order, ready for `EventLog::emit` at [`Self::round`].
    pub fn finish(mut self) -> Vec<Event> {
        while !self.stack.is_empty() {
            self.close();
        }
        self.spans
            .into_iter()
            .map(|s| Event::Span {
                id: s.id,
                parent: s.parent,
                label: s.kind.label().to_string(),
                cell: s.cell,
                work: s.work,
                open: s.open,
                close: s.close,
                ns: s.ns,
            })
            .collect()
    }
}

/// One span parsed back out of a JSONL stream, with its round tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// The stream's round tag.
    pub round: u64,
    /// Span id.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Span label.
    pub label: String,
    /// Attributed cell, if any.
    pub cell: Option<CellId>,
    /// Deterministic logical work units.
    pub work: u64,
    /// Logical open tick.
    pub open: u64,
    /// Logical close tick.
    pub close: u64,
    /// Measured wall nanoseconds (nondeterministic).
    pub ns: u64,
}

/// A parsed trace: every span in stream order, plus stream-level counts.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All spans in stream order.
    pub spans: Vec<TraceSpan>,
    /// Total events in the stream (spans included).
    pub events: usize,
}

/// One row of the per-round critical-path table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPath {
    /// The round.
    pub round: u64,
    /// Work summed along the heaviest root-to-leaf chain.
    pub work: u64,
    /// Labels along the chain, root first.
    pub chain: Vec<String>,
}

impl Trace {
    /// Parses a JSONL event stream, collecting its spans.
    ///
    /// # Errors
    ///
    /// Returns `(line number, problem)` for the first schema-invalid line
    /// (1-based), exactly like [`crate::validate_stream`].
    pub fn parse(text: &str) -> Result<Trace, (usize, String)> {
        let mut trace = Trace::default();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let (round, event) = Event::parse_line(line).map_err(|e| (idx + 1, e))?;
            trace.events += 1;
            if let Event::Span {
                id,
                parent,
                label,
                cell,
                work,
                open,
                close,
                ns,
            } = event
            {
                trace.spans.push(TraceSpan {
                    round,
                    id,
                    parent,
                    label,
                    cell,
                    work,
                    open,
                    close,
                    ns,
                });
            }
        }
        Ok(trace)
    }

    /// The distinct rounds that carry spans, ascending.
    pub fn rounds(&self) -> Vec<u64> {
        let mut rounds: Vec<u64> = self.spans.iter().map(|s| s.round).collect();
        rounds.sort_unstable();
        rounds.dedup();
        rounds
    }

    /// Checks the causal invariants the proptest suite pins: span ids are
    /// unique per round, every nonzero parent exists in the same round,
    /// every span closes after it opens, and every parent closes after its
    /// child opens (children nest inside parents on the logical clock).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_causality(&self) -> Result<(), String> {
        let mut by_round: BTreeMap<u64, BTreeMap<u64, &TraceSpan>> = BTreeMap::new();
        for span in &self.spans {
            if span.close <= span.open {
                return Err(format!(
                    "round {}: span {:#x} ({}) closes at {} before opening at {}",
                    span.round, span.id, span.label, span.close, span.open
                ));
            }
            if let Some(prev) = by_round
                .entry(span.round)
                .or_default()
                .insert(span.id, span)
            {
                return Err(format!(
                    "round {}: span id {:#x} duplicated ({} and {})",
                    span.round, span.id, prev.label, span.label
                ));
            }
        }
        for span in &self.spans {
            if span.parent == 0 {
                continue;
            }
            let Some(parent) = by_round[&span.round].get(&span.parent) else {
                return Err(format!(
                    "round {}: span {:#x} ({}) has missing parent {:#x}",
                    span.round, span.id, span.label, span.parent
                ));
            };
            if parent.close <= span.open {
                return Err(format!(
                    "round {}: parent {:#x} ({}) closes at {} before child {:#x} ({}) opens at {}",
                    span.round,
                    parent.id,
                    parent.label,
                    parent.close,
                    span.id,
                    span.label,
                    span.open
                ));
            }
        }
        Ok(())
    }

    /// Per-round critical paths: for every round, the root-to-leaf chain
    /// maximizing summed work, rounds sorted heaviest first (ties by round
    /// ascending).
    pub fn critical_paths(&self) -> Vec<CriticalPath> {
        let mut paths: Vec<CriticalPath> = self
            .rounds()
            .into_iter()
            .map(|round| {
                let spans: Vec<&TraceSpan> =
                    self.spans.iter().filter(|s| s.round == round).collect();
                let mut children: BTreeMap<u64, Vec<&TraceSpan>> = BTreeMap::new();
                let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
                for span in &spans {
                    if span.parent != 0 && ids.contains(&span.parent) {
                        children.entry(span.parent).or_default().push(span);
                    }
                }
                let (work, chain) = spans
                    .iter()
                    .filter(|s| s.parent == 0 || !ids.contains(&s.parent))
                    .map(|root| heaviest_chain(root, &children))
                    .max_by(|a, b| a.0.cmp(&b.0).then_with(|| b.1.cmp(&a.1)))
                    .unwrap_or((0, Vec::new()));
                CriticalPath { round, work, chain }
            })
            .collect();
        paths.sort_by(|a, b| b.work.cmp(&a.work).then_with(|| a.round.cmp(&b.round)));
        paths
    }

    /// Work attributed to each cell across the run, heaviest first (ties by
    /// cell id). Barrier and timeout spans are excluded: their `cell` is a
    /// measured attribution (last completer / first detector), not
    /// deterministic work.
    pub fn slowest_cells(&self) -> Vec<(CellId, u64, usize)> {
        let mut acc: BTreeMap<(u16, u16), (u64, usize)> = BTreeMap::new();
        for span in &self.spans {
            if span.label == "barrier" || span.label == "timeout" {
                continue;
            }
            if let Some(cell) = span.cell {
                let slot = acc.entry((cell.i(), cell.j())).or_default();
                slot.0 += span.work;
                slot.1 += 1;
            }
        }
        let mut rows: Vec<(CellId, u64, usize)> = acc
            .into_iter()
            .map(|((i, j), (work, n))| (CellId::new(i, j), work, n))
            .collect();
        rows.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| (a.0.i(), a.0.j()).cmp(&(b.0.i(), b.0.j())))
        });
        rows
    }

    /// Timed-out rounds and their silent (never-arrived) cells — the cells
    /// every other participant was still waiting on when the deadline
    /// expired, i.e. the last-arriving cells of the round. Deterministic:
    /// derived from the fault plan, not from thread scheduling.
    pub fn timed_out(&self) -> Vec<(u64, Vec<CellId>)> {
        let mut out: BTreeMap<u64, Vec<CellId>> = BTreeMap::new();
        for span in &self.spans {
            if span.label == "timeout" {
                out.entry(span.round).or_default();
            }
            if span.label == "silent" {
                if let Some(cell) = span.cell {
                    out.entry(span.round).or_default().push(cell);
                }
            }
        }
        for cells in out.values_mut() {
            cells.sort_by_key(|c| (c.i(), c.j()));
            cells.dedup();
        }
        out.into_iter().collect()
    }

    /// Renders the analysis report. The default output derives only from
    /// deterministic span fields (ids, work, logical clocks, silent
    /// culprits), so two traces of the same seeded run render identically;
    /// `wall` opts into the measured sections (per-label nanoseconds and
    /// the barrier's last-completer attribution).
    pub fn render(&self, top: usize, round_filter: Option<u64>, wall: bool) -> String {
        let mut out = String::new();
        let rounds = self.rounds();
        let _ = writeln!(
            out,
            "trace: {} spans across {} rounds ({} events)",
            self.spans.len(),
            rounds.len(),
            self.events
        );
        if self.spans.is_empty() {
            out.push_str("(no spans; run with tracing enabled)\n");
            return out;
        }

        let mut paths = self.critical_paths();
        if let Some(round) = round_filter {
            paths.retain(|p| p.round == round);
        }
        let shown = paths.len().min(top.max(1));
        let _ = writeln!(out, "\n== critical path (top {shown} rounds by work)");
        let _ = writeln!(out, "{:>8} {:>8}  chain", "round", "work");
        for path in paths.iter().take(shown) {
            let _ = writeln!(
                out,
                "{:>8} {:>8}  {}",
                path.round,
                path.work,
                path.chain.join(" > ")
            );
        }

        let cells = self.slowest_cells();
        let _ = writeln!(out, "\n== slowest cells (by attributed work)");
        if cells.is_empty() {
            out.push_str("(no cell-attributed spans)\n");
        } else {
            let _ = writeln!(out, "{:>10} {:>8} {:>6}", "cell", "work", "spans");
            for (cell, work, n) in cells.iter().take(top.max(1)) {
                let label = format!("({}, {})", cell.i(), cell.j());
                let _ = writeln!(out, "{label:>10} {work:>8} {n:>6}");
            }
        }

        // The span profile reuses the metrics latency-table renderer: work
        // per label observed into per-label histograms.
        let registry = Registry::new();
        for span in &self.spans {
            registry
                .histogram(&format!("trace_span_{}_work", span.label))
                .observe(span.work);
        }
        out.push_str("\n== span profile (work units via latency tables)\n");
        out.push_str(&report::render_tables(&registry.snapshot()));

        let flame_round = round_filter.or_else(|| paths.first().map(|p| p.round));
        if let Some(round) = flame_round {
            let _ = writeln!(out, "\n== flamegraph: round {round}");
            out.push_str(&self.render_flame(round));
        }

        out.push_str("\n== timed-out rounds\n");
        let timed_out = self.timed_out();
        if timed_out.is_empty() {
            out.push_str("none\n");
        } else {
            for (round, cells) in &timed_out {
                let names: Vec<String> = cells
                    .iter()
                    .map(|c| format!("({}, {})", c.i(), c.j()))
                    .collect();
                let _ = writeln!(
                    out,
                    "round {round}: last-arriving cells: {}",
                    if names.is_empty() {
                        "(none recorded)".to_string()
                    } else {
                        names.join(", ")
                    }
                );
            }
        }

        if wall {
            out.push_str(&self.render_wall());
        }
        out
    }

    /// The indented work flamegraph for one round.
    fn render_flame(&self, round: u64) -> String {
        let spans: Vec<&TraceSpan> = self.spans.iter().filter(|s| s.round == round).collect();
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        let max_work = spans.iter().map(|s| s.work).max().unwrap_or(0).max(1);
        let mut out = String::new();
        // Children in open order, which is also emission order.
        let mut children: BTreeMap<u64, Vec<&TraceSpan>> = BTreeMap::new();
        for span in &spans {
            if span.parent != 0 && ids.contains(&span.parent) {
                children.entry(span.parent).or_default().push(span);
            }
        }
        for root in spans
            .iter()
            .filter(|s| s.parent == 0 || !ids.contains(&s.parent))
        {
            flame_line(root, &children, 0, max_work, &mut out);
        }
        out
    }

    /// The measured-wall-clock sections (`--wall`): nondeterministic by
    /// design, kept out of the default output.
    fn render_wall(&self) -> String {
        let mut out = String::new();
        out.push_str("\n== wall clock (measured; nondeterministic)\n");
        let mut by_label: BTreeMap<&str, (u64, usize)> = BTreeMap::new();
        for span in &self.spans {
            let slot = by_label.entry(span.label.as_str()).or_default();
            slot.0 += span.ns;
            slot.1 += 1;
        }
        let _ = writeln!(out, "{:>10} {:>14} {:>8}", "label", "total_ns", "spans");
        for (label, (ns, n)) in &by_label {
            let _ = writeln!(out, "{label:>10} {ns:>14} {n:>8}");
        }
        let mut completers: Vec<(u64, CellId)> = self
            .spans
            .iter()
            .filter(|s| s.label == "barrier")
            .filter_map(|s| s.cell.map(|c| (s.round, c)))
            .collect();
        completers.sort_by_key(|&(r, _)| r);
        if !completers.is_empty() {
            out.push_str("\n== barrier last completers (measured)\n");
            for (round, cell) in completers {
                let _ = writeln!(out, "round {round}: ({}, {})", cell.i(), cell.j());
            }
        }
        out
    }
}

/// The heaviest root-to-leaf chain below `span`: summed work and labels.
fn heaviest_chain<'a>(
    span: &'a TraceSpan,
    children: &BTreeMap<u64, Vec<&'a TraceSpan>>,
) -> (u64, Vec<String>) {
    let mut best: Option<(u64, Vec<String>)> = None;
    if let Some(kids) = children.get(&span.id) {
        for kid in kids {
            let sub = heaviest_chain(kid, children);
            let better = match &best {
                None => true,
                // Ties break toward earlier open tick, then smaller id,
                // which is the order `kids` already holds (open order).
                Some((w, _)) => sub.0 > *w,
            };
            if better {
                best = Some(sub);
            }
        }
    }
    match best {
        Some((w, mut labels)) => {
            labels.insert(0, span.label.clone());
            (span.work + w, labels)
        }
        None => (span.work, vec![span.label.clone()]),
    }
}

/// One flamegraph line plus its subtree.
fn flame_line(
    span: &TraceSpan,
    children: &BTreeMap<u64, Vec<&TraceSpan>>,
    depth: usize,
    max_work: u64,
    out: &mut String,
) {
    let bar = (span.work as usize * BAR_WIDTH / max_work as usize).min(BAR_WIDTH);
    let label = match span.cell {
        Some(cell) => format!("{} ({}, {})", span.label, cell.i(), cell.j()),
        None => span.label.clone(),
    };
    let _ = writeln!(
        out,
        "{:indent$}{label:<18} {:<bar_w$} {}",
        "",
        "#".repeat(bar.max(if span.work > 0 { 1 } else { 0 })),
        span.work,
        indent = depth * 2,
        bar_w = BAR_WIDTH,
    );
    if let Some(kids) = children.get(&span.id) {
        for kid in kids {
            flame_line(kid, children, depth + 1, max_work, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_builder(tracer: &Tracer, round: u64) -> SpanBuilder {
        let mut b = SpanBuilder::new(round);
        b.open(tracer.span_id(round, SpanKind::Round, 0), SpanKind::Round);
        b.open(tracer.span_id(round, SpanKind::Route, 0), SpanKind::Route);
        b.add_work(5);
        b.leaf(
            tracer.span_id(round, SpanKind::Shard, 0),
            SpanKind::Shard,
            None,
            3,
            111,
        );
        b.close();
        b.leaf(
            tracer.cell_round_id(round, CellId::new(1, 2)),
            SpanKind::Cell,
            Some(CellId::new(1, 2)),
            2,
            0,
        );
        b.add_work(7);
        b
    }

    fn stream(seed: u64, rounds: u64) -> String {
        let tracer = Tracer::new(seed);
        let mut text = String::new();
        for round in 1..=rounds {
            for event in sample_builder(&tracer, round).finish() {
                text.push_str(&event.to_line(round));
                text.push('\n');
            }
        }
        text
    }

    #[test]
    fn ids_are_deterministic_and_nonzero() {
        let a = Tracer::new(42);
        let b = Tracer::new(42);
        let c = Tracer::new(43);
        let cell = CellId::new(3, 4);
        assert_eq!(a.cell_round_id(7, cell), b.cell_round_id(7, cell));
        assert_ne!(a.cell_round_id(7, cell), c.cell_round_id(7, cell));
        assert_ne!(a.cell_round_id(7, cell), a.cell_round_id(8, cell));
        assert_ne!(
            a.cell_round_id(7, cell),
            a.cell_round_id(7, CellId::new(4, 3))
        );
        for round in 0..50 {
            for kind in [SpanKind::Round, SpanKind::Cell, SpanKind::Barrier] {
                assert_ne!(a.span_id(round, kind, 0), 0);
            }
        }
    }

    #[test]
    fn builder_produces_causal_tree() {
        let text = stream(7, 3);
        let trace = Trace::parse(&text).unwrap();
        assert_eq!(trace.spans.len(), 12);
        trace.check_causality().unwrap();
        assert_eq!(trace.rounds(), vec![1, 2, 3]);
    }

    #[test]
    fn builder_auto_closes_open_spans() {
        let tracer = Tracer::new(1);
        let events = sample_builder(&tracer, 4).finish();
        for event in &events {
            if let Event::Span { open, close, .. } = event {
                assert!(close > open, "{event:?}");
            }
        }
        // Round root opened first, closed last.
        let (first_open, last_close) = match (&events[0], &events[0]) {
            (Event::Span { open, .. }, Event::Span { close, .. }) => (*open, *close),
            _ => unreachable!(),
        };
        assert_eq!(first_open, 1);
        for event in &events[1..] {
            if let Event::Span { close, .. } = event {
                assert!(last_close > *close);
            }
        }
    }

    #[test]
    fn critical_path_picks_heaviest_chain() {
        let trace = Trace::parse(&stream(7, 2)).unwrap();
        let paths = trace.critical_paths();
        assert_eq!(paths.len(), 2);
        // round(7) > route(5) > shard(3) = 15 beats round(7) > cell(2) = 9.
        assert_eq!(paths[0].work, 15);
        assert_eq!(paths[0].chain, vec!["round", "route", "shard"]);
    }

    #[test]
    fn slowest_cells_exclude_measured_attributions() {
        let tracer = Tracer::new(9);
        let mut b = sample_builder(&tracer, 1);
        b.leaf(
            tracer.span_id(1, SpanKind::Barrier, 0),
            SpanKind::Barrier,
            Some(CellId::new(9, 9)),
            8,
            999,
        );
        let mut text = String::new();
        for event in b.finish() {
            text.push_str(&event.to_line(1));
            text.push('\n');
        }
        let trace = Trace::parse(&text).unwrap();
        let cells = trace.slowest_cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].0, CellId::new(1, 2));
        assert_eq!(cells[0].1, 2);
    }

    #[test]
    fn timed_out_lists_silent_cells() {
        let tracer = Tracer::new(11);
        let round = 6;
        let mut b = SpanBuilder::new(round);
        b.open(
            tracer.span_id(round, SpanKind::Timeout, 0),
            SpanKind::Timeout,
        );
        b.set_cell(CellId::new(0, 0));
        for cell in [CellId::new(2, 1), CellId::new(1, 1)] {
            b.leaf(
                tracer.cell_round_id(round, cell),
                SpanKind::Silent,
                Some(cell),
                0,
                0,
            );
        }
        let mut text = String::new();
        for event in b.finish() {
            text.push_str(&event.to_line(round));
            text.push('\n');
        }
        let trace = Trace::parse(&text).unwrap();
        trace.check_causality().unwrap();
        let timed_out = trace.timed_out();
        assert_eq!(timed_out.len(), 1);
        assert_eq!(timed_out[0].0, round);
        assert_eq!(timed_out[0].1, vec![CellId::new(1, 1), CellId::new(2, 1)]);
        let rendered = trace.render(5, None, false);
        assert!(rendered.contains("== timed-out rounds"));
        assert!(rendered.contains("round 6: last-arriving cells: (1, 1), (2, 1)"));
    }

    #[test]
    fn render_is_deterministic_and_skips_wall_by_default() {
        let a = Trace::parse(&stream(5, 4)).unwrap().render(3, None, false);
        let b = Trace::parse(&stream(5, 4)).unwrap().render(3, None, false);
        assert_eq!(a, b);
        assert!(a.contains("== critical path"));
        assert!(a.contains("== slowest cells"));
        assert!(a.contains("== span profile"));
        assert!(a.contains("== flamegraph"));
        assert!(!a.contains("wall clock"));
        let wall = Trace::parse(&stream(5, 4)).unwrap().render(3, None, true);
        assert!(wall.contains("== wall clock"));
    }

    #[test]
    fn render_ignores_ns_differences() {
        // Two streams identical except for measured ns must render
        // identically by default — the CI double-run diff contract.
        let tracer = Tracer::new(3);
        let build = |ns: u64| {
            let mut b = SpanBuilder::new(1);
            b.open(tracer.span_id(1, SpanKind::Round, 0), SpanKind::Round);
            b.add_work(4);
            b.add_ns(ns);
            let mut text = String::new();
            for event in b.finish() {
                text.push_str(&event.to_line(1));
                text.push('\n');
            }
            text
        };
        let fast = Trace::parse(&build(10)).unwrap();
        let slow = Trace::parse(&build(987_654_321)).unwrap();
        assert_eq!(fast.render(5, None, false), slow.render(5, None, false));
        assert_ne!(fast.render(5, None, true), slow.render(5, None, true));
    }

    #[test]
    fn parse_reports_offending_line() {
        let err = Trace::parse("{\"v\":1,\"round\":1,\"kind\":\"consume\",\"entity\":1}\nnope\n")
            .unwrap_err();
        assert_eq!(err.0, 2);
    }

    #[test]
    fn causality_catches_broken_trees() {
        let orphan = Event::Span {
            id: 5,
            parent: 77,
            label: "cell".into(),
            cell: None,
            work: 0,
            open: 1,
            close: 2,
            ns: 0,
        }
        .to_line(1);
        let trace = Trace::parse(&orphan).unwrap();
        let err = trace.check_causality().unwrap_err();
        assert!(err.contains("missing parent"), "{err}");

        let dup = format!(
            "{}\n{}\n",
            Event::Span {
                id: 5,
                parent: 0,
                label: "round".into(),
                cell: None,
                work: 0,
                open: 1,
                close: 4,
                ns: 0,
            }
            .to_line(2),
            Event::Span {
                id: 5,
                parent: 0,
                label: "route".into(),
                cell: None,
                work: 0,
                open: 2,
                close: 3,
                ns: 0,
            }
            .to_line(2)
        );
        let err = Trace::parse(&dup).unwrap().check_causality().unwrap_err();
        assert!(err.contains("duplicated"), "{err}");
    }
}
