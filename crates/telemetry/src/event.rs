//! The schema-versioned telemetry event model.
//!
//! One [`Event`] vocabulary unifies everything the workspace's runtimes can
//! observe: the simulation trace (`insert`/`transfer`/`consume`/`grant`/
//! `block`), failure-model activity (`fail`/`recover`/`corrupt`), monitor
//! verdicts (`violation`), net-runtime faults (`timeout`), supervisor
//! decisions (`supervisor`), and per-round rollups (`round_summary`).
//!
//! Every serialized line is a single JSON object with a fixed key order:
//!
//! ```text
//! {"v":1,"round":12,"kind":"transfer","entity":3,"from":[1,2],"to":[1,3]}
//! ```
//!
//! `v` is [`SCHEMA_VERSION`]; readers reject lines from a different schema
//! generation instead of misinterpreting them. Cells serialize as `[i,j]`
//! pairs and entities as their raw `u64` id, so the stream is
//! runtime-agnostic (the shared-variable sim and the message-passing net
//! runtime produce identical records for identical behavior).

use std::fmt::Write as _;

use cellflow_grid::CellId;

use crate::json::{escape_into, Json};

/// The telemetry stream schema generation. Bump when a kind's field set
/// changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// One observable happening, without its round tag (the round travels next
/// to the event, in the line or the flight-recorder ring).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A source created an entity.
    Insert {
        /// Source cell.
        cell: CellId,
        /// The new entity's raw id.
        entity: u64,
    },
    /// An entity crossed between cells.
    Transfer {
        /// The entity's raw id.
        entity: u64,
        /// Cell it left.
        from: CellId,
        /// Cell it entered.
        to: CellId,
    },
    /// The target consumed an entity.
    Consume {
        /// The entity's raw id.
        entity: u64,
    },
    /// A cell granted its token holder permission to move.
    Grant {
        /// The granting cell.
        granter: CellId,
        /// The cell allowed to move toward it.
        grantee: CellId,
    },
    /// A cell withheld its signal.
    Block {
        /// The blocking cell.
        blocker: CellId,
        /// The token holder that stays put.
        blocked: CellId,
    },
    /// A cell crashed.
    Fail {
        /// The crashed cell.
        cell: CellId,
    },
    /// A cell recovered.
    Recover {
        /// The recovered cell.
        cell: CellId,
    },
    /// A cell's state was corrupted by a fault injector.
    Corrupt {
        /// The corrupted cell.
        cell: CellId,
    },
    /// An online monitor fired.
    Violation {
        /// The monitor's name.
        monitor: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A round deadline expired in the message-passing runtime.
    Timeout {
        /// What timed out (e.g. the barrier generation or stalled cell).
        detail: String,
    },
    /// The supervisor intervened (restart, plan rewrite).
    Supervisor {
        /// What the supervisor did.
        action: String,
        /// Human-readable detail.
        detail: String,
    },
    /// One round's protocol-event rollup.
    RoundSummary {
        /// Entities consumed this round.
        consumed: u64,
        /// Entities inserted this round.
        inserted: u64,
        /// Blocked signals this round.
        blocked: u64,
        /// Cells that moved an entity this round.
        moved: u64,
    },
    /// The first line of a flight-recorder dump: what triggered it and how
    /// many rounds of history follow.
    FlightHeader {
        /// The kind of the triggering event (`violation` or `timeout`).
        trigger: String,
        /// Rounds of history in the dump.
        rounds: u64,
    },
    /// One closed span of the causal trace tree (see [`crate::trace`]).
    ///
    /// Only emitted when tracing is enabled, so default-off streams stay
    /// byte-identical. `work` and the `open`/`close` logical clock are
    /// deterministic per seed; `ns` is measured wall time and the only
    /// nondeterministic field (alongside the barrier span's attributed
    /// `cell`).
    Span {
        /// Seed-derived span id (never 0; 0 is the "no parent" sentinel).
        id: u64,
        /// Parent span id, or 0 for a root span.
        parent: u64,
        /// Span label (`round`, `route`, `cell`, `barrier`, ...).
        label: String,
        /// The cell this span is attributed to, if any.
        cell: Option<CellId>,
        /// Deterministic logical work units (cells touched, waits, ...).
        work: u64,
        /// Logical open tick (per-round sequence, deterministic).
        open: u64,
        /// Logical close tick (always > `open`).
        close: u64,
        /// Measured wall nanoseconds (0 when unmeasured; nondeterministic).
        ns: u64,
    },
}

impl Event {
    /// The event's `kind` tag as serialized.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Insert { .. } => "insert",
            Event::Transfer { .. } => "transfer",
            Event::Consume { .. } => "consume",
            Event::Grant { .. } => "grant",
            Event::Block { .. } => "block",
            Event::Fail { .. } => "fail",
            Event::Recover { .. } => "recover",
            Event::Corrupt { .. } => "corrupt",
            Event::Violation { .. } => "violation",
            Event::Timeout { .. } => "timeout",
            Event::Supervisor { .. } => "supervisor",
            Event::RoundSummary { .. } => "round_summary",
            Event::FlightHeader { .. } => "flight_header",
            Event::Span { .. } => "span",
        }
    }

    /// `true` for the kinds that trip the flight recorder's auto-dump
    /// (monitor violations and round timeouts).
    pub fn is_trigger(&self) -> bool {
        matches!(self, Event::Violation { .. } | Event::Timeout { .. })
    }

    /// Serializes the event as one JSONL line (no trailing newline), tagged
    /// with `round`.
    pub fn to_line(&self, round: u64) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(out, "{{\"v\":{SCHEMA_VERSION},\"round\":{round},\"kind\":\"");
        out.push_str(self.kind());
        out.push('"');
        match self {
            Event::Insert { cell, entity } => {
                push_cell(&mut out, "cell", *cell);
                let _ = write!(out, ",\"entity\":{entity}");
            }
            Event::Transfer { entity, from, to } => {
                let _ = write!(out, ",\"entity\":{entity}");
                push_cell(&mut out, "from", *from);
                push_cell(&mut out, "to", *to);
            }
            Event::Consume { entity } => {
                let _ = write!(out, ",\"entity\":{entity}");
            }
            Event::Grant { granter, grantee } => {
                push_cell(&mut out, "granter", *granter);
                push_cell(&mut out, "grantee", *grantee);
            }
            Event::Block { blocker, blocked } => {
                push_cell(&mut out, "blocker", *blocker);
                push_cell(&mut out, "blocked", *blocked);
            }
            Event::Fail { cell } | Event::Recover { cell } | Event::Corrupt { cell } => {
                push_cell(&mut out, "cell", *cell);
            }
            Event::Violation { monitor, detail } => {
                push_str(&mut out, "monitor", monitor);
                push_str(&mut out, "detail", detail);
            }
            Event::Timeout { detail } => {
                push_str(&mut out, "detail", detail);
            }
            Event::Supervisor { action, detail } => {
                push_str(&mut out, "action", action);
                push_str(&mut out, "detail", detail);
            }
            Event::RoundSummary {
                consumed,
                inserted,
                blocked,
                moved,
            } => {
                let _ = write!(
                    out,
                    ",\"consumed\":{consumed},\"inserted\":{inserted},\"blocked\":{blocked},\"moved\":{moved}"
                );
            }
            Event::FlightHeader { trigger, rounds } => {
                push_str(&mut out, "trigger", trigger);
                let _ = write!(out, ",\"rounds\":{rounds}");
            }
            Event::Span {
                id,
                parent,
                label,
                cell,
                work,
                open,
                close,
                ns,
            } => {
                let _ = write!(out, ",\"id\":{id},\"parent\":{parent}");
                push_str(&mut out, "label", label);
                if let Some(cell) = cell {
                    push_cell(&mut out, "cell", *cell);
                }
                let _ = write!(
                    out,
                    ",\"work\":{work},\"open\":{open},\"close\":{close},\"ns\":{ns}"
                );
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line back into `(round, Event)`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema problem: malformed JSON,
    /// wrong schema version, unknown kind, or missing/mistyped fields.
    pub fn parse_line(line: &str) -> Result<(u64, Event), String> {
        let value = Json::parse(line)?;
        let v = value
            .get("v")
            .and_then(Json::as_u64)
            .ok_or("missing schema version `v`")?;
        if v != SCHEMA_VERSION {
            return Err(format!("schema version {v}, expected {SCHEMA_VERSION}"));
        }
        let round = value
            .get("round")
            .and_then(Json::as_u64)
            .ok_or("missing `round`")?;
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing `kind`")?;
        let event = match kind {
            "insert" => Event::Insert {
                cell: cell_field(&value, "cell")?,
                entity: u64_field(&value, "entity")?,
            },
            "transfer" => Event::Transfer {
                entity: u64_field(&value, "entity")?,
                from: cell_field(&value, "from")?,
                to: cell_field(&value, "to")?,
            },
            "consume" => Event::Consume {
                entity: u64_field(&value, "entity")?,
            },
            "grant" => Event::Grant {
                granter: cell_field(&value, "granter")?,
                grantee: cell_field(&value, "grantee")?,
            },
            "block" => Event::Block {
                blocker: cell_field(&value, "blocker")?,
                blocked: cell_field(&value, "blocked")?,
            },
            "fail" => Event::Fail {
                cell: cell_field(&value, "cell")?,
            },
            "recover" => Event::Recover {
                cell: cell_field(&value, "cell")?,
            },
            "corrupt" => Event::Corrupt {
                cell: cell_field(&value, "cell")?,
            },
            "violation" => Event::Violation {
                monitor: str_field(&value, "monitor")?,
                detail: str_field(&value, "detail")?,
            },
            "timeout" => Event::Timeout {
                detail: str_field(&value, "detail")?,
            },
            "supervisor" => Event::Supervisor {
                action: str_field(&value, "action")?,
                detail: str_field(&value, "detail")?,
            },
            "round_summary" => Event::RoundSummary {
                consumed: u64_field(&value, "consumed")?,
                inserted: u64_field(&value, "inserted")?,
                blocked: u64_field(&value, "blocked")?,
                moved: u64_field(&value, "moved")?,
            },
            "flight_header" => Event::FlightHeader {
                trigger: str_field(&value, "trigger")?,
                rounds: u64_field(&value, "rounds")?,
            },
            "span" => {
                let cell = match value.get("cell") {
                    Some(_) => Some(cell_field(&value, "cell")?),
                    None => None,
                };
                let open = u64_field(&value, "open")?;
                let close = u64_field(&value, "close")?;
                if close <= open {
                    return Err(format!("span `close` ({close}) must exceed `open` ({open})"));
                }
                let id = u64_field(&value, "id")?;
                if id == 0 {
                    return Err("span `id` must be nonzero".to_string());
                }
                Event::Span {
                    id,
                    parent: u64_field(&value, "parent")?,
                    label: str_field(&value, "label")?,
                    cell,
                    work: u64_field(&value, "work")?,
                    open,
                    close,
                    ns: u64_field(&value, "ns")?,
                }
            }
            other => return Err(format!("unknown event kind `{other}`")),
        };
        Ok((round, event))
    }
}

fn push_cell(out: &mut String, key: &str, cell: CellId) {
    let _ = write!(out, ",\"{key}\":[{},{}]", cell.i(), cell.j());
}

fn push_str(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, ",\"{key}\":");
    escape_into(value, out);
}

fn u64_field(value: &Json, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or mistyped `{key}`"))
}

fn str_field(value: &Json, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or mistyped `{key}`"))
}

fn cell_field(value: &Json, key: &str) -> Result<CellId, String> {
    let arr = value
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or mistyped `{key}`"))?;
    if arr.len() != 2 {
        return Err(format!("`{key}` must be a [i,j] pair"));
    }
    let i = arr[0]
        .as_u64()
        .and_then(|n| u16::try_from(n).ok())
        .ok_or_else(|| format!("`{key}[0]` out of u16 range"))?;
    let j = arr[1]
        .as_u64()
        .and_then(|n| u16::try_from(n).ok())
        .ok_or_else(|| format!("`{key}[1]` out of u16 range"))?;
    Ok(CellId::new(i, j))
}

/// Statistics from validating a JSONL stream with [`validate_stream`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Total event lines.
    pub events: usize,
    /// Events per kind, sorted by kind name.
    pub by_kind: Vec<(String, usize)>,
    /// Lowest round tag seen.
    pub first_round: u64,
    /// Highest round tag seen.
    pub last_round: u64,
    /// Violation events in the stream.
    pub violations: usize,
    /// Timeout events in the stream.
    pub timeouts: usize,
}

/// Validates that every non-empty line of `text` is a schema-conformant
/// event and that round tags never go backwards. Returns aggregate stats.
///
/// # Errors
///
/// Returns `(line number, problem)` for the first offending line (1-based).
pub fn validate_stream(text: &str) -> Result<StreamStats, (usize, String)> {
    let mut stats = StreamStats {
        first_round: u64::MAX,
        ..StreamStats::default()
    };
    let mut counts = std::collections::BTreeMap::new();
    let mut last_round = 0u64;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (round, event) = Event::parse_line(line).map_err(|e| (idx + 1, e))?;
        // A flight header is tagged with the *trigger* round; the history
        // that follows restarts earlier, so it neither obeys nor advances
        // the monotonicity baseline.
        if matches!(event, Event::FlightHeader { .. }) {
            last_round = 0;
        } else {
            if stats.events > 0 && round < last_round {
                return Err((
                    idx + 1,
                    format!("round went backwards: {round} after {last_round}"),
                ));
            }
            last_round = round;
        }
        stats.events += 1;
        stats.first_round = stats.first_round.min(round);
        stats.last_round = stats.last_round.max(round);
        *counts.entry(event.kind().to_string()).or_insert(0usize) += 1;
        match event {
            Event::Violation { .. } => stats.violations += 1,
            Event::Timeout { .. } => stats.timeouts += 1,
            _ => {}
        }
    }
    if stats.events == 0 {
        stats.first_round = 0;
    }
    stats.by_kind = counts.into_iter().collect();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<Event> {
        vec![
            Event::Insert {
                cell: CellId::new(1, 0),
                entity: 7,
            },
            Event::Transfer {
                entity: 7,
                from: CellId::new(1, 0),
                to: CellId::new(1, 1),
            },
            Event::Consume { entity: 7 },
            Event::Grant {
                granter: CellId::new(2, 2),
                grantee: CellId::new(2, 1),
            },
            Event::Block {
                blocker: CellId::new(3, 3),
                blocked: CellId::new(3, 2),
            },
            Event::Fail {
                cell: CellId::new(4, 4),
            },
            Event::Recover {
                cell: CellId::new(4, 4),
            },
            Event::Corrupt {
                cell: CellId::new(5, 5),
            },
            Event::Violation {
                monitor: "safety".into(),
                detail: "two entities in cell \"(1,1)\"".into(),
            },
            Event::Timeout {
                detail: "barrier generation 12".into(),
            },
            Event::Supervisor {
                action: "restart".into(),
                detail: "cell (2,3) after crash".into(),
            },
            Event::RoundSummary {
                consumed: 1,
                inserted: 2,
                blocked: 0,
                moved: 5,
            },
            Event::FlightHeader {
                trigger: "violation".into(),
                rounds: 16,
            },
            Event::Span {
                id: 0x1234_5678_9abc_def0,
                parent: 0,
                label: "round".into(),
                cell: None,
                work: 9,
                open: 1,
                close: 10,
                ns: 1234,
            },
            Event::Span {
                id: 0x0fed_cba9_8765_4321,
                parent: 0x1234_5678_9abc_def0,
                label: "cell".into(),
                cell: Some(CellId::new(2, 3)),
                work: 1,
                open: 2,
                close: 3,
                ns: 0,
            },
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        for (k, event) in all_events().into_iter().enumerate() {
            let round = 10 + k as u64;
            let line = event.to_line(round);
            let (r, parsed) = Event::parse_line(&line).unwrap_or_else(|e| {
                panic!("kind {} failed to parse: {e}\n{line}", event.kind())
            });
            assert_eq!((r, &parsed), (round, &event), "line: {line}");
        }
    }

    #[test]
    fn lines_have_fixed_prefix_and_kind() {
        let line = Event::Consume { entity: 3 }.to_line(5);
        assert_eq!(line, r#"{"v":1,"round":5,"kind":"consume","entity":3}"#);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let err =
            Event::parse_line(r#"{"v":2,"round":0,"kind":"consume","entity":1}"#).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn unknown_kind_and_bad_fields_are_rejected() {
        assert!(Event::parse_line(r#"{"v":1,"round":0,"kind":"warp"}"#)
            .unwrap_err()
            .contains("unknown event kind"));
        assert!(Event::parse_line(r#"{"v":1,"round":0,"kind":"insert","cell":[1],"entity":0}"#)
            .unwrap_err()
            .contains("pair"));
        assert!(
            Event::parse_line(r#"{"v":1,"round":0,"kind":"insert","cell":[1,99999],"entity":0}"#)
                .unwrap_err()
                .contains("u16")
        );
        assert!(Event::parse_line(r#"{"v":1,"kind":"consume","entity":1}"#)
            .unwrap_err()
            .contains("round"));
    }

    #[test]
    fn span_invariants_are_rejected() {
        // close must be strictly after open.
        let err = Event::parse_line(
            r#"{"v":1,"round":3,"kind":"span","id":7,"parent":0,"label":"round","work":1,"open":5,"close":5,"ns":0}"#,
        )
        .unwrap_err();
        assert!(err.contains("close"), "{err}");
        // id 0 is the "no parent" sentinel, never a real span.
        let err = Event::parse_line(
            r#"{"v":1,"round":3,"kind":"span","id":0,"parent":0,"label":"round","work":1,"open":1,"close":2,"ns":0}"#,
        )
        .unwrap_err();
        assert!(err.contains("nonzero"), "{err}");
    }

    #[test]
    fn span_cell_field_is_optional() {
        let line = Event::Span {
            id: 1,
            parent: 0,
            label: "round".into(),
            cell: None,
            work: 0,
            open: 1,
            close: 2,
            ns: 0,
        }
        .to_line(1);
        assert!(!line.contains("cell"), "{line}");
        assert_eq!(
            line,
            r#"{"v":1,"round":1,"kind":"span","id":1,"parent":0,"label":"round","work":0,"open":1,"close":2,"ns":0}"#
        );
    }

    #[test]
    fn triggers_are_violation_and_timeout() {
        for event in all_events() {
            let expected = matches!(event.kind(), "violation" | "timeout");
            assert_eq!(event.is_trigger(), expected, "{}", event.kind());
        }
    }

    #[test]
    fn validate_stream_counts_kinds() {
        let mut text = String::new();
        for (k, event) in all_events().into_iter().enumerate() {
            text.push_str(&event.to_line(k as u64));
            text.push('\n');
        }
        text.push('\n'); // blank lines are fine
        let stats = validate_stream(&text).unwrap();
        assert_eq!(stats.events, 15);
        assert_eq!(stats.violations, 1);
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.first_round, 0);
        assert_eq!(stats.last_round, 14);
        assert_eq!(
            stats.by_kind.iter().map(|(_, n)| n).sum::<usize>(),
            stats.events
        );
    }

    #[test]
    fn validate_stream_rejects_regressing_rounds() {
        let mut text = Event::Consume { entity: 0 }.to_line(5);
        text.push('\n');
        text.push_str(&Event::Consume { entity: 1 }.to_line(4));
        let (line, err) = validate_stream(&text).unwrap_err();
        assert_eq!(line, 2);
        assert!(err.contains("backwards"));
    }

    #[test]
    fn validate_stream_reports_offending_line() {
        let text = "{\"v\":1,\"round\":0,\"kind\":\"consume\",\"entity\":0}\nnot json\n";
        assert_eq!(validate_stream(text).unwrap_err().0, 2);
        assert_eq!(validate_stream("").unwrap(), StreamStats::default());
    }
}
