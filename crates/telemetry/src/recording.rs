//! Deterministic flight recordings: the `.rec` container format.
//!
//! A recording is a stream of checksummed frames (the same
//! `[len u32 LE][fnv1a u64 LE][payload]` framing as the `cellflow-net`
//! write-ahead log, via `cellflow_dts::hash`): one header frame followed by
//! one state frame per recorded round. State frames are either **keyframes**
//! (a full state snapshot) or **deltas** against the previous round; a
//! keyframe lands every `keyframe_interval` rounds so any round is
//! reachable with one seek plus at most `K − 1` delta applications.
//!
//! This module owns the *container*: header codec, frame writer, and a
//! whole-file reader that validates every checksum and reports corruption
//! by byte offset (`file:offset:`, the binary cousin of the JSONL
//! validator's `file:line:`). Frame payloads are opaque here — the state
//! codec lives in `cellflow_core::snapshot`, which sits above this crate.
//!
//! Recordings are content-addressed: the header carries a `content_id`
//! derived from the schema version, seed, config checksum, and scenario
//! line, so two recordings of the same seeded scenario carry the same id
//! and a replay can refuse a header that does not match what it re-drives.

use cellflow_dts::hash::{append_frame, fnv1a, next_frame, FrameStep, FrameTear};

/// Recording container schema version (bumped on any layout change).
pub const REC_SCHEMA_VERSION: u32 = 1;

/// Magic number opening every header payload (`"CFRC"` little-endian).
pub const REC_MAGIC: u32 = 0x4352_4643;

/// What a state frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// A full state snapshot.
    Keyframe,
    /// A delta against the previous round's state.
    Delta,
}

/// The recording header: everything needed to identify, inspect, and
/// re-drive a recording without decoding any state frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecHeader {
    /// Container schema version ([`REC_SCHEMA_VERSION`]).
    pub schema: u32,
    /// The run's campaign seed.
    pub seed: u64,
    /// Grid extent along x (cells).
    pub nx: u16,
    /// Grid extent along y (cells).
    pub ny: u16,
    /// Rounds between keyframes (≥ 1).
    pub keyframe_interval: u64,
    /// Number of state frames in the recording (patched at finish).
    pub rounds: u64,
    /// Checksum of the full system configuration.
    pub config_checksum: u64,
    /// Content address: FNV-1a over schema, seed, config checksum, and
    /// scenario line — equal for recordings of the same seeded scenario.
    pub content_id: u64,
    /// Human-readable config summary (grid, target, sources, capacity).
    pub config: String,
    /// Machine-parsable scenario line; a replay re-drives from this.
    pub scenario: String,
}

impl RecHeader {
    /// Computes the header's content address from its identity fields.
    pub fn compute_content_id(&self) -> u64 {
        let key = format!(
            "cellflow-rec schema={} seed={} config={:016x} scenario={}",
            self.schema, self.seed, self.config_checksum, self.scenario
        );
        fnv1a(key.as_bytes())
    }

    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(64 + self.config.len() + self.scenario.len());
        p.extend_from_slice(&REC_MAGIC.to_le_bytes());
        p.extend_from_slice(&self.schema.to_le_bytes());
        p.extend_from_slice(&self.seed.to_le_bytes());
        p.extend_from_slice(&self.nx.to_le_bytes());
        p.extend_from_slice(&self.ny.to_le_bytes());
        p.extend_from_slice(&self.keyframe_interval.to_le_bytes());
        p.extend_from_slice(&self.rounds.to_le_bytes());
        p.extend_from_slice(&self.config_checksum.to_le_bytes());
        p.extend_from_slice(&self.content_id.to_le_bytes());
        p.extend_from_slice(&(self.config.len() as u32).to_le_bytes());
        p.extend_from_slice(self.config.as_bytes());
        p.extend_from_slice(&(self.scenario.len() as u32).to_le_bytes());
        p.extend_from_slice(self.scenario.as_bytes());
        p
    }

    fn decode(payload: &[u8]) -> Result<RecHeader, String> {
        let mut d = HDec { bytes: payload, at: 0 };
        let magic = d.u32()?;
        if magic != REC_MAGIC {
            return Err(format!("bad magic {magic:#010x} (not a .rec recording)"));
        }
        let schema = d.u32()?;
        if schema != REC_SCHEMA_VERSION {
            return Err(format!(
                "unsupported recording schema {schema} (this build reads {REC_SCHEMA_VERSION})"
            ));
        }
        let seed = d.u64()?;
        let nx = d.u16()?;
        let ny = d.u16()?;
        let keyframe_interval = d.u64()?;
        let rounds = d.u64()?;
        let config_checksum = d.u64()?;
        let content_id = d.u64()?;
        let config = d.string()?;
        let scenario = d.string()?;
        if d.at != payload.len() {
            return Err("trailing bytes inside the header frame".to_string());
        }
        if keyframe_interval == 0 {
            return Err("keyframe interval must be positive".to_string());
        }
        Ok(RecHeader {
            schema,
            seed,
            nx,
            ny,
            keyframe_interval,
            rounds,
            config_checksum,
            content_id,
            config,
            scenario,
        })
    }
}

struct HDec<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl HDec<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let s = self
            .bytes
            .get(self.at..self.at + n)
            .ok_or_else(|| "header frame truncated".to_string())?;
        self.at += n;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "header string is not UTF-8".to_string())
    }
}

/// Byte offset of the `rounds` field inside the header *payload* (after
/// magic, schema, seed, nx, ny, keyframe_interval).
const ROUNDS_OFFSET: usize = 4 + 4 + 8 + 2 + 2 + 8;

/// Streams a recording into an in-memory buffer: header frame first, then
/// one state frame per [`RecordingWriter::push`]. The header's round count
/// is patched (and its checksum re-sealed) by [`RecordingWriter::finish`].
#[derive(Clone, Debug)]
pub struct RecordingWriter {
    buf: Vec<u8>,
    header_payload_len: usize,
    rounds: u64,
    scratch: Vec<u8>,
}

impl RecordingWriter {
    /// Starts a recording with `header` (its `rounds` and `content_id`
    /// fields are recomputed here, so callers may leave them zero).
    pub fn new(mut header: RecHeader) -> RecordingWriter {
        header.rounds = 0;
        header.content_id = header.compute_content_id();
        let payload = header.encode();
        let mut buf = Vec::with_capacity(payload.len() + 12);
        append_frame(&mut buf, &payload);
        RecordingWriter {
            header_payload_len: payload.len(),
            buf,
            rounds: 0,
            scratch: Vec::new(),
        }
    }

    /// Appends one state frame: `[round u64][kind u8][body]`, framed.
    pub fn push(&mut self, round: u64, kind: FrameKind, body: &[u8]) {
        self.scratch.clear();
        self.scratch.extend_from_slice(&round.to_le_bytes());
        self.scratch.push(match kind {
            FrameKind::Keyframe => 0,
            FrameKind::Delta => 1,
        });
        self.scratch.extend_from_slice(body);
        append_frame(&mut self.buf, &self.scratch);
        self.rounds += 1;
    }

    /// State frames pushed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Bytes buffered so far (header frame included).
    pub fn bytes_buffered(&self) -> usize {
        self.buf.len()
    }

    /// Seals the recording: patches the header's round count in place,
    /// re-seals the header frame's checksum, and returns the file bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let payload_start = 12;
        let off = payload_start + ROUNDS_OFFSET;
        self.buf[off..off + 8].copy_from_slice(&self.rounds.to_le_bytes());
        let crc = fnv1a(&self.buf[payload_start..payload_start + self.header_payload_len]);
        self.buf[4..12].copy_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

/// One parsed state frame.
#[derive(Clone, Debug)]
pub struct RecFrame {
    /// The round this frame's state belongs to.
    pub round: u64,
    /// Keyframe or delta.
    pub kind: FrameKind,
    /// The opaque state payload (decoded by `cellflow_core::snapshot`).
    pub body: Vec<u8>,
    /// Byte offset of the frame's first byte in the file.
    pub offset: usize,
}

/// A recording-level parse/validation error, located by byte offset so the
/// CLI can report `file:offset: message`.
#[derive(Clone, Debug)]
pub struct RecError {
    /// Byte offset of the offending frame (or byte) in the file.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl RecError {
    fn at(offset: usize, message: impl Into<String>) -> RecError {
        RecError { offset, message: message.into() }
    }
}

impl std::fmt::Display for RecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.offset, self.message)
    }
}

/// A fully parsed and checksum-validated recording.
#[derive(Clone, Debug)]
pub struct Recording {
    /// The header frame.
    pub header: RecHeader,
    /// State frames, one per recorded round, in round order.
    pub frames: Vec<RecFrame>,
}

impl Recording {
    /// Parses `bytes`, validating every frame checksum, the header's round
    /// count, round contiguity, and the keyframe cadence. Any violation is
    /// reported with the byte offset of the offending frame.
    pub fn parse(bytes: &[u8]) -> Result<Recording, RecError> {
        let (header_payload, mut at) = match next_frame(bytes, 0) {
            FrameStep::Frame { payload, next } => (payload, next),
            FrameStep::End => return Err(RecError::at(0, "empty file (expected a .rec recording)")),
            FrameStep::Torn { offset, reason } => return Err(tear_error(offset, reason, "header")),
        };
        let header = RecHeader::decode(header_payload).map_err(|m| RecError::at(0, m))?;
        let expected_id = header.compute_content_id();
        if header.content_id != expected_id {
            return Err(RecError::at(
                0,
                format!(
                    "content id {:016x} does not match header fields (expected {expected_id:016x})",
                    header.content_id
                ),
            ));
        }
        let mut frames = Vec::new();
        loop {
            let offset = at;
            match next_frame(bytes, at) {
                FrameStep::End => break,
                FrameStep::Torn { offset, reason } => {
                    return Err(tear_error(offset, reason, "state"))
                }
                FrameStep::Frame { payload, next } => {
                    if payload.len() < 9 {
                        return Err(RecError::at(offset, "state frame shorter than its round/kind prologue"));
                    }
                    let round = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
                    let kind = match payload[8] {
                        0 => FrameKind::Keyframe,
                        1 => FrameKind::Delta,
                        k => {
                            return Err(RecError::at(offset, format!("unknown frame kind {k}")))
                        }
                    };
                    frames.push(RecFrame {
                        round,
                        kind,
                        body: payload[9..].to_vec(),
                        offset,
                    });
                    at = next;
                }
            }
        }
        if header.rounds != frames.len() as u64 {
            return Err(RecError::at(
                at,
                format!(
                    "header promises {} state frame(s), file holds {} (truncated or unsealed recording)",
                    header.rounds,
                    frames.len()
                ),
            ));
        }
        if let Some(first) = frames.first() {
            if first.kind != FrameKind::Keyframe {
                return Err(RecError::at(first.offset, "first state frame must be a keyframe"));
            }
            for (k, f) in frames.iter().enumerate() {
                let expect = first.round + k as u64;
                if f.round != expect {
                    return Err(RecError::at(
                        f.offset,
                        format!("round {} out of order (expected {expect})", f.round),
                    ));
                }
            }
        }
        Ok(Recording { header, frames })
    }

    /// Index of the latest keyframe at or before `round`, if any.
    pub fn keyframe_at_or_before(&self, round: u64) -> Option<usize> {
        let first = self.frames.first()?.round;
        if round < first {
            return None;
        }
        let upto = (round - first) as usize;
        self.frames[..=upto.min(self.frames.len() - 1)]
            .iter()
            .rposition(|f| f.kind == FrameKind::Keyframe)
    }

    /// Index of the frame for `round`, if recorded.
    pub fn frame_index(&self, round: u64) -> Option<usize> {
        let first = self.frames.first()?.round;
        let idx = round.checked_sub(first)? as usize;
        (idx < self.frames.len()).then_some(idx)
    }

    /// The first and last recorded rounds, if any frames exist.
    pub fn round_span(&self) -> Option<(u64, u64)> {
        Some((self.frames.first()?.round, self.frames.last()?.round))
    }
}

fn tear_error(offset: usize, reason: FrameTear, what: &str) -> RecError {
    let msg = match reason {
        FrameTear::Header => format!("truncated {what} frame (incomplete frame header)"),
        FrameTear::Payload => format!("truncated {what} frame (payload shorter than its length field)"),
        FrameTear::Checksum => format!("corrupt {what} frame (fnv1a checksum mismatch)"),
    };
    RecError::at(offset, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> RecHeader {
        RecHeader {
            schema: REC_SCHEMA_VERSION,
            seed: 42,
            nx: 5,
            ny: 5,
            keyframe_interval: 4,
            rounds: 0,
            config_checksum: 0xDEAD_BEEF,
            content_id: 0,
            config: "5x5 target=(1,4)".to_string(),
            scenario: "plain n=5 rounds=10".to_string(),
        }
    }

    fn sample() -> Vec<u8> {
        let mut w = RecordingWriter::new(header());
        w.push(0, FrameKind::Keyframe, b"state-zero");
        w.push(1, FrameKind::Delta, b"d1");
        w.push(2, FrameKind::Delta, b"d2");
        w.push(3, FrameKind::Delta, b"");
        w.push(4, FrameKind::Keyframe, b"state-four");
        w.finish()
    }

    #[test]
    fn writer_reader_round_trip() {
        let bytes = sample();
        let rec = Recording::parse(&bytes).expect("clean recording parses");
        assert_eq!(rec.header.rounds, 5);
        assert_eq!(rec.header.seed, 42);
        assert_eq!(rec.header.content_id, rec.header.compute_content_id());
        assert_eq!(rec.frames.len(), 5);
        assert_eq!(rec.frames[0].kind, FrameKind::Keyframe);
        assert_eq!(rec.frames[0].body, b"state-zero");
        assert_eq!(rec.frames[2].body, b"d2");
        assert_eq!(rec.round_span(), Some((0, 4)));
    }

    #[test]
    fn identical_runs_share_a_content_id() {
        let a = Recording::parse(&sample()).unwrap();
        let b = Recording::parse(&sample()).unwrap();
        assert_eq!(a.header.content_id, b.header.content_id);
        let mut other = header();
        other.seed = 43;
        let w = RecordingWriter::new(other);
        let c = Recording::parse(&w.finish()).unwrap();
        assert_ne!(a.header.content_id, c.header.content_id);
    }

    #[test]
    fn keyframe_seek_lands_on_the_cadence() {
        let rec = Recording::parse(&sample()).unwrap();
        assert_eq!(rec.keyframe_at_or_before(0), Some(0));
        assert_eq!(rec.keyframe_at_or_before(3), Some(0));
        assert_eq!(rec.keyframe_at_or_before(4), Some(4));
        assert_eq!(rec.frame_index(3), Some(3));
        assert_eq!(rec.frame_index(9), None);
    }

    #[test]
    fn corruption_is_reported_by_offset() {
        let mut bytes = sample();
        // Flip one byte inside the last frame's payload.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let err = Recording::parse(&bytes).expect_err("corrupt frame must fail");
        assert!(err.message.contains("checksum"), "{}", err.message);
        assert!(err.offset > 0);
        // Truncation mid-frame is named too.
        let bytes = sample();
        let err = Recording::parse(&bytes[..bytes.len() - 3]).expect_err("torn frame");
        assert!(err.message.contains("truncated"), "{}", err.message);
    }

    #[test]
    fn unsealed_recording_is_rejected() {
        // Bytes taken before `finish()` still carry rounds=0 in the header.
        let mut w = RecordingWriter::new(header());
        w.push(0, FrameKind::Keyframe, b"s");
        let bytes = w.buf.clone();
        let err = Recording::parse(&bytes).expect_err("unsealed recording");
        assert!(err.message.contains("state frame"), "{}", err.message);
    }

    #[test]
    fn non_recording_bytes_fail_with_context() {
        assert!(Recording::parse(b"").is_err());
        let err = Recording::parse(&cellflow_dts::hash::frame(b"not a header"))
            .expect_err("bad magic");
        assert!(err.message.contains("magic"), "{}", err.message);
    }
}
