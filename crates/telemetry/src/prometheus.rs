//! Prometheus text-format exposition (version 0.0.4) for registry
//! snapshots, plus a strict parser used by the CI smoke test to prove the
//! exposition is well-formed without any external scrape stack.

use std::fmt::Write as _;

use crate::registry::MetricSnapshot;

/// Renders `snapshot` in the Prometheus text exposition format: one
/// `# TYPE` comment per family, histogram buckets as cumulative
/// `_bucket{le="…"}` series ending in `le="+Inf"`, plus `_sum` and
/// `_count`. Deterministic by construction: families are sorted by name
/// before rendering (registry snapshots already arrive name-sorted; the
/// sort here makes the ordering a property of the exposition itself, not
/// of the caller), and within a histogram the bucket label order is the
/// fixed ascending `le` sequence. The golden test below pins the exact
/// byte layout so CI diffs of scraped output are stable.
pub fn render(snapshot: &[MetricSnapshot]) -> String {
    let mut ordered: Vec<&MetricSnapshot> = snapshot.iter().collect();
    ordered.sort_by(|a, b| a.name().cmp(b.name()));
    let mut out = String::new();
    for metric in ordered {
        match metric {
            MetricSnapshot::Counter { name, value } => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {value}");
            }
            MetricSnapshot::Gauge { name, value } => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {value}");
            }
            MetricSnapshot::Histogram {
                name,
                count,
                sum,
                buckets,
            } => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (upper, bucket_count) in buckets {
                    cumulative += bucket_count;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                let _ = writeln!(out, "{name}_sum {sum}");
                let _ = writeln!(out, "{name}_count {count}");
            }
        }
    }
    out
}

/// Aggregate results of [`validate`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Metric families (`# TYPE` lines).
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validates a text-format exposition: every line is a `# TYPE` comment or
/// a `name[{labels}] value` sample, names are legal, every sample belongs
/// to a declared family, histogram buckets are cumulative and end with
/// `le="+Inf"` matching `_count`.
///
/// # Errors
///
/// Returns `(line number, problem)` for the first offense (1-based).
pub fn validate(text: &str) -> Result<ExpositionStats, (usize, String)> {
    let mut stats = ExpositionStats::default();
    let mut families: Vec<(String, String)> = Vec::new(); // (name, type)
    // Per-histogram running state: (family, last cumulative, inf seen, count seen)
    let mut hist: Option<(String, u64, Option<u64>, Option<u64>)> = None;

    fn close_histogram(
        state: &Option<(String, u64, Option<u64>, Option<u64>)>,
        line: usize,
    ) -> Result<(), (usize, String)> {
        if let Some((name, _, inf, count)) = state {
            let inf = inf.ok_or((line, format!("{name}: missing le=\"+Inf\" bucket")))?;
            let count = count.ok_or((line, format!("{name}: missing _count sample")))?;
            if inf != count {
                return Err((line, format!("{name}: +Inf bucket {inf} != count {count}")));
            }
        }
        Ok(())
    }

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# TYPE ") {
            close_histogram(&hist, lineno)?;
            hist = None;
            let mut parts = comment.split_whitespace();
            let name = parts.next().ok_or((lineno, "TYPE without name".to_string()))?;
            let kind = parts.next().ok_or((lineno, "TYPE without kind".to_string()))?;
            if !valid_metric_name(name) {
                return Err((lineno, format!("illegal metric name `{name}`")));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err((lineno, format!("unknown metric type `{kind}`")));
            }
            if families.iter().any(|(n, _)| n == name) {
                return Err((lineno, format!("duplicate family `{name}`")));
            }
            families.push((name.to_string(), kind.to_string()));
            if kind == "histogram" {
                hist = Some((name.to_string(), 0, None, None));
            }
            stats.families += 1;
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments (HELP) are allowed
        }

        // A sample: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or((lineno, "sample without value".to_string()))?;
        let value: f64 = value
            .parse()
            .map_err(|_| (lineno, format!("bad sample value `{value}`")))?;
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or((lineno, "unterminated label set".to_string()))?;
                (name, Some(labels))
            }
            None => (series.trim_end(), None),
        };
        if !valid_metric_name(name) {
            return Err((lineno, format!("illegal metric name `{name}`")));
        }
        let family = families
            .iter()
            .find(|(n, _)| {
                name == n
                    || (name.strip_prefix(n.as_str()).is_some_and(|suffix| {
                        matches!(suffix, "_bucket" | "_sum" | "_count")
                    }))
            })
            .ok_or((lineno, format!("sample `{name}` without TYPE declaration")))?
            .clone();

        if family.1 == "histogram" {
            let (hname, last, inf, count) = hist
                .as_mut()
                .filter(|(n, ..)| *n == family.0)
                .ok_or((lineno, format!("histogram sample `{name}` out of order")))?;
            if name == format!("{hname}_bucket") {
                let labels = labels.ok_or((lineno, "bucket without le label".to_string()))?;
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or((lineno, format!("bad bucket labels `{labels}`")))?;
                let cumulative = value as u64;
                if cumulative < *last {
                    return Err((lineno, format!("{hname}: bucket counts not cumulative")));
                }
                *last = cumulative;
                if le == "+Inf" {
                    *inf = Some(cumulative);
                }
            } else if name == format!("{hname}_count") {
                *count = Some(value as u64);
            } else if name != format!("{hname}_sum") {
                return Err((lineno, format!("unexpected histogram sample `{name}`")));
            }
        } else if labels.is_some() {
            return Err((lineno, format!("unexpected labels on `{name}`")));
        } else if name != family.0 {
            return Err((lineno, format!("sample `{name}` without TYPE declaration")));
        }
        stats.samples += 1;
    }
    close_histogram(&hist, text.lines().count())?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{PhaseTimers, Registry};

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("cellflow_rounds_total").add(12);
        reg.gauge("cellflow_population").set(-3);
        let timers = PhaseTimers::register(&reg);
        for v in [100, 200, 100_000] {
            timers.route.observe(v);
        }
        reg
    }

    #[test]
    fn render_is_valid_and_deterministic() {
        let reg = sample_registry();
        let text = render(&reg.snapshot());
        let again = render(&reg.snapshot());
        assert_eq!(text, again);
        let stats = validate(&text).unwrap();
        assert_eq!(stats.families, 6); // counter + gauge + 4 phase histograms
        assert!(text.contains("# TYPE cellflow_rounds_total counter"));
        assert!(text.contains("cellflow_rounds_total 12"));
        assert!(text.contains("cellflow_population -3"));
        assert!(text.contains("cellflow_engine_route_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("cellflow_engine_route_ns_sum 100300"));
    }

    #[test]
    fn render_sorts_families_regardless_of_snapshot_order() {
        let reg = Registry::new();
        reg.counter("z_last").add(1);
        reg.counter("a_first").add(2);
        let mut snapshot = reg.snapshot();
        snapshot.reverse(); // hand the renderer a deliberately unsorted view
        let text = render(&snapshot);
        let a = text.find("a_first").unwrap();
        let z = text.find("z_last").unwrap();
        assert!(a < z, "families not name-sorted:\n{text}");
        assert_eq!(text, render(&reg.snapshot()));
    }

    #[test]
    fn golden_exposition_is_pinned() {
        // The full byte-exact exposition for a small registry. If this test
        // breaks, scraped-output diffs in CI break with it — change the
        // renderer only with a deliberate golden update.
        let reg = Registry::new();
        reg.counter("cellflow_rounds_total").add(12);
        reg.gauge("cellflow_population").set(-3);
        let h = reg.histogram("cellflow_round_ns");
        for v in [1, 2, 3] {
            h.observe(v);
        }
        let text = render(&reg.snapshot());
        let golden = "\
# TYPE cellflow_population gauge
cellflow_population -3
# TYPE cellflow_round_ns histogram
cellflow_round_ns_bucket{le=\"1\"} 1
cellflow_round_ns_bucket{le=\"3\"} 3
cellflow_round_ns_bucket{le=\"+Inf\"} 3
cellflow_round_ns_sum 6
cellflow_round_ns_count 3
# TYPE cellflow_rounds_total counter
cellflow_rounds_total 12
";
        assert_eq!(text, golden);
        validate(&text).unwrap();
    }

    #[test]
    fn buckets_render_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        h.observe(1); // bucket le=1
        h.observe(2); // bucket le=3
        h.observe(3); // bucket le=3
        let text = render(&reg.snapshot());
        assert!(text.contains("h_bucket{le=\"1\"} 1"));
        assert!(text.contains("h_bucket{le=\"3\"} 3"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("h_count 3"));
        validate(&text).unwrap();
    }

    #[test]
    fn empty_snapshot_renders_empty_and_validates() {
        let text = render(&[]);
        assert!(text.is_empty());
        assert_eq!(validate(&text).unwrap(), ExpositionStats::default());
    }

    #[test]
    fn validate_rejects_malformed_expositions() {
        let cases = [
            ("metric_without_type 1\n", "without TYPE"),
            ("# TYPE m counter\n# TYPE m counter\nm 1\n", "duplicate"),
            ("# TYPE m summary\n", "unknown metric type"),
            ("# TYPE m counter\nm notanumber\n", "bad sample value"),
            ("# TYPE 0bad counter\n0bad 1\n", "illegal metric name"),
            ("# TYPE m counter\nm{le=\"1\"} 1\n", "unexpected labels"),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
                "not cumulative",
            ),
            (
                "# TYPE h histogram\nh_sum 1\nh_count 3\n",
                "missing le=\"+Inf\"",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\n",
                "missing _count",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
                "!= count",
            ),
        ];
        for (text, needle) in cases {
            let err = validate(text).unwrap_err();
            assert!(err.1.contains(needle), "{text:?} gave {err:?}");
        }
    }

    #[test]
    fn help_comments_and_blanks_are_tolerated() {
        let text = "# HELP m something\n# TYPE m counter\n\nm 4\n";
        let stats = validate(text).unwrap();
        assert_eq!(stats, ExpositionStats { families: 1, samples: 1 });
    }
}
