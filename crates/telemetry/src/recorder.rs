//! The structured event sink: JSONL streaming plus a flight recorder.
//!
//! An [`EventLog`] is where instrumented runtimes hand their [`Event`]s.
//! It can do two things with them, independently enabled:
//!
//! * **stream** every event as a JSONL line to any `Write` sink (a file,
//!   a buffer in tests);
//! * **retain** the last K rounds of events in a bounded [`FlightRecorder`]
//!   ring, and when a *trigger* event arrives (a monitor violation or a
//!   round timeout — [`Event::is_trigger`]), auto-dump that history to a
//!   configured path. A chaos run that fails thus leaves behind a
//!   replayable artifact of exactly the rounds leading up to the failure,
//!   with the trigger recorded in the dump's header line.
//!
//! Telemetry is best-effort by design: I/O errors are counted, never
//! propagated into the instrumented runtime.

use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::event::{Event, SCHEMA_VERSION};

/// A bounded ring of the last K rounds' events.
///
/// Events for the same round merge into one slot, so capacity is measured
/// in *rounds of history*, not event count — a burst round doesn't evict
/// disproportionate context.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<(u64, Vec<Event>)>,
}

impl FlightRecorder {
    /// A recorder retaining the last `rounds_capacity` rounds (minimum 1).
    pub fn new(rounds_capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: rounds_capacity.max(1),
            ring: VecDeque::new(),
        }
    }

    /// Round capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rounds currently retained.
    pub fn rounds_held(&self) -> usize {
        self.ring.len()
    }

    /// Total events currently retained.
    pub fn events_held(&self) -> usize {
        self.ring.iter().map(|(_, evs)| evs.len()).sum()
    }

    /// Records one event, evicting the oldest round if a new round pushes
    /// the ring past capacity.
    pub fn push(&mut self, round: u64, event: Event) {
        match self.ring.back_mut() {
            Some((r, events)) if *r == round => events.push(event),
            _ => {
                if self.ring.len() == self.capacity {
                    self.ring.pop_front();
                }
                self.ring.push_back((round, vec![event]));
            }
        }
    }

    /// The retained history, oldest round first.
    pub fn rounds(&self) -> impl Iterator<Item = (u64, &[Event])> {
        self.ring.iter().map(|(r, evs)| (*r, evs.as_slice()))
    }

    /// Renders the retained history as a JSONL dump: a `flight_header`
    /// line naming the `trigger`, then every retained event in order.
    pub fn render_dump(&self, trigger: &str, trigger_round: u64) -> String {
        let mut out = String::new();
        let header = Event::FlightHeader {
            trigger: trigger.to_string(),
            rounds: self.ring.len() as u64,
        };
        out.push_str(&header.to_line(trigger_round));
        out.push('\n');
        for (round, events) in self.rounds() {
            for event in events {
                out.push_str(&event.to_line(round));
                out.push('\n');
            }
        }
        out
    }
}

/// The unified event sink. See the module docs for the two roles
/// (streaming and flight recording); a default `EventLog` does neither and
/// costs one branch per emit.
#[derive(Default)]
pub struct EventLog {
    stream: Option<Box<dyn Write + Send>>,
    flight: Option<FlightRecorder>,
    flight_path: Option<PathBuf>,
    events: u64,
    dumps: u64,
    io_errors: u64,
}

impl EventLog {
    /// A disabled log: emits are a no-op.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Streams every event as a JSONL line into `sink`.
    pub fn with_stream(mut self, sink: Box<dyn Write + Send>) -> EventLog {
        self.stream = Some(sink);
        self
    }

    /// Streams every event to the file at `path` (created or truncated).
    ///
    /// # Errors
    ///
    /// Returns the error from creating the file.
    pub fn with_stream_file(self, path: &Path) -> std::io::Result<EventLog> {
        let file = std::fs::File::create(path)?;
        Ok(self.with_stream(Box::new(std::io::BufWriter::new(file))))
    }

    /// Retains the last `rounds` rounds in a flight recorder.
    pub fn with_flight(mut self, rounds: usize) -> EventLog {
        self.flight = Some(FlightRecorder::new(rounds));
        self
    }

    /// Auto-dumps the flight recorder to `path` whenever a trigger event
    /// ([`Event::is_trigger`]) arrives. Each trigger overwrites the dump,
    /// so the file always holds the history behind the *latest* trigger.
    /// Implies [`EventLog::with_flight`] (default 32 rounds) if no ring was
    /// configured.
    pub fn with_flight_path(mut self, path: PathBuf) -> EventLog {
        if self.flight.is_none() {
            self.flight = Some(FlightRecorder::new(32));
        }
        self.flight_path = Some(path);
        self
    }

    /// `true` if emitting records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.stream.is_some() || self.flight.is_some()
    }

    /// Events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.events
    }

    /// Flight-recorder dumps written so far.
    pub fn dumps_written(&self) -> u64 {
        self.dumps
    }

    /// I/O errors swallowed so far (telemetry never fails the run).
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// The flight recorder, if one is attached.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Records one event: streams it, retains it, and — if it is a trigger
    /// and a dump path is configured — writes the flight dump.
    pub fn emit(&mut self, round: u64, event: Event) {
        if !self.is_enabled() {
            return;
        }
        self.events += 1;
        if let Some(sink) = &mut self.stream {
            let line = event.to_line(round);
            if writeln!(sink, "{line}").is_err() {
                self.io_errors += 1;
            }
        }
        let trigger = event.is_trigger().then(|| event.kind());
        if let Some(flight) = &mut self.flight {
            flight.push(round, event);
            if let (Some(kind), Some(path)) = (trigger, &self.flight_path) {
                let dump = flight.render_dump(kind, round);
                if std::fs::write(path, dump).is_err() {
                    self.io_errors += 1;
                } else {
                    self.dumps += 1;
                }
            }
        }
    }

    /// Flushes the stream sink, if any.
    pub fn flush(&mut self) {
        if let Some(sink) = &mut self.stream {
            if sink.flush().is_err() {
                self.io_errors += 1;
            }
        }
    }
}

impl Drop for EventLog {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("stream", &self.stream.is_some())
            .field("flight", &self.flight)
            .field("flight_path", &self.flight_path)
            .field("events", &self.events)
            .field("dumps", &self.dumps)
            .field("io_errors", &self.io_errors)
            .finish()
    }
}

/// A `Write` sink backed by a shared string buffer, for capturing streams
/// in tests and for `cellflow` subcommands that render in-process.
#[derive(Clone, Default, Debug)]
pub struct SharedBuffer {
    inner: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// An empty buffer.
    pub fn new() -> SharedBuffer {
        SharedBuffer::default()
    }

    /// The buffered bytes as UTF-8 (lossy).
    pub fn contents(&self) -> String {
        let bytes = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut bytes = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        bytes.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Convenience check used by smoke tests: `true` if `line` is a
/// schema-`v1` `flight_header` line.
pub fn is_flight_header(line: &str) -> bool {
    matches!(
        Event::parse_line(line),
        Ok((_, Event::FlightHeader { .. }))
    ) && SCHEMA_VERSION == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_grid::CellId;

    fn consume(n: u64) -> Event {
        Event::Consume { entity: n }
    }

    #[test]
    fn ring_merges_same_round_and_evicts_oldest() {
        let mut fr = FlightRecorder::new(3);
        fr.push(0, consume(0));
        fr.push(0, consume(1));
        fr.push(1, consume(2));
        fr.push(2, consume(3));
        assert_eq!(fr.rounds_held(), 3);
        assert_eq!(fr.events_held(), 4);
        fr.push(3, consume(4)); // evicts round 0 (two events)
        assert_eq!(fr.rounds_held(), 3);
        assert_eq!(fr.events_held(), 3);
        let first = fr.rounds().next().unwrap();
        assert_eq!(first.0, 1);
    }

    #[test]
    fn dump_has_header_then_history() {
        let mut fr = FlightRecorder::new(8);
        fr.push(5, consume(0));
        fr.push(6, Event::Fail { cell: CellId::new(1, 1) });
        let dump = fr.render_dump("violation", 6);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(is_flight_header(lines[0]));
        let (round, header) = Event::parse_line(lines[0]).unwrap();
        assert_eq!(round, 6);
        assert_eq!(
            header,
            Event::FlightHeader {
                trigger: "violation".into(),
                rounds: 2
            }
        );
        assert!(crate::event::validate_stream(&dump).is_ok());
    }

    #[test]
    fn disabled_log_is_noop() {
        let mut log = EventLog::new();
        assert!(!log.is_enabled());
        log.emit(0, consume(0));
        assert_eq!(log.events_emitted(), 0);
        assert_eq!(log.dumps_written(), 0);
    }

    #[test]
    fn stream_writes_valid_jsonl() {
        let buffer = SharedBuffer::new();
        let mut log = EventLog::new().with_stream(Box::new(buffer.clone()));
        log.emit(0, consume(0));
        log.emit(
            1,
            Event::Transfer {
                entity: 0,
                from: CellId::new(0, 0),
                to: CellId::new(0, 1),
            },
        );
        log.flush();
        let stats = crate::event::validate_stream(&buffer.contents()).unwrap();
        assert_eq!(stats.events, 2);
        assert_eq!(log.events_emitted(), 2);
    }

    #[test]
    fn trigger_dumps_flight_to_disk() {
        let dir = std::env::temp_dir().join("cellflow-telemetry-test-dump");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut log = EventLog::new().with_flight(4).with_flight_path(path.clone());
        assert!(log.is_enabled());
        for round in 0..10 {
            log.emit(round, consume(round));
        }
        assert_eq!(log.dumps_written(), 0, "no trigger yet");
        assert!(!path.exists());

        log.emit(
            10,
            Event::Violation {
                monitor: "safety".into(),
                detail: "boom".into(),
            },
        );
        assert_eq!(log.dumps_written(), 1);
        let dump = std::fs::read_to_string(&path).unwrap();
        let stats = crate::event::validate_stream(&dump).unwrap();
        // Header + last 4 rounds (7, 8, 9, 10), one event each — round 10
        // holds only the violation.
        assert_eq!(stats.events, 5);
        assert_eq!(stats.violations, 1);
        assert!(is_flight_header(dump.lines().next().unwrap()));

        // A second trigger overwrites with the newer window.
        log.emit(11, Event::Timeout { detail: "t".into() });
        assert_eq!(log.dumps_written(), 2);
        let dump = std::fs::read_to_string(&path).unwrap();
        assert!(dump.contains("\"trigger\":\"timeout\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flight_path_implies_ring() {
        let log = EventLog::new()
            .with_flight_path(std::env::temp_dir().join("cellflow-telemetry-unused.jsonl"));
        assert_eq!(log.flight().unwrap().capacity(), 32);
    }
}
