//! Property-based stabilization tests: Lemma 6 and Corollary 7 on random
//! grids, failure patterns, and corrupted initial states.

use cellflow_grid::{CellId, GridDims};
use cellflow_routing::{Dist, RoutingTable, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn grid_case() -> impl Strategy<Value = (GridDims, CellId, Vec<CellId>, u64)> {
    (2u16..=8, 2u16..=8)
        .prop_flat_map(|(nx, ny)| {
            let dims = GridDims::new(nx, ny);
            (
                Just(dims),
                (0..nx, 0..ny).prop_map(|(i, j)| CellId::new(i, j)),
                proptest::collection::vec(
                    (0..nx, 0..ny).prop_map(|(i, j)| CellId::new(i, j)),
                    0..=(nx as usize * ny as usize) / 3,
                ),
                any::<u64>(),
            )
        })
        .prop_filter("target must stay alive", |(_, t, failed, _)| {
            !failed.contains(t)
        })
}

fn scramble(table: &mut RoutingTable<GridDims>, seed: u64) {
    let dims = *table.topology();
    let target = table.target();
    let mut rng = StdRng::seed_from_u64(seed);
    for c in dims.iter() {
        // Failed cells pin dist = ∞ (the fail transition wrote it and Route
        // skips them); corrupting them would leave the model's state space.
        if c == target || table.is_failed(c) {
            continue;
        }
        let dist = if rng.gen_bool(0.3) {
            Dist::Infinity
        } else {
            Dist::Finite(rng.gen_range(0..50))
        };
        let nbrs: Vec<_> = Topology::neighbors(&dims, c);
        let next = if rng.gen_bool(0.5) {
            Some(nbrs[rng.gen_range(0..nbrs.len())])
        } else {
            None
        };
        table.set_entry(c, dist, next);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Corollary 7: within O(N²) rounds of the last failure, routing reaches a
    /// fixpoint that matches BFS ground truth.
    #[test]
    fn corollary7_fixpoint_within_n_squared((dims, target, failed, seed) in grid_case()) {
        let mut t = RoutingTable::new(dims, target);
        for f in &failed {
            t.fail(*f);
        }
        scramble(&mut t, seed);
        let bound = 2 * dims.cell_count() as u32 + 2;
        let rounds = t.run_to_fixpoint(bound);
        prop_assert!(rounds.is_some(), "no fixpoint within {bound} rounds");
        prop_assert!(t.is_stabilized());
        let expected = t.expected();
        for c in dims.iter() {
            prop_assert_eq!(t.dist(c), expected[&c], "cell {}", c);
        }
    }

    /// Lemma 6: a cell at live path distance h holds the exact distance value
    /// at every round ≥ h, regardless of the initial (corrupted) state.
    #[test]
    fn lemma6_per_cell_h_round_bound((dims, target, failed, seed) in grid_case()) {
        let mut t = RoutingTable::new(dims, target);
        for f in &failed {
            t.fail(*f);
        }
        scramble(&mut t, seed);
        let expected = t.expected();
        let max_h = expected
            .values()
            .filter_map(|d| d.finite())
            .max()
            .unwrap_or(0);
        for round in 1..=max_h + 1 {
            t.step();
            for c in dims.iter() {
                if let Some(h) = expected[&c].finite() {
                    if round >= h {
                        prop_assert_eq!(
                            t.dist(c),
                            expected[&c],
                            "cell {} with ρ={} at round {}", c, h, round
                        );
                    }
                }
            }
        }
    }

    /// next pointers always step strictly downhill once stabilized, so routes
    /// are loop-free and reach the target in exactly dist hops.
    #[test]
    fn routes_are_loop_free((dims, target, failed, seed) in grid_case()) {
        let mut t = RoutingTable::new(dims, target);
        for f in &failed {
            t.fail(*f);
        }
        scramble(&mut t, seed);
        t.run_to_fixpoint(2 * dims.cell_count() as u32 + 2).unwrap();
        for c in dims.iter() {
            if let Some(h) = t.dist(c).finite() {
                // Follow next pointers; must hit the target in exactly h hops.
                let mut cur = c;
                for step in 0..h {
                    let nxt = t.next(cur)
                        .unwrap_or_else(|| panic!("{cur} lacks next at hop {step}"));
                    prop_assert_eq!(
                        t.dist(nxt).finite().unwrap() + 1,
                        t.dist(cur).finite().unwrap()
                    );
                    cur = nxt;
                }
                prop_assert_eq!(cur, target);
            }
        }
    }

    /// Failing and recovering arbitrary cells always re-stabilizes.
    #[test]
    fn churn_then_stabilize((dims, target, failed, seed) in grid_case()) {
        let mut t = RoutingTable::new(dims, target);
        let mut rng = StdRng::seed_from_u64(seed);
        // Churn: interleave failures, recoveries, and steps.
        for f in &failed {
            t.fail(*f);
            if rng.gen_bool(0.5) {
                t.step();
            }
            if rng.gen_bool(0.3) {
                t.recover(*f);
            }
        }
        let bound = 2 * dims.cell_count() as u32 + 2;
        prop_assert!(t.run_to_fixpoint(bound).is_some());
        prop_assert!(t.is_stabilized());
    }
}
