//! The routing substrate is generic over [`Topology`] — verified here by
//! implementing one from scratch (a ring) the way a downstream user would,
//! and checking the stabilization story holds on it.

use cellflow_routing::{Dist, RoutingTable, Topology};

/// A ring of `n` nodes: `k` neighbors `(k±1) mod n`.
struct Ring {
    n: u32,
}

impl Topology for Ring {
    type Node = u32;

    fn nodes(&self) -> Vec<u32> {
        (0..self.n).collect()
    }

    fn neighbors(&self, node: u32) -> Vec<u32> {
        if self.n == 1 {
            return Vec::new();
        }
        if self.n == 2 {
            return vec![1 - node];
        }
        vec![(node + self.n - 1) % self.n, (node + 1) % self.n]
    }

    fn node_count(&self) -> usize {
        self.n as usize
    }
}

#[test]
fn ring_distances_wrap_both_ways() {
    let mut t = RoutingTable::new(Ring { n: 8 }, 0);
    let rounds = t.run_to_fixpoint(64).expect("rings stabilize");
    assert!(rounds <= 8, "took {rounds}");
    // Distance is min(k, n−k) around the ring.
    for k in 0..8u32 {
        assert_eq!(t.dist(k), Dist::Finite(k.min(8 - k)), "node {k}");
    }
    // Antipodal node 4 ties between neighbors 3 and 5; id break picks 3.
    assert_eq!(t.next(4), Some(3));
    assert!(t.is_stabilized());
}

#[test]
fn cutting_the_ring_makes_it_a_line() {
    let mut t = RoutingTable::new(Ring { n: 8 }, 0);
    t.run_to_fixpoint(64).unwrap();
    // Cut between 3 and 4 by failing node 4: nodes 5..7 must reroute the
    // long way round (through 7 → 0).
    t.fail(4);
    t.run_to_fixpoint(64).unwrap();
    assert_eq!(t.dist(5), Dist::Finite(3)); // 5 → 6 → 7 → 0
    assert_eq!(t.dist(3), Dist::Finite(3)); // unchanged short way
    assert_eq!(t.next(5), Some(6));
    assert!(t.is_stabilized());
    // Recovery restores the short path.
    t.recover(4);
    t.run_to_fixpoint(64).unwrap();
    assert_eq!(t.dist(5), Dist::Finite(3).min(Dist::Finite(3)));
    assert_eq!(t.dist(4), Dist::Finite(4));
}

#[test]
fn degenerate_rings() {
    // A single node that is its own target.
    let mut solo = RoutingTable::new(Ring { n: 1 }, 0);
    assert_eq!(solo.run_to_fixpoint(4), Some(0));
    assert_eq!(solo.dist(0), Dist::Finite(0));
    // Two nodes.
    let mut pair = RoutingTable::new(Ring { n: 2 }, 0);
    pair.run_to_fixpoint(8).unwrap();
    assert_eq!(pair.dist(1), Dist::Finite(1));
    assert_eq!(pair.next(1), Some(0));
}
