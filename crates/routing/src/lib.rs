//! Self-stabilizing distance-vector routing with crash failures.
//!
//! This crate is the routing substrate of the `cellular-flows` workspace. The
//! paper's `Route` function (Figure 4) maintains, at every non-faulty cell, an
//! estimated hop distance to the target and a `next` pointer:
//!
//! ```text
//! dist_{i,j} := 1 + min over neighbors of dist_{m,n}        (∞ for failed cells)
//! next_{i,j} := argmin over neighbors of (dist_{m,n}, ⟨m,n⟩), or ⊥ if dist = ∞
//! ```
//!
//! Run synchronously each round, this rule is *self-stabilizing* (Lemma 6): `h`
//! rounds after failures cease, every cell whose shortest live path to the
//! target has length `h` holds exact values, so all target-connected cells
//! stabilize within `O(N²)` rounds (Corollary 7).
//!
//! The implementation is generic over a [`Topology`] so it is usable beyond the
//! paper's grid; [`cellflow_grid::GridDims`] implements [`Topology`] here. The
//! single-node update kernel [`route_update`] is exported so the protocol crate
//! applies *literally the same rule* inside its composed `update` transition.
//!
//! # Example
//!
//! ```
//! use cellflow_grid::{CellId, GridDims};
//! use cellflow_routing::{Dist, RoutingTable};
//!
//! let dims = GridDims::square(4);
//! let mut table = RoutingTable::new(dims, CellId::new(2, 2));
//! // From the all-∞ initial state, stabilize:
//! let rounds = table.run_to_fixpoint(64).expect("stabilizes");
//! assert!(rounds <= 16);
//! assert_eq!(table.dist(CellId::new(0, 0)), Dist::Finite(4));
//! assert_eq!(table.next(CellId::new(2, 0)), Some(CellId::new(2, 1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod table;
mod topology;

pub use dist::{route_update, Dist};
pub use table::RoutingTable;
pub use topology::{LineTopology, Topology};
