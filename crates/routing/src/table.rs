//! The synchronous distance-vector routing table.

use std::collections::HashMap;

use crate::{route_update, Dist, Topology};

/// Per-node routing state driven by the paper's `Route` rule.
///
/// The table holds, for every node, the triple `(dist, next, failed)` and
/// advances it one synchronous round at a time with [`RoutingTable::step`]:
/// all nodes read their neighbors' *previous-round* `dist` values and update
/// simultaneously, exactly like the message-passing implementation sketched in
/// the paper (broadcast at the beginning of the round, then compute).
///
/// The target's `dist` is pinned to `0` while the target is alive; `Route`
/// never recomputes it (Figure 4 guards on `⟨i,j⟩ ≠ tid`), and a recovery of
/// the target resets it to `0` (Section IV).
///
/// # Self-stabilization
///
/// From *any* assignment of distances (see [`RoutingTable::set_entry`] for
/// fault injection), a node whose live shortest path to the target has length
/// `h` holds the exact distance after `h` rounds — Lemma 6. Integration tests
/// in this crate verify the bound; `cellflow-core` reuses [`route_update`] so
/// the property transfers to the full protocol.
pub struct RoutingTable<T: Topology> {
    topology: T,
    target: T::Node,
    cap: u32,
    entries: HashMap<T::Node, Entry<T::Node>>,
}

/// One node's routing state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry<N> {
    dist: Dist,
    next: Option<N>,
    failed: bool,
}

impl<T: Topology> RoutingTable<T> {
    /// Creates a table over `topology` routing toward `target`, with all
    /// non-target distances `∞` (the paper's initial state) and the
    /// `∞`-saturation cap set to `node_count + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a node of `topology`.
    pub fn new(topology: T, target: T::Node) -> RoutingTable<T> {
        let cap = topology.node_count() as u32 + 1;
        Self::with_cap(topology, target, cap)
    }

    /// Like [`RoutingTable::new`] with an explicit saturation cap. The cap
    /// must exceed every realizable path length for routing to be exact.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a node of `topology` or `cap == 0`.
    pub fn with_cap(topology: T, target: T::Node, cap: u32) -> RoutingTable<T> {
        assert!(cap > 0, "cap must be positive");
        let nodes = topology.nodes();
        assert!(nodes.contains(&target), "target must be a topology node");
        let mut entries = HashMap::with_capacity(nodes.len());
        for n in nodes {
            entries.insert(
                n,
                Entry {
                    dist: if n == target {
                        Dist::Finite(0)
                    } else {
                        Dist::Infinity
                    },
                    next: None,
                    failed: false,
                },
            );
        }
        RoutingTable {
            topology,
            target,
            cap,
            entries,
        }
    }

    /// The routing target.
    pub fn target(&self) -> T::Node {
        self.target
    }

    /// The underlying topology.
    pub fn topology(&self) -> &T {
        &self.topology
    }

    /// Current distance estimate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the topology.
    pub fn dist(&self, node: T::Node) -> Dist {
        self.entry(node).dist
    }

    /// Current `next` pointer of `node` (`None` is the paper's `⊥`).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the topology.
    pub fn next(&self, node: T::Node) -> Option<T::Node> {
        self.entry(node).next
    }

    /// `true` if `node` is currently crashed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the topology.
    pub fn is_failed(&self, node: T::Node) -> bool {
        self.entry(node).failed
    }

    fn entry(&self, node: T::Node) -> &Entry<T::Node> {
        self.entries
            .get(&node)
            .unwrap_or_else(|| panic!("{node:?} is not a topology node"))
    }

    /// Crashes `node`: the paper's `fail` transition sets `failed := true`,
    /// `dist := ∞`, `next := ⊥`. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the topology.
    pub fn fail(&mut self, node: T::Node) {
        let e = self.entries.get_mut(&node).expect("topology node");
        e.failed = true;
        e.dist = Dist::Infinity;
        e.next = None;
    }

    /// Recovers `node`: clears `failed`; if `node` is the target, resets its
    /// distance to `0` (Section IV's recovery model). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the topology.
    pub fn recover(&mut self, node: T::Node) {
        let target = self.target;
        let e = self.entries.get_mut(&node).expect("topology node");
        e.failed = false;
        if node == target {
            e.dist = Dist::Finite(0);
        }
    }

    /// Overwrites one node's `(dist, next)` — fault injection for
    /// self-stabilization experiments (corrupted state the rule must recover
    /// from). Does not touch the failed flag.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the topology.
    pub fn set_entry(&mut self, node: T::Node, dist: Dist, next: Option<T::Node>) {
        let e = self.entries.get_mut(&node).expect("topology node");
        e.dist = dist;
        e.next = next;
    }

    /// Advances one synchronous round of the `Route` rule for all non-faulty
    /// nodes. Returns `true` if any `(dist, next)` changed.
    pub fn step(&mut self) -> bool {
        let snapshot: HashMap<T::Node, Dist> =
            self.entries.iter().map(|(&n, e)| (n, e.dist)).collect();
        let mut changed = false;
        let nodes = self.topology.nodes();
        for n in nodes {
            let failed = self.entries[&n].failed;
            if failed || n == self.target {
                continue;
            }
            let (dist, next) = route_update(
                self.topology
                    .neighbors(n)
                    .into_iter()
                    .map(|m| (m, snapshot[&m])),
                self.cap,
            );
            let e = self.entries.get_mut(&n).expect("topology node");
            if e.dist != dist || e.next != next {
                changed = true;
            }
            e.dist = dist;
            e.next = next;
        }
        changed
    }

    /// Steps until a fixpoint, returning the number of rounds taken, or `None`
    /// if no fixpoint was reached within `max_rounds`.
    pub fn run_to_fixpoint(&mut self, max_rounds: u32) -> Option<u32> {
        #[allow(clippy::manual_find)] // side-effectful step(); a loop reads clearer
        for k in 0..=max_rounds {
            if !self.step() {
                return Some(k);
            }
        }
        None
    }

    /// Ground-truth path distances `ρ` by BFS through non-failed nodes — what
    /// the table must converge to.
    pub fn expected(&self) -> HashMap<T::Node, Dist> {
        let mut out: HashMap<T::Node, Dist> = self
            .topology
            .nodes()
            .into_iter()
            .map(|n| (n, Dist::Infinity))
            .collect();
        if !self.entries[&self.target].failed {
            out.insert(self.target, Dist::Finite(0));
            let mut queue = std::collections::VecDeque::from([self.target]);
            while let Some(cur) = queue.pop_front() {
                let d = out[&cur].finite().expect("queued nodes are finite") + 1;
                for m in self.topology.neighbors(cur) {
                    if out[&m] == Dist::Infinity && !self.entries[&m].failed {
                        out.insert(m, Dist::Finite(d));
                        queue.push_back(m);
                    }
                }
            }
        }
        out
    }

    /// `true` if every node's `dist` equals the BFS ground truth and every
    /// finite-distance node's `next` points at its `(dist, id)`-minimal
    /// neighbor — the stable set `S` of Lemma 6, for the whole graph.
    pub fn is_stabilized(&self) -> bool {
        let expected = self.expected();
        self.topology.nodes().into_iter().all(|n| {
            let e = &self.entries[&n];
            if e.failed || n == self.target {
                return e.dist == expected[&n];
            }
            if e.dist != expected[&n] {
                return false;
            }
            let (_, want_next) = route_update(
                self.topology
                    .neighbors(n)
                    .into_iter()
                    .map(|m| (m, expected[&m])),
                self.cap,
            );
            e.next == want_next
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LineTopology;
    use cellflow_grid::{CellId, GridDims};

    #[test]
    fn line_stabilizes_in_diameter_rounds() {
        let mut t = RoutingTable::new(LineTopology { n: 6 }, 0);
        let rounds = t.run_to_fixpoint(100).unwrap();
        assert!(rounds <= 6, "took {rounds}");
        for k in 0..6u32 {
            assert_eq!(t.dist(k), Dist::Finite(k));
        }
        assert_eq!(t.next(3), Some(2));
        assert_eq!(t.next(0), None); // the target has no next
        assert!(t.is_stabilized());
    }

    #[test]
    fn grid_matches_bfs_after_convergence() {
        let dims = GridDims::square(5);
        let target = CellId::new(2, 2);
        let mut t = RoutingTable::new(dims, target);
        t.run_to_fixpoint(200).unwrap();
        let exp = t.expected();
        for c in dims.iter() {
            assert_eq!(t.dist(c), exp[&c], "cell {c}");
        }
        assert!(t.is_stabilized());
        // next always decreases distance by one.
        for c in dims.iter() {
            if c != target {
                let n = t.next(c).unwrap();
                assert_eq!(t.dist(n).finite().unwrap() + 1, t.dist(c).finite().unwrap());
            }
        }
    }

    #[test]
    fn failure_reroutes_and_recovery_restores() {
        let dims = GridDims::square(3);
        let target = CellId::new(0, 0);
        let mut t = RoutingTable::new(dims, target);
        t.run_to_fixpoint(100).unwrap();
        assert_eq!(t.dist(CellId::new(2, 0)), Dist::Finite(2));

        // Fail the two inner neighbors of the target's row/column corner.
        t.fail(CellId::new(1, 0));
        assert!(t.is_failed(CellId::new(1, 0)));
        assert_eq!(t.dist(CellId::new(1, 0)), Dist::Infinity);
        t.run_to_fixpoint(100).unwrap();
        // ⟨2,0⟩ must now go up and around: ρ = 4.
        assert_eq!(t.dist(CellId::new(2, 0)), Dist::Finite(4));
        assert!(t.is_stabilized());

        t.recover(CellId::new(1, 0));
        t.run_to_fixpoint(100).unwrap();
        assert_eq!(t.dist(CellId::new(2, 0)), Dist::Finite(2));
        assert!(t.is_stabilized());
    }

    #[test]
    fn disconnection_saturates_to_infinity() {
        let mut t = RoutingTable::new(LineTopology { n: 5 }, 0);
        t.run_to_fixpoint(100).unwrap();
        // Cut node 2: nodes 3 and 4 are isolated from the target.
        t.fail(2);
        let rounds = t.run_to_fixpoint(100).unwrap();
        assert_eq!(t.dist(3), Dist::Infinity);
        assert_eq!(t.dist(4), Dist::Infinity);
        assert_eq!(t.next(3), None);
        // Count-to-infinity is bounded by the cap.
        assert!(rounds <= 10, "saturation took {rounds} rounds");
        assert!(t.is_stabilized());
    }

    #[test]
    fn failed_target_takes_everything_down() {
        let mut t = RoutingTable::new(LineTopology { n: 4 }, 0);
        t.run_to_fixpoint(100).unwrap();
        t.fail(0);
        t.run_to_fixpoint(100).unwrap();
        for k in 0..4 {
            assert_eq!(t.dist(k), Dist::Infinity, "node {k}");
        }
        // Recovery of the target restores dist 0 and reconvergence.
        t.recover(0);
        assert_eq!(t.dist(0), Dist::Finite(0));
        t.run_to_fixpoint(100).unwrap();
        assert_eq!(t.dist(3), Dist::Finite(3));
    }

    #[test]
    fn lemma6_h_round_bound_from_corrupted_state() {
        // Scramble all non-target entries, then check: a node at path distance
        // h holds the exact value at every round ≥ h.
        let dims = GridDims::square(4);
        let target = CellId::new(0, 0);
        let mut t = RoutingTable::new(dims, target);
        // Adversarial corruption: everything claims distance 0 or a lie.
        for (k, c) in dims.iter().enumerate() {
            if c != target {
                let lie = if k % 2 == 0 {
                    Dist::Finite(0)
                } else {
                    Dist::Finite(17)
                };
                t.set_entry(c, lie, Some(target));
            }
        }
        let expected = t.expected();
        let max_h = 6u32; // eccentricity of ⟨0,0⟩ in a 4×4 grid
        for round in 1u32..=max_h + 2 {
            t.step();
            for c in dims.iter() {
                let h = expected[&c].finite().unwrap();
                if round >= h {
                    assert_eq!(
                        t.dist(c),
                        expected[&c],
                        "cell {c} with ρ={h} wrong at round {round}"
                    );
                }
            }
        }
        assert!(t.is_stabilized());
    }

    #[test]
    fn tie_breaking_is_by_identifier() {
        // In a 3×3 grid with target at the center, corner ⟨2,2⟩ has two
        // neighbors at distance 1: ⟨1,2⟩ and ⟨2,1⟩. Lexicographic order picks ⟨1,2⟩.
        let dims = GridDims::square(3);
        let mut t = RoutingTable::new(dims, CellId::new(1, 1));
        t.run_to_fixpoint(100).unwrap();
        assert_eq!(t.next(CellId::new(2, 2)), Some(CellId::new(1, 2)));
        assert_eq!(t.next(CellId::new(0, 0)), Some(CellId::new(0, 1)));
    }

    #[test]
    #[should_panic(expected = "not a topology node")]
    fn unknown_node_panics() {
        let t = RoutingTable::new(LineTopology { n: 3 }, 0);
        let _ = t.dist(7);
    }

    #[test]
    #[should_panic(expected = "target must be a topology node")]
    fn bad_target_panics() {
        let _ = RoutingTable::new(LineTopology { n: 3 }, 9);
    }
}
