//! The distance domain `ℕ∞` and the single-node routing kernel.

use core::fmt;

/// A hop-distance estimate in `ℕ∞ = ℕ ∪ {∞}` (the paper's `dist` domain).
///
/// `Infinity` is what failed cells report (their neighbors treat a missing
/// response as `∞`, footnote 1 in the paper) and what disconnected cells
/// converge to. Ordered with `Infinity` greatest.
///
/// ```
/// use cellflow_routing::Dist;
///
/// assert!(Dist::Finite(7) < Dist::Infinity);
/// assert_eq!(Dist::Finite(7).succ(100), Dist::Finite(8));
/// // Saturation at the cap models ∞ with a finite state space:
/// assert_eq!(Dist::Finite(99).succ(100), Dist::Infinity);
/// assert_eq!(Dist::Infinity.succ(100), Dist::Infinity);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Dist {
    /// A finite hop count.
    Finite(u32),
    /// Unreachable / failed (`∞`).
    Infinity,
}

impl Dist {
    /// `self + 1`, saturating to [`Dist::Infinity`] at `cap`.
    ///
    /// The paper's `dist` lives in unbounded `ℕ∞`; in a region disconnected
    /// from the target the rule `dist := 1 + min(nbrs)` counts up forever.
    /// Saturating at a cap strictly greater than any realizable path length
    /// (the callers use the cell count) leaves target-connected behavior
    /// untouched while making the state space finite — required by the model
    /// checker, and documented as a substitution in `DESIGN.md`.
    #[inline]
    pub fn succ(self, cap: u32) -> Dist {
        match self {
            Dist::Finite(d) if d + 1 < cap => Dist::Finite(d + 1),
            _ => Dist::Infinity,
        }
    }

    /// `true` if this is a finite distance.
    #[inline]
    pub const fn is_finite(self) -> bool {
        matches!(self, Dist::Finite(_))
    }

    /// The finite value, or `None` for `∞`.
    #[inline]
    pub const fn finite(self) -> Option<u32> {
        match self {
            Dist::Finite(d) => Some(d),
            Dist::Infinity => None,
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dist::Finite(d) => write!(f, "{d}"),
            Dist::Infinity => f.write_str("∞"),
        }
    }
}

impl From<u32> for Dist {
    #[inline]
    fn from(d: u32) -> Dist {
        Dist::Finite(d)
    }
}

/// The paper's `Route` body for a single node (Figure 4, lines 2–5): given the
/// `(id, dist)` pairs of all neighbors, returns the node's new `dist` and
/// `next`.
///
/// * `dist := 1 + min(neighbor dists)`, saturating at `cap` (see [`Dist::succ`]);
/// * `next := ⊥` if `dist = ∞`, else the neighbor minimizing `(dist, id)` —
///   the identifier breaks ties, exactly as the paper's
///   `argmin (dist_{m,n}, ⟨m,n⟩)`.
///
/// ```
/// use cellflow_routing::{route_update, Dist};
///
/// let nbrs = [(1u32, Dist::Finite(3)), (2, Dist::Finite(2)), (3, Dist::Finite(2))];
/// let (d, next) = route_update(nbrs, 100);
/// assert_eq!(d, Dist::Finite(3));
/// assert_eq!(next, Some(2)); // tie on dist=2 broken by smaller id
///
/// let (d, next) = route_update([(9u32, Dist::Infinity)], 100);
/// assert_eq!((d, next), (Dist::Infinity, None));
/// ```
pub fn route_update<N, I>(neighbors: I, cap: u32) -> (Dist, Option<N>)
where
    N: Copy + Ord,
    I: IntoIterator<Item = (N, Dist)>,
{
    let mut best: Option<(Dist, N)> = None;
    for (id, d) in neighbors {
        let candidate = (d, id);
        best = Some(match best {
            None => candidate,
            Some(cur) if candidate < cur => candidate,
            Some(cur) => cur,
        });
    }
    match best {
        None => (Dist::Infinity, None),
        Some((d, id)) => {
            let new_dist = d.succ(cap);
            if new_dist.is_finite() {
                (new_dist, Some(id))
            } else {
                (new_dist, None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_display() {
        assert!(Dist::Finite(0) < Dist::Finite(1));
        assert!(Dist::Finite(u32::MAX) < Dist::Infinity);
        assert_eq!(Dist::Finite(4).to_string(), "4");
        assert_eq!(Dist::Infinity.to_string(), "∞");
        assert_eq!(Dist::from(3), Dist::Finite(3));
    }

    #[test]
    fn succ_saturates() {
        assert_eq!(Dist::Finite(0).succ(10), Dist::Finite(1));
        assert_eq!(Dist::Finite(8).succ(10), Dist::Finite(9));
        assert_eq!(Dist::Finite(9).succ(10), Dist::Infinity);
        assert_eq!(Dist::Infinity.succ(10), Dist::Infinity);
        assert_eq!(Dist::Finite(5).finite(), Some(5));
        assert_eq!(Dist::Infinity.finite(), None);
    }

    #[test]
    fn kernel_picks_min_dist_then_min_id() {
        let (d, n) = route_update(
            [
                (5u32, Dist::Finite(7)),
                (1, Dist::Finite(7)),
                (3, Dist::Finite(8)),
            ],
            1_000,
        );
        assert_eq!(d, Dist::Finite(8));
        assert_eq!(n, Some(1));
    }

    #[test]
    fn kernel_with_no_neighbors_is_isolated() {
        let (d, n) = route_update(core::iter::empty::<(u32, Dist)>(), 10);
        assert_eq!((d, n), (Dist::Infinity, None));
    }

    #[test]
    fn kernel_all_infinite_gives_bottom_next() {
        let (d, n) = route_update([(1u32, Dist::Infinity), (2, Dist::Infinity)], 10);
        assert_eq!(d, Dist::Infinity);
        assert_eq!(n, None);
    }

    #[test]
    fn kernel_saturation_drops_next() {
        // A neighbor at cap−1: successor saturates to ∞, so next must be ⊥
        // (Figure 4 line 3: if dist = ∞ then next := ⊥).
        let (d, n) = route_update([(1u32, Dist::Finite(9))], 10);
        assert_eq!(d, Dist::Infinity);
        assert_eq!(n, None);
    }
}
