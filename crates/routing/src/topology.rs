//! The topology abstraction routing runs over.

use cellflow_grid::{CellId, GridDims};

/// A finite graph the distance-vector rule can route over.
///
/// The paper's system is an `N × N` grid, but nothing in `Route` depends on
/// grid structure — only on a neighbor relation. Implementations must be
/// undirected (if `b ∈ neighbors(a)` then `a ∈ neighbors(b)`) for the
/// stabilization bounds to hold.
pub trait Topology {
    /// Node identifier. `Ord` is required because the routing rule breaks
    /// distance ties by identifier.
    type Node: Copy + Ord + core::hash::Hash + core::fmt::Debug;

    /// All nodes, in a deterministic order.
    fn nodes(&self) -> Vec<Self::Node>;

    /// The neighbors of `node`, in a deterministic order.
    fn neighbors(&self, node: Self::Node) -> Vec<Self::Node>;

    /// Number of nodes (used as the default `∞`-saturation cap).
    fn node_count(&self) -> usize {
        self.nodes().len()
    }
}

impl Topology for GridDims {
    type Node = CellId;

    fn nodes(&self) -> Vec<CellId> {
        self.iter().collect()
    }

    fn neighbors(&self, node: CellId) -> Vec<CellId> {
        GridDims::neighbors(*self, node).collect()
    }

    fn node_count(&self) -> usize {
        self.cell_count()
    }
}

/// A line graph `0 — 1 — … — n−1`, useful in tests and as a second topology
/// exercising the generic rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineTopology {
    /// Number of nodes on the line.
    pub n: u32,
}

impl Topology for LineTopology {
    type Node = u32;

    fn nodes(&self) -> Vec<u32> {
        (0..self.n).collect()
    }

    fn neighbors(&self, node: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(2);
        if node > 0 {
            out.push(node - 1);
        }
        if node + 1 < self.n {
            out.push(node + 1);
        }
        out
    }

    fn node_count(&self) -> usize {
        self.n as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_topology_matches_dims() {
        let d = GridDims::square(3);
        assert_eq!(d.node_count(), 9);
        assert_eq!(Topology::nodes(&d).len(), 9);
        let nbrs = Topology::neighbors(&d, CellId::new(1, 1));
        assert_eq!(nbrs.len(), 4);
    }

    #[test]
    fn line_topology_endpoints() {
        let line = LineTopology { n: 4 };
        assert_eq!(line.neighbors(0), vec![1]);
        assert_eq!(line.neighbors(3), vec![2]);
        assert_eq!(line.neighbors(1), vec![0, 2]);
        assert_eq!(line.node_count(), 4);
    }

    #[test]
    fn topologies_are_undirected() {
        let d = GridDims::new(4, 3);
        for a in Topology::nodes(&d) {
            for b in Topology::neighbors(&d, a) {
                assert!(Topology::neighbors(&d, b).contains(&a));
            }
        }
        let line = LineTopology { n: 6 };
        for a in line.nodes() {
            for b in line.neighbors(a) {
                assert!(line.neighbors(b).contains(&a));
            }
        }
    }
}
