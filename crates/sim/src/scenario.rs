//! Scenario builders for every experiment in the paper's evaluation
//! (Section IV), plus the ablations listed in `DESIGN.md`.
//!
//! | experiment | builder | sweep axes |
//! |---|---|---|
//! | Figure 7 | [`fig7_point`] | `rs` ∈ [`fig7_rs_values`], `v` ∈ [`fig7_v_values`] |
//! | Figure 8 | [`fig8_point`] | turns 0–6, `(l, v)` ∈ [`fig8_series`] |
//! | Figure 9 | [`fig9_point`] | `pf` ∈ [`fig9_pf_values`], `pr` ∈ [`fig9_pr_values`] |
//! | Figure 1 demo | [`fig1_demo`] | — |

use cellflow_core::{Params, System, SystemConfig};
use cellflow_geom::Dir;
use cellflow_grid::{CellId, GridDims, Path};

use crate::failure::{RandomFailRecover, Schedule};
use crate::Simulation;

/// The stochastic environment of a scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FailureSpec {
    /// No failures (Figures 7, 8).
    None,
    /// Per-round random fail/recover (Figure 9).
    Random {
        /// Failure probability per cell per round.
        pf: f64,
        /// Recovery probability per cell per round.
        pr: f64,
    },
}

/// A fully specified experiment point: configuration, carved cells, failures.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Human-readable name (used in tables).
    pub label: String,
    /// The system configuration.
    pub config: SystemConfig,
    /// Cells crashed at round 0 to pin the flow to a corridor.
    pub carve: Vec<CellId>,
    /// The stochastic failure environment.
    pub failure: FailureSpec,
}

/// The result of running an [`ExperimentSpec`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Outcome {
    /// K-round throughput (consumed / K) — the paper's headline metric.
    pub throughput: f64,
    /// Entities consumed in total.
    pub consumed: u64,
    /// Rounds executed (the K).
    pub rounds: u64,
    /// Mean blocked signals per round (congestion indicator).
    pub mean_blocked: f64,
}

/// Runs a spec for `k` rounds with deterministic seeding and returns the
/// measured outcome. Safety checks stay on in debug builds and are disabled
/// in release sweeps for speed (the property is separately verified by the
/// test suites and the model checker).
pub fn run_spec(spec: &ExperimentSpec, k: u64, seed: u64) -> Outcome {
    let mut sim = Simulation::new(spec.config.clone(), seed);
    sim = match spec.failure {
        FailureSpec::None => {
            sim.with_failure_model(Schedule::new().carve(spec.carve.iter().copied()))
        }
        FailureSpec::Random { pf, pr } => {
            debug_assert!(
                spec.carve.is_empty(),
                "carving plus random churn is unsupported"
            );
            sim.with_failure_model(RandomFailRecover::new(pf, pr, seed))
        }
    };
    sim.run(k);
    Outcome {
        throughput: sim.metrics().throughput(),
        consumed: sim.metrics().consumed_total(),
        rounds: sim.metrics().rounds(),
        mean_blocked: sim.metrics().mean_blocked(),
    }
}

/// The 8×8 grid shared by all Section IV experiments: source `⟨1,0⟩`,
/// target `⟨1,7⟩`, entities flowing up the length-8 column path β.
fn section4_grid(params: Params) -> SystemConfig {
    SystemConfig::new(GridDims::square(8), CellId::new(1, 7), params)
        .expect("static target is in bounds")
        .with_source(CellId::new(1, 0))
}

/// One Figure 7 point: throughput vs `rs` for a given velocity, at `l = 0.25`
/// on the 8×8 grid with the straight length-8 path (`K = 2500` in the paper).
///
/// Arguments are in milli-cells: `fig7_point(50, 200)` is `rs = 0.05,
/// v = 0.2`.
///
/// # Panics
///
/// Panics if the resulting parameters are invalid (e.g. `rs ≥ 0.75`).
pub fn fig7_point(rs_milli: i64, v_milli: i64) -> ExperimentSpec {
    let params = Params::from_milli(250, rs_milli, v_milli)
        .expect("figure 7 parameter combination must be valid");
    ExperimentSpec {
        label: format!("fig7 rs={} v={}", params.rs(), params.v()),
        config: section4_grid(params),
        carve: Vec::new(),
        failure: FailureSpec::None,
    }
}

/// The `rs` sweep of Figure 7 (milli-cells): 0.05 … 0.70 in steps of 0.05.
/// (The paper plots to `rs ≈ 0.75`; with `l = 0.25` the validity constraint
/// `rs + l < 1` caps the sweep at 0.70.)
pub fn fig7_rs_values() -> Vec<i64> {
    (1..=14).map(|k| k * 50).collect()
}

/// The velocity series of Figure 7 (milli-cells): 0.05, 0.1, 0.2, 0.25.
pub fn fig7_v_values() -> [i64; 4] {
    [50, 100, 200, 250]
}

/// One Figure 8 point: throughput vs number of turns along a length-8 path,
/// at `rs = 0.05`, for a given `(l, v)` series. The path is pinned by carving
/// (failing every off-path cell), with the path's last cell as target.
///
/// Returns `None` if no length-8 staircase with that many turns fits the 8×8
/// grid (turns > 6).
pub fn fig8_point(turns: usize, l_milli: i64, v_milli: i64) -> Option<ExperimentSpec> {
    let dims = GridDims::square(8);
    let path = Path::with_turns(dims, CellId::new(0, 0), 8, turns)?;
    let params = Params::from_milli(l_milli, 50, v_milli).ok()?;
    let config = SystemConfig::new(dims, *path.target(), params)
        .expect("path target is in bounds")
        .with_source(*path.source());
    Some(ExperimentSpec {
        label: format!("fig8 turns={turns} l={} v={}", params.l(), params.v()),
        config,
        carve: path.carve_failures(dims),
        failure: FailureSpec::None,
    })
}

/// The `(l, v)` series of Figure 8 (milli-cells), in the paper's legend order:
/// `(0.2, 0.2), (0.2, 0.1), (0.1, 0.1), (0.1, 0.05)`.
pub fn fig8_series() -> [(i64, i64); 4] {
    [(200, 200), (200, 100), (100, 100), (100, 50)]
}

/// One Figure 9 point: throughput under random fail/recovery with rates
/// `(pf, pr)`, at `rs = 0.05, l = 0.2, v = 0.2` on the 8×8 grid with the
/// initial length-8 path (`K = 20000` in the paper).
pub fn fig9_point(pf: f64, pr: f64) -> ExperimentSpec {
    let params = Params::from_milli(200, 50, 200).expect("figure 9 parameters are valid");
    ExperimentSpec {
        label: format!("fig9 pf={pf} pr={pr}"),
        config: section4_grid(params),
        carve: Vec::new(),
        failure: FailureSpec::Random { pf, pr },
    }
}

/// The failure-rate sweep of Figure 9: 0.01 … 0.05 in steps of 0.005.
pub fn fig9_pf_values() -> Vec<f64> {
    (2..=10).map(|k| k as f64 * 0.005).collect()
}

/// The recovery-rate series of Figure 9: 0.05, 0.10, 0.15, 0.20.
pub fn fig9_pr_values() -> [f64; 4] {
    [0.05, 0.10, 0.15, 0.20]
}

/// The schematic system of the paper's Figure 1: a 4×4 grid with target
/// `⟨2,2⟩`, source `⟨1,0⟩`, and `⟨2,1⟩` failed, with a couple of entities in
/// flight. Returns the system mid-execution (routing stabilized).
pub fn fig1_demo() -> System {
    let params = Params::from_milli(200, 50, 100).expect("demo parameters are valid");
    let config = SystemConfig::new(GridDims::square(4), CellId::new(2, 2), params)
        .expect("target in bounds")
        .with_source(CellId::new(1, 0));
    let mut sys = System::new(config);
    sys.fail(CellId::new(2, 1));
    sys.run(12);
    sys
}

/// The congestion experiment (this repository's addition, motivated by §I's
/// "abrupt phase-transitions from fast to sluggish flow"): `n_sources`
/// injectors on the west edge all feed one sink at the middle of the east
/// edge. Sweeping the offered load probes whether throughput collapses under
/// congestion (uncontrolled traffic) or saturates gracefully (the protocol).
///
/// # Panics
///
/// Panics unless `1 ≤ n_sources ≤ 8`.
pub fn congestion_point(n_sources: u16) -> ExperimentSpec {
    assert!((1..=8).contains(&n_sources), "n_sources must be 1..=8");
    let params = Params::from_milli(200, 50, 200).expect("valid parameters");
    let mut config = SystemConfig::new(GridDims::square(8), CellId::new(7, 3), params)
        .expect("target in bounds");
    // Spread sources over the west edge, middle rows first.
    let rows: [u16; 8] = [3, 4, 2, 5, 1, 6, 0, 7];
    for &j in rows.iter().take(n_sources as usize) {
        config = config.with_source(CellId::new(0, j));
    }
    ExperimentSpec {
        label: format!("congestion sources={n_sources}"),
        config,
        carve: Vec::new(),
        failure: FailureSpec::None,
    }
}

/// Straight-path specs of increasing length for the "throughput is
/// independent of path length" observation in §IV. Lengths that don't fit the
/// 8×8 grid are skipped.
pub fn path_length_series(v_milli: i64) -> Vec<(usize, ExperimentSpec)> {
    let dims = GridDims::square(8);
    let params = Params::from_milli(250, 50, v_milli).expect("valid params");
    (2..=8usize)
        .filter_map(|len| {
            let path = Path::straight(CellId::new(1, 0), Dir::North, len).ok()?;
            if !path.fits(dims) {
                return None;
            }
            let config = SystemConfig::new(dims, *path.target(), params)
                .expect("in bounds")
                .with_source(*path.source());
            Some((
                len,
                ExperimentSpec {
                    label: format!("path length {len}"),
                    config,
                    carve: path.carve_failures(dims),
                    failure: FailureSpec::None,
                },
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_points_are_valid_and_runnable() {
        for &v in &fig7_v_values() {
            let spec = fig7_point(50, v);
            let out = run_spec(&spec, 200, 1);
            assert_eq!(out.rounds, 200);
            assert!(out.throughput > 0.0, "v={v} produced nothing");
        }
        assert_eq!(fig7_rs_values().len(), 14);
        assert_eq!(*fig7_rs_values().last().unwrap(), 700);
    }

    #[test]
    fn fig8_points_cover_all_turn_counts() {
        for turns in 0..=6 {
            let spec = fig8_point(turns, 200, 200).unwrap();
            assert_eq!(spec.carve.len(), 64 - 8);
            let out = run_spec(&spec, 300, 1);
            assert!(out.throughput > 0.0, "turns={turns} produced nothing");
        }
        assert!(fig8_point(7, 200, 200).is_none());
    }

    #[test]
    fn fig9_point_runs_with_churn() {
        let spec = fig9_point(0.02, 0.1);
        let out = run_spec(&spec, 500, 3);
        assert_eq!(out.rounds, 500);
        // Throughput may be small but the system must survive.
    }

    #[test]
    fn fig9_sweeps_match_paper_ranges() {
        let pf = fig9_pf_values();
        assert!((pf[0] - 0.01).abs() < 1e-12);
        assert!((pf.last().unwrap() - 0.05).abs() < 1e-12);
        assert_eq!(fig9_pr_values().len(), 4);
    }

    #[test]
    fn fig1_demo_matches_schematic() {
        let sys = fig1_demo();
        assert!(sys.cell(CellId::new(2, 1)).failed);
        assert_eq!(sys.config().target(), CellId::new(2, 2));
        assert!(sys.config().sources().contains(&CellId::new(1, 0)));
        // Routing has stabilized around the failure.
        assert!(cellflow_core::analysis::routing_stabilized(
            sys.config(),
            sys.state()
        ));
    }

    #[test]
    fn deterministic_outcomes_per_seed() {
        let spec = fig9_point(0.03, 0.1);
        let a = run_spec(&spec, 300, 42);
        let b = run_spec(&spec, 300, 42);
        let c = run_spec(&spec, 300, 43);
        assert_eq!(a, b);
        // Different seed should (almost surely) differ somewhere.
        assert!(a != c || a.consumed == c.consumed);
    }

    #[test]
    fn congestion_points_build_and_run() {
        for n in [1u16, 4, 8] {
            let spec = congestion_point(n);
            assert_eq!(spec.config.sources().len(), n as usize);
            let out = run_spec(&spec, 200, 1);
            assert!(out.throughput > 0.0, "{n} sources produced nothing");
        }
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn congestion_rejects_zero_sources() {
        let _ = congestion_point(0);
    }

    #[test]
    fn path_length_series_builds() {
        let series = path_length_series(200);
        assert!(series.len() >= 6);
        for (len, spec) in &series {
            let out = run_spec(spec, 300, 1);
            assert!(out.throughput > 0.0, "length {len} produced nothing");
        }
    }
}
