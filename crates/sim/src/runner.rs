//! The simulation driver.

use cellflow_core::monitor::{Monitor, MonitorCtx, MonitorViolation};
use cellflow_core::{safety, PartitionSchedule, RoundEvents, System, SystemConfig, TokenPolicy};

use crate::failure::{FailureModel, NoFailures};
use crate::{Metrics, SimTelemetry, TraceRecorder};

/// A [`System`] under a [`FailureModel`], with metrics and optional tracing.
///
/// Each [`Simulation::step`] applies the failure model for the round, then one
/// `update` transition, then records metrics/trace. With `check_safety`
/// enabled (default in debug builds), every round asserts the paper's `Safe`
/// predicate and Invariants 1–2 — so any safety regression aborts loudly
/// instead of producing silently wrong throughput numbers.
///
/// ```
/// use cellflow_core::{Params, SystemConfig};
/// use cellflow_grid::{CellId, GridDims};
/// use cellflow_sim::Simulation;
///
/// let config = SystemConfig::new(
///     GridDims::square(8),
///     CellId::new(1, 7),
///     Params::from_milli(250, 50, 200)?,
/// )?
/// .with_source(CellId::new(1, 0));
/// let mut sim = Simulation::new(config, 42);
/// sim.run(500);
/// assert!(sim.metrics().throughput() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Simulation {
    system: System,
    failure: Box<dyn FailureModel>,
    metrics: Metrics,
    trace: Option<TraceRecorder>,
    check_safety: bool,
    monitors: Vec<Box<dyn Monitor>>,
    violations: Vec<MonitorViolation>,
    telemetry: Option<SimTelemetry>,
    tracer: Option<cellflow_telemetry::Tracer>,
    partition: Option<PartitionSchedule>,
}

impl Simulation {
    /// Creates a failure-free simulation of `config`.
    ///
    /// `seed` parameterizes the randomized token policy if the config uses
    /// one; with the default deterministic policies it is absorbed into the
    /// `Randomized` salt only when you opt in via
    /// [`Simulation::with_randomized_tokens`].
    pub fn new(config: SystemConfig, seed: u64) -> Simulation {
        let _ = seed;
        Simulation {
            system: System::new(config),
            failure: Box::new(NoFailures),
            metrics: Metrics::new(),
            trace: None,
            check_safety: cfg!(debug_assertions),
            monitors: Vec::new(),
            violations: Vec::new(),
            telemetry: None,
            tracer: None,
            partition: None,
        }
    }

    /// Applies a scripted link-fault schedule: each round's cut mask is
    /// installed before the round runs (a cut slot reads as a silent
    /// neighbor), and rounds with any active cut count as ambient
    /// disturbance for the monitors' stabilization stopwatch — mirroring
    /// how the message-passing runtime treats suppressed announcements.
    ///
    /// # Panics
    ///
    /// Panics if the schedule was built for a different grid.
    pub fn with_partition(mut self, schedule: PartitionSchedule) -> Simulation {
        assert_eq!(
            schedule.dims(),
            self.system.config().dims(),
            "partition schedule and system must share a grid"
        );
        self.partition = Some(schedule);
        self
    }

    /// Replaces the failure model.
    pub fn with_failure_model<F: FailureModel + 'static>(mut self, model: F) -> Simulation {
        self.failure = Box::new(model);
        self
    }

    /// Fans the engine's sparse phases out to `workers` shard threads.
    /// Values above 1 also drop the sharding threshold so the fan-out
    /// actually engages on small campaign grids — output stays byte-identical
    /// to sequential execution at every worker count.
    pub fn with_workers(mut self, workers: usize) -> Simulation {
        self.system.set_workers(workers);
        if workers > 1 {
            self.system.set_shard_min(1);
        }
        self
    }

    /// Switches the system's token policy to `Randomized` with this salt.
    pub fn with_randomized_tokens(mut self, salt: u64) -> Simulation {
        let config = self
            .system
            .config()
            .clone()
            .with_token_policy(TokenPolicy::Randomized { salt });
        let state = self.system.state().clone();
        let mut system = System::new(config);
        system.set_state(state);
        self.system = system;
        self
    }

    /// Attaches a trace recorder.
    pub fn with_trace(mut self, trace: TraceRecorder) -> Simulation {
        self.trace = Some(trace);
        self
    }

    /// Forces per-round safety checking on or off (defaults to on in debug
    /// builds, off in release).
    pub fn with_safety_checks(mut self, on: bool) -> Simulation {
        self.check_safety = on;
        self
    }

    /// Installs online monitors, evaluated against the global state after
    /// every round. Unlike [`Simulation::with_safety_checks`] (which panics),
    /// monitors *accumulate* violations — see [`Simulation::violations`] —
    /// which is what a chaos campaign wants: run to completion, then report.
    ///
    /// These are the same monitors the message-passing runtime evaluates in
    /// [`NetSystem::run_monitored`](../cellflow_net/struct.NetSystem.html),
    /// so a campaign can be judged identically on both runtimes.
    pub fn with_monitors(mut self, monitors: Vec<Box<dyn Monitor>>) -> Simulation {
        self.monitors = monitors;
        self
    }

    /// Attaches telemetry: per-round counters and latency into the
    /// bundle's registry, every round's events into its structured JSONL
    /// log (monitor violations dump the flight recorder when one is
    /// configured), and the core engine's Route/Signal/Move phase timers
    /// registered in the same registry.
    pub fn with_telemetry(mut self, telemetry: SimTelemetry) -> Simulation {
        self.system
            .attach_phase_timers(cellflow_telemetry::PhaseTimers::register(
                telemetry.registry(),
            ));
        self.telemetry = Some(telemetry);
        self
    }

    /// Attaches a causal tracer: every round's telemetry stream gains a
    /// deterministic span tree (round → phase → shard, plus fault and
    /// event-bearing-cell leaves) whose ids are pure functions of the
    /// tracer seed. Requires telemetry with an event log to produce
    /// output; without [`Simulation::with_telemetry`] it only turns on the
    /// engine's (allocation-free) per-round phase attribution.
    pub fn with_tracer(mut self, tracer: cellflow_telemetry::Tracer) -> Simulation {
        self.system.enable_round_trace();
        self.tracer = Some(tracer);
        self
    }

    /// Attaches a flight recorder: the opening keyframe is the current
    /// state, and every subsequent round records itself (see
    /// [`System::attach_recorder`]). Seal it with
    /// [`Simulation::take_recorder`] when the run completes.
    pub fn with_recorder(mut self, recorder: Box<cellflow_core::snapshot::Recorder>) -> Simulation {
        self.system.attach_recorder(recorder);
        self
    }

    /// Detaches and returns the flight recorder, if any.
    pub fn take_recorder(&mut self) -> Option<Box<cellflow_core::snapshot::Recorder>> {
        self.system.take_recorder()
    }

    /// The attached telemetry bundle, if any.
    pub fn telemetry(&self) -> Option<&SimTelemetry> {
        self.telemetry.as_ref()
    }

    /// Mutable access to the attached telemetry (e.g. to flush the stream).
    pub fn telemetry_mut(&mut self) -> Option<&mut SimTelemetry> {
        self.telemetry.as_mut()
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the underlying system (seeding entities, manual
    /// failures).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The trace recorder, if attached.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Violations accumulated by the installed monitors.
    pub fn violations(&self) -> &[MonitorViolation] {
        &self.violations
    }

    /// One summary line per installed monitor.
    pub fn monitor_summaries(&self) -> Vec<String> {
        self.monitors.iter().map(|m| m.summary()).collect()
    }

    /// Executes one round: failures, then `update`, then bookkeeping.
    ///
    /// # Panics
    ///
    /// With safety checks enabled, panics if `Safe`, Invariant 1, or
    /// Invariant 2 is violated after the round — which the protocol
    /// guarantees never happens (Theorem 5); a panic here is a bug.
    pub fn step(&mut self) -> RoundEvents {
        let round = self.system.round();
        let mut partitioned = false;
        if let Some(schedule) = &self.partition {
            self.system.set_link_cuts(schedule.mask_row(round));
            partitioned = schedule.active(round);
        }
        let failures = self.failure.apply(&mut self.system, round);
        let events = match &self.telemetry {
            None => self.system.step(),
            Some(tel) => {
                let span = tel.round_ns.start();
                let events = self.system.step();
                drop(span);
                events
            }
        };
        self.metrics.record(&events);
        self.metrics.record_failures(&failures);
        if let Some(tr) = &mut self.trace {
            tr.record(round, &failures, &events);
        }
        let fresh_violations = self.violations.len();
        if !self.monitors.is_empty() {
            let ctx = MonitorCtx {
                config: self.system.config(),
                state: self.system.state(),
                round: self.system.round(),
                failed: &failures.failed,
                recovered: &failures.recovered,
                corrupted: &failures.corrupted,
                // The shared-variable model has no message fabric to be
                // noisy, but an active link-cut schedule is the same kind
                // of disturbance: stabilization is only promised once the
                // cuts heal.
                ambient_chaos: partitioned,
                consumed_total: self.system.consumed_total(),
                inserted_total: self.system.inserted_total(),
            };
            for monitor in self.monitors.iter_mut() {
                self.violations.extend(monitor.observe(&ctx));
            }
        }
        if let Some(tel) = &mut self.telemetry {
            // Rounds are tagged 1-based, matching the monitors' numbering
            // and the net collector's stream.
            match &self.tracer {
                None => tel.observe_round(
                    round + 1,
                    &failures,
                    &events,
                    &self.violations[fresh_violations..],
                ),
                Some(tracer) => tel.observe_round_traced(
                    round + 1,
                    &failures,
                    &events,
                    &self.violations[fresh_violations..],
                    tracer,
                    self.system.round_trace(),
                ),
            }
        }
        if self.check_safety {
            let (cfg, st) = (self.system.config(), self.system.state());
            if let Err(v) = safety::check_safe(cfg, st) {
                panic!("safety violated at round {round}: {v}");
            }
            if let Err(v) = safety::check_invariant1(cfg, st) {
                panic!("Invariant 1 violated at round {round}: {v}");
            }
            if let Err(v) = safety::check_invariant2(cfg, st) {
                panic!("Invariant 2 violated at round {round}: {v}");
            }
        }
        events
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{RandomFailRecover, Schedule};
    use cellflow_core::Params;
    use cellflow_grid::{CellId, GridDims};

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::square(8),
            CellId::new(1, 7),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0))
    }

    #[test]
    fn simulation_accumulates_metrics() {
        let mut sim = Simulation::new(config(), 1).with_safety_checks(true);
        sim.run(400);
        assert_eq!(sim.metrics().rounds(), 400);
        assert!(sim.metrics().throughput() > 0.0);
        assert_eq!(
            sim.metrics().consumed_total(),
            sim.system().consumed_total()
        );
    }

    #[test]
    fn trace_validates_on_long_run() {
        let mut sim = Simulation::new(config(), 1)
            .with_trace(TraceRecorder::new())
            .with_safety_checks(true);
        sim.run(300);
        let checked = sim.trace().unwrap().validate().expect("trace consistent");
        assert!(checked > 0);
    }

    #[test]
    fn random_failures_never_break_safety() {
        let mut sim = Simulation::new(config(), 3)
            .with_failure_model(RandomFailRecover::new(0.05, 0.1, 99))
            .with_safety_checks(true);
        sim.run(500); // step() panics on any violation
        assert_eq!(sim.metrics().rounds(), 500);
    }

    #[test]
    fn scheduled_carving_pins_flow() {
        let dims = GridDims::square(8);
        let path =
            cellflow_grid::Path::straight(CellId::new(1, 0), cellflow_geom::Dir::North, 8).unwrap();
        let mut sim = Simulation::new(config(), 1)
            .with_failure_model(Schedule::new().carve(path.carve_failures(dims)))
            .with_safety_checks(true);
        sim.run(400);
        assert!(sim.metrics().throughput() > 0.0);
        // Entities only ever lived on path cells.
        for (cell, _) in sim.system().state().entities(dims) {
            assert!(path.contains(cell), "entity off the carved path at {cell}");
        }
    }

    #[test]
    fn monitors_stay_quiet_on_a_healthy_run() {
        let cfg = config();
        let monitors = cellflow_core::standard_monitors(&cfg);
        let mut sim = Simulation::new(cfg, 1)
            .with_failure_model(
                cellflow_core::FaultPlan::new()
                    .crash_at(30, CellId::new(3, 3))
                    .recover_at(60, CellId::new(3, 3)),
            )
            .with_monitors(monitors);
        sim.run(300);
        assert!(sim.violations().is_empty(), "{:?}", sim.violations());
        assert_eq!(sim.metrics().failed_total(), 1);
        assert_eq!(sim.metrics().recovered_total(), 1);
        let summaries = sim.monitor_summaries();
        assert_eq!(summaries.len(), 4);
        assert!(summaries.iter().any(|s| s.contains("stabilized")));
    }

    #[test]
    fn telemetry_stream_matches_metrics_and_times_phases() {
        use cellflow_telemetry::{EventLog, Registry, SharedBuffer};

        let registry = Registry::new();
        let buffer = SharedBuffer::new();
        let tel = SimTelemetry::new(&registry)
            .with_event_log(EventLog::new().with_stream(Box::new(buffer.clone())));
        let mut sim = Simulation::new(config(), 1)
            .with_failure_model(
                cellflow_core::FaultPlan::new()
                    .crash_at(30, CellId::new(3, 3))
                    .recover_at(60, CellId::new(3, 3)),
            )
            .with_telemetry(tel);
        sim.run(200);
        sim.telemetry_mut().unwrap().flush();

        // The stream is schema-valid and agrees with the metrics.
        let stats = cellflow_telemetry::validate_stream(&buffer.contents()).unwrap();
        let kind = |k: &str| {
            stats
                .by_kind
                .iter()
                .find(|(n, _)| n == k)
                .map_or(0, |(_, c)| *c)
        };
        assert_eq!(kind("round_summary"), 200);
        assert_eq!(kind("fail") as u64, sim.metrics().failed_total());
        assert_eq!(kind("consume") as u64, sim.metrics().consumed_total());
        assert_eq!(stats.last_round, 200);

        // Counters mirror the metrics; engine phase timers recorded too.
        let mut consumed = None;
        let mut route_count = None;
        for m in registry.snapshot() {
            match m {
                cellflow_telemetry::MetricSnapshot::Counter { ref name, value }
                    if name == "cellflow_sim_consumed_total" =>
                {
                    consumed = Some(value)
                }
                cellflow_telemetry::MetricSnapshot::Histogram {
                    ref name, count, ..
                } if name == "cellflow_engine_route_ns" => route_count = Some(count),
                _ => {}
            }
        }
        assert_eq!(consumed, Some(sim.metrics().consumed_total()));
        assert_eq!(route_count, Some(200));
    }

    #[test]
    fn tracer_emits_causal_spans_and_reruns_byte_identically() {
        use cellflow_telemetry::{EventLog, Registry, SharedBuffer, Trace, Tracer};

        let run = || {
            let buffer = SharedBuffer::new();
            let tel = SimTelemetry::new(&Registry::new())
                .with_event_log(EventLog::new().with_stream(Box::new(buffer.clone())));
            let mut sim = Simulation::new(config(), 1)
                .with_failure_model(
                    cellflow_core::FaultPlan::new()
                        .crash_at(30, CellId::new(3, 3))
                        .recover_at(60, CellId::new(3, 3)),
                )
                .with_telemetry(tel)
                .with_tracer(Tracer::new(42));
            sim.run(120);
            sim.telemetry_mut().unwrap().flush();
            buffer.contents()
        };
        let text = run();
        let stats = cellflow_telemetry::validate_stream(&text).unwrap();
        assert!(
            stats.by_kind.iter().any(|(k, _)| k == "span"),
            "no spans in {:?}",
            stats.by_kind
        );
        let trace = Trace::parse(&text).unwrap();
        trace.check_causality().unwrap();
        assert!(trace.spans.iter().any(|s| s.label == "fault"));
        assert!(trace.spans.iter().any(|s| s.label == "cell"));
        // Deterministic fields (everything but ns) identical across reruns.
        let strip_ns = |text: &str| -> Vec<String> {
            text.lines()
                .map(|l| match l.find(",\"ns\":") {
                    Some(k) => l[..k].to_string(),
                    None => l.to_string(),
                })
                .collect()
        };
        assert_eq!(strip_ns(&text), strip_ns(&run()));
    }

    #[test]
    fn tracer_absent_leaves_stream_byte_identical() {
        use cellflow_telemetry::{EventLog, Registry, SharedBuffer, Tracer};

        let run = |traced: bool| {
            let buffer = SharedBuffer::new();
            let tel = SimTelemetry::new(&Registry::new())
                .with_event_log(EventLog::new().with_stream(Box::new(buffer.clone())));
            let mut sim = Simulation::new(config(), 1).with_telemetry(tel);
            if traced {
                sim = sim.with_tracer(Tracer::new(7));
            }
            sim.run(60);
            sim.telemetry_mut().unwrap().flush();
            buffer.contents()
        };
        let plain = run(false);
        let traced = run(true);
        // The traced stream is the plain stream plus span lines.
        let plain_lines: Vec<&str> = plain.lines().collect();
        let non_span: Vec<&str> = traced
            .lines()
            .filter(|l| !l.contains("\"kind\":\"span\""))
            .collect();
        assert_eq!(plain_lines, non_span);
        assert!(traced.len() > plain.len());
    }

    #[test]
    fn violation_triggers_a_flight_dump() {
        use cellflow_core::monitor::{Monitor, MonitorCtx, MonitorViolation};
        use cellflow_telemetry::{EventLog, Registry};

        // A monitor that fires once, at round 50.
        struct TripAt50;
        impl Monitor for TripAt50 {
            fn name(&self) -> &'static str {
                "trip"
            }
            fn observe(&mut self, ctx: &MonitorCtx<'_>) -> Vec<MonitorViolation> {
                if ctx.round == 50 {
                    vec![MonitorViolation {
                        monitor: "trip",
                        round: ctx.round,
                        detail: "scripted".to_string(),
                    }]
                } else {
                    Vec::new()
                }
            }
            fn summary(&self) -> String {
                "trip".to_string()
            }
        }

        let dir = std::env::temp_dir().join(format!("cellflow-sim-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("flight.jsonl");
        let tel = SimTelemetry::new(&Registry::disabled())
            .with_event_log(EventLog::new().with_flight_path(dump.clone()));
        let mut sim = Simulation::new(config(), 1)
            .with_monitors(vec![Box::new(TripAt50)])
            .with_telemetry(tel);
        sim.run(80);
        assert_eq!(sim.telemetry().unwrap().log_stats().1, 1, "one dump");
        let dumped = std::fs::read_to_string(&dump).unwrap();
        let stats = cellflow_telemetry::validate_stream(&dumped).unwrap();
        assert_eq!(stats.violations, 1);
        assert!(stats.by_kind.iter().any(|(k, _)| k == "flight_header"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn randomized_tokens_still_safe_and_productive() {
        let mut sim = Simulation::new(config(), 1)
            .with_randomized_tokens(1234)
            .with_safety_checks(true);
        sim.run(400);
        assert!(sim.metrics().throughput() > 0.0);
    }
}
