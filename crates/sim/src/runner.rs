//! The simulation driver.

use cellflow_core::{safety, RoundEvents, System, SystemConfig, TokenPolicy};

use crate::failure::{FailureModel, NoFailures};
use crate::{Metrics, TraceRecorder};

/// A [`System`] under a [`FailureModel`], with metrics and optional tracing.
///
/// Each [`Simulation::step`] applies the failure model for the round, then one
/// `update` transition, then records metrics/trace. With `check_safety`
/// enabled (default in debug builds), every round asserts the paper's `Safe`
/// predicate and Invariants 1–2 — so any safety regression aborts loudly
/// instead of producing silently wrong throughput numbers.
///
/// ```
/// use cellflow_core::{Params, SystemConfig};
/// use cellflow_grid::{CellId, GridDims};
/// use cellflow_sim::Simulation;
///
/// let config = SystemConfig::new(
///     GridDims::square(8),
///     CellId::new(1, 7),
///     Params::from_milli(250, 50, 200)?,
/// )?
/// .with_source(CellId::new(1, 0));
/// let mut sim = Simulation::new(config, 42);
/// sim.run(500);
/// assert!(sim.metrics().throughput() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Simulation {
    system: System,
    failure: Box<dyn FailureModel>,
    metrics: Metrics,
    trace: Option<TraceRecorder>,
    check_safety: bool,
}

impl Simulation {
    /// Creates a failure-free simulation of `config`.
    ///
    /// `seed` parameterizes the randomized token policy if the config uses
    /// one; with the default deterministic policies it is absorbed into the
    /// `Randomized` salt only when you opt in via
    /// [`Simulation::with_randomized_tokens`].
    pub fn new(config: SystemConfig, seed: u64) -> Simulation {
        let _ = seed;
        Simulation {
            system: System::new(config),
            failure: Box::new(NoFailures),
            metrics: Metrics::new(),
            trace: None,
            check_safety: cfg!(debug_assertions),
        }
    }

    /// Replaces the failure model.
    pub fn with_failure_model<F: FailureModel + 'static>(mut self, model: F) -> Simulation {
        self.failure = Box::new(model);
        self
    }

    /// Switches the system's token policy to `Randomized` with this salt.
    pub fn with_randomized_tokens(mut self, salt: u64) -> Simulation {
        let config = self
            .system
            .config()
            .clone()
            .with_token_policy(TokenPolicy::Randomized { salt });
        let state = self.system.state().clone();
        let mut system = System::new(config);
        system.set_state(state);
        self.system = system;
        self
    }

    /// Attaches a trace recorder.
    pub fn with_trace(mut self, trace: TraceRecorder) -> Simulation {
        self.trace = Some(trace);
        self
    }

    /// Forces per-round safety checking on or off (defaults to on in debug
    /// builds, off in release).
    pub fn with_safety_checks(mut self, on: bool) -> Simulation {
        self.check_safety = on;
        self
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the underlying system (seeding entities, manual
    /// failures).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The trace recorder, if attached.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Executes one round: failures, then `update`, then bookkeeping.
    ///
    /// # Panics
    ///
    /// With safety checks enabled, panics if `Safe`, Invariant 1, or
    /// Invariant 2 is violated after the round — which the protocol
    /// guarantees never happens (Theorem 5); a panic here is a bug.
    pub fn step(&mut self) -> RoundEvents {
        let round = self.system.round();
        let failures = self.failure.apply(&mut self.system, round);
        let events = self.system.step();
        self.metrics.record(&events);
        if let Some(tr) = &mut self.trace {
            tr.record(round, &failures, &events);
        }
        if self.check_safety {
            let (cfg, st) = (self.system.config(), self.system.state());
            if let Err(v) = safety::check_safe(cfg, st) {
                panic!("safety violated at round {round}: {v}");
            }
            if let Err(v) = safety::check_invariant1(cfg, st) {
                panic!("Invariant 1 violated at round {round}: {v}");
            }
            if let Err(v) = safety::check_invariant2(cfg, st) {
                panic!("Invariant 2 violated at round {round}: {v}");
            }
        }
        events
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{RandomFailRecover, Schedule};
    use cellflow_core::Params;
    use cellflow_grid::{CellId, GridDims};

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::square(8),
            CellId::new(1, 7),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0))
    }

    #[test]
    fn simulation_accumulates_metrics() {
        let mut sim = Simulation::new(config(), 1).with_safety_checks(true);
        sim.run(400);
        assert_eq!(sim.metrics().rounds(), 400);
        assert!(sim.metrics().throughput() > 0.0);
        assert_eq!(
            sim.metrics().consumed_total(),
            sim.system().consumed_total()
        );
    }

    #[test]
    fn trace_validates_on_long_run() {
        let mut sim = Simulation::new(config(), 1)
            .with_trace(TraceRecorder::new())
            .with_safety_checks(true);
        sim.run(300);
        let checked = sim.trace().unwrap().validate().expect("trace consistent");
        assert!(checked > 0);
    }

    #[test]
    fn random_failures_never_break_safety() {
        let mut sim = Simulation::new(config(), 3)
            .with_failure_model(RandomFailRecover::new(0.05, 0.1, 99))
            .with_safety_checks(true);
        sim.run(500); // step() panics on any violation
        assert_eq!(sim.metrics().rounds(), 500);
    }

    #[test]
    fn scheduled_carving_pins_flow() {
        let dims = GridDims::square(8);
        let path =
            cellflow_grid::Path::straight(CellId::new(1, 0), cellflow_geom::Dir::North, 8).unwrap();
        let mut sim = Simulation::new(config(), 1)
            .with_failure_model(Schedule::new().carve(path.carve_failures(dims)))
            .with_safety_checks(true);
        sim.run(400);
        assert!(sim.metrics().throughput() > 0.0);
        // Entities only ever lived on path cells.
        for (cell, _) in sim.system().state().entities(dims) {
            assert!(path.contains(cell), "entity off the carved path at {cell}");
        }
    }

    #[test]
    fn randomized_tokens_still_safe_and_productive() {
        let mut sim = Simulation::new(config(), 1)
            .with_randomized_tokens(1234)
            .with_safety_checks(true);
        sim.run(400);
        assert!(sim.metrics().throughput() > 0.0);
    }
}
