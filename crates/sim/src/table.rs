//! Plain-text and CSV rendering of experiment series — the output format of
//! the figure-regeneration harness.

/// One plotted series: a label and `(x, y)` points.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Series {
    /// Legend label, e.g. `"v=0.2"`.
    pub label: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y values.
    pub fn ys(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, y)| y)
    }
}

/// Formats aligned columns: the shared x axis plus one column per series —
/// the "same rows the paper reports" output of each figure binary.
///
/// # Panics
///
/// Panics if the series do not share identical x values.
///
/// ```
/// use cellflow_sim::table::{format_table, Series};
///
/// let s = Series::new("v=0.2", vec![(0.05, 0.061), (0.10, 0.052)]);
/// let text = format_table("rs", &[s]);
/// assert!(text.contains("rs"));
/// assert!(text.contains("0.0610"));
/// ```
pub fn format_table(x_label: &str, series: &[Series]) -> String {
    let xs = check_shared_xs(series);
    let mut out = String::new();
    // Header.
    out.push_str(&format!("{x_label:>10}"));
    for s in series {
        out.push_str(&format!("  {:>12}", s.label));
    }
    out.push('\n');
    // Rows.
    for (row, &x) in xs.iter().enumerate() {
        out.push_str(&format!("{x:>10.4}"));
        for s in series {
            out.push_str(&format!("  {:>12.4}", s.points[row].1));
        }
        out.push('\n');
    }
    out
}

/// Formats the same data as CSV (`x_label,label1,label2,…`).
///
/// # Panics
///
/// Panics if the series do not share identical x values.
pub fn to_csv(x_label: &str, series: &[Series]) -> String {
    let xs = check_shared_xs(series);
    let mut out = String::new();
    out.push_str(x_label);
    for s in series {
        out.push(',');
        out.push_str(&s.label);
    }
    out.push('\n');
    for (row, &x) in xs.iter().enumerate() {
        out.push_str(&format!("{x}"));
        for s in series {
            out.push_str(&format!(",{}", s.points[row].1));
        }
        out.push('\n');
    }
    out
}

fn check_shared_xs(series: &[Series]) -> Vec<f64> {
    let Some(first) = series.first() else {
        return Vec::new();
    };
    let xs: Vec<f64> = first.points.iter().map(|&(x, _)| x).collect();
    for s in series {
        let these: Vec<f64> = s.points.iter().map(|&(x, _)| x).collect();
        assert_eq!(these, xs, "series '{}' has mismatched x values", s.label);
    }
    xs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_series() -> Vec<Series> {
        vec![
            Series::new("a", vec![(1.0, 10.0), (2.0, 20.0)]),
            Series::new("b", vec![(1.0, 0.5), (2.0, 0.25)]),
        ]
    }

    #[test]
    fn table_aligns_columns() {
        let t = format_table("x", &two_series());
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a') && lines[0].contains('b'));
        assert!(lines[1].contains("10.0000"));
        assert!(lines[2].contains("0.2500"));
    }

    #[test]
    fn csv_round_numbers() {
        let c = to_csv("x", &two_series());
        assert_eq!(c.lines().next().unwrap(), "x,a,b");
        assert_eq!(c.lines().nth(1).unwrap(), "1,10,0.5");
    }

    #[test]
    fn empty_series_list_is_empty_output() {
        assert_eq!(format_table("x", &[]), format!("{:>10}\n", "x"));
        assert_eq!(to_csv("x", &[]), "x\n");
    }

    #[test]
    #[should_panic(expected = "mismatched x")]
    fn mismatched_xs_panic() {
        let bad = vec![
            Series::new("a", vec![(1.0, 1.0)]),
            Series::new("b", vec![(2.0, 1.0)]),
        ];
        let _ = format_table("x", &bad);
    }

    #[test]
    fn series_ys() {
        let s = Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(s.ys().collect::<Vec<_>>(), vec![1.0, 2.0]);
    }
}
