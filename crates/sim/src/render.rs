//! ASCII rendering of system states (the Figure 1 schematic, in a terminal).

use cellflow_core::{SystemConfig, SystemState};
use cellflow_geom::Dir;

/// Renders the grid with per-cell contents:
///
/// * `T` marks the target cell, `S` a source cell;
/// * failed cells are filled with `x`;
/// * entities appear as `o` at their approximate position within the cell;
/// * an empty live cell shows its `next` direction as an arrow.
///
/// Rows print north (largest `j`) at the top, matching the paper's figures.
///
/// ```
/// use cellflow_sim::{render, scenario};
///
/// let sys = scenario::fig1_demo();
/// let picture = render::render(sys.config(), sys.state());
/// assert!(picture.contains('T'));
/// assert!(picture.contains('x')); // the failed cell ⟨2,1⟩
/// ```
pub fn render(config: &SystemConfig, state: &SystemState) -> String {
    const CELL_W: usize = 8; // inner width
    const CELL_H: usize = 3; // inner height
    let dims = config.dims();
    let (nx, ny) = (dims.nx() as usize, dims.ny() as usize);
    let width = nx * (CELL_W + 1) + 1;
    let height = ny * (CELL_H + 1) + 1;
    let mut canvas = vec![vec![' '; width]; height];

    // Borders.
    for gy in 0..=ny {
        let row = gy * (CELL_H + 1);
        for (x, c) in canvas[row].iter_mut().enumerate() {
            *c = if x % (CELL_W + 1) == 0 { '+' } else { '-' };
        }
    }
    for (y, line) in canvas.iter_mut().enumerate() {
        if y % (CELL_H + 1) != 0 {
            for gx in 0..=nx {
                line[gx * (CELL_W + 1)] = '|';
            }
        }
    }

    for id in dims.iter() {
        let cell = state.cell(dims, id);
        let (i, j) = (id.i() as usize, id.j() as usize);
        // Canvas origin (top-left inner corner) of this cell.
        let top = (ny - 1 - j) * (CELL_H + 1) + 1;
        let left = i * (CELL_W + 1) + 1;

        if cell.failed {
            for dy in 0..CELL_H {
                for dx in 0..CELL_W {
                    canvas[top + dy][left + dx] = 'x';
                }
            }
            continue;
        }

        // Role label in the corner.
        if id == config.target() {
            canvas[top][left] = 'T';
        } else if config.sources().contains(&id) {
            canvas[top][left] = 'S';
        }

        // Entities at approximate sub-cell positions.
        for pos in cell.members.values() {
            let fx = (pos.x - cellflow_geom::Fixed::from_int(i as i64)).to_f64();
            let fy = (pos.y - cellflow_geom::Fixed::from_int(j as i64)).to_f64();
            let dx = ((fx * CELL_W as f64) as usize).min(CELL_W - 1);
            let dy = (((1.0 - fy) * CELL_H as f64) as usize).min(CELL_H - 1);
            canvas[top + dy][left + dx] = 'o';
        }

        // Next-direction arrow in the center of empty cells.
        if cell.members.is_empty() {
            if let Some(dir) = cell.next.and_then(|n| id.dir_to(n)) {
                let arrow = match dir {
                    Dir::East => '>',
                    Dir::West => '<',
                    Dir::North => '^',
                    Dir::South => 'v',
                };
                canvas[top + CELL_H / 2][left + CELL_W / 2] = arrow;
            }
        }
    }

    let mut out = String::with_capacity(height * (width + 1));
    for line in canvas {
        out.extend(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_core::{Params, System, SystemConfig};
    use cellflow_grid::{CellId, GridDims};

    fn small_system() -> System {
        System::new(
            SystemConfig::new(
                GridDims::square(3),
                CellId::new(2, 2),
                Params::from_milli(250, 50, 100).unwrap(),
            )
            .unwrap()
            .with_source(CellId::new(0, 0)),
        )
    }

    #[test]
    fn renders_roles_and_grid() {
        let sys = small_system();
        let pic = render(sys.config(), sys.state());
        assert!(pic.contains('T'));
        assert!(pic.contains('S'));
        assert!(pic.contains('+'));
        // 3 cells × (3+1) + 1 rows.
        assert_eq!(pic.lines().count(), 13);
        // No entities yet.
        assert!(!pic.contains('o'));
    }

    #[test]
    fn renders_failed_cells_and_entities() {
        let mut sys = small_system();
        sys.fail(CellId::new(1, 1));
        sys.seed_entity(CellId::new(0, 1), CellId::new(0, 1).center())
            .unwrap();
        let pic = render(sys.config(), sys.state());
        assert!(pic.contains('x'));
        assert!(pic.contains('o'));
    }

    #[test]
    fn arrows_appear_after_routing() {
        let mut sys = small_system();
        sys.run(6);
        let pic = render(sys.config(), sys.state());
        assert!(
            pic.contains('^') || pic.contains('>') || pic.contains('<') || pic.contains('v'),
            "expected routing arrows in:\n{pic}"
        );
    }

    #[test]
    fn target_row_is_at_top() {
        // Target ⟨2,2⟩ has j = 2 = top row; its 'T' must appear in the first
        // cell band (rows 1–3 of the canvas).
        let sys = small_system();
        let pic = render(sys.config(), sys.state());
        let first_band: Vec<&str> = pic.lines().take(4).collect();
        assert!(first_band.iter().any(|l| l.contains('T')), "{pic}");
    }
}
