//! Crash/recovery models.

use cellflow_core::fault::{FaultKind, FaultPlan};
use cellflow_core::overload::{
    BackoffPolicy, CascadeStats, OverloadAction, OverloadDetector, OverloadTrigger,
};
use cellflow_core::{System, SystemConfig};
use cellflow_grid::CellId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What a failure model did to the system this round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FailureEvents {
    /// Cells crashed this round.
    pub failed: Vec<CellId>,
    /// Cells recovered this round.
    pub recovered: Vec<CellId>,
    /// Cells whose state was transiently corrupted this round
    /// ([`FaultKind::Corrupt`]).
    pub corrupted: Vec<CellId>,
}

impl FailureEvents {
    /// `true` if nothing happened.
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty() && self.recovered.is_empty() && self.corrupted.is_empty()
    }
}

/// A source of crash and recovery transitions, applied before each round.
///
/// Implementations mutate the system through [`System::fail`] /
/// [`System::recover`] only.
pub trait FailureModel {
    /// Applies this round's failures/recoveries to `system`.
    fn apply(&mut self, system: &mut System, round: u64) -> FailureEvents;
}

/// No failures ever — the environment of Figures 7 and 8.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoFailures;

impl FailureModel for NoFailures {
    fn apply(&mut self, _system: &mut System, _round: u64) -> FailureEvents {
        FailureEvents::default()
    }
}

/// The random fail/recover model of Figure 9 (and of DeVille & Mitra,
/// SSS 2009): each round, every live cell fails with probability `pf` and
/// every failed cell recovers with probability `pr`, independently.
///
/// The target may fail too (its recovery resets `dist_tid = 0`, exactly as
/// the paper describes); set `protect_target` to exclude it, and
/// `protect_sources` to keep sources alive.
#[derive(Clone, Debug)]
pub struct RandomFailRecover {
    /// Per-round, per-cell failure probability.
    pub pf: f64,
    /// Per-round, per-cell recovery probability.
    pub pr: f64,
    /// Never fail the target cell.
    pub protect_target: bool,
    /// Never fail source cells.
    pub protect_sources: bool,
    rng: SmallRng,
}

impl RandomFailRecover {
    /// Creates the model with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `pf` or `pr` is outside `[0, 1]`.
    pub fn new(pf: f64, pr: f64, seed: u64) -> RandomFailRecover {
        assert!(
            (0.0..=1.0).contains(&pf),
            "pf must be a probability, got {pf}"
        );
        assert!(
            (0.0..=1.0).contains(&pr),
            "pr must be a probability, got {pr}"
        );
        RandomFailRecover {
            pf,
            pr,
            protect_target: false,
            protect_sources: false,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Builder: never crash the target.
    pub fn protect_target(mut self) -> RandomFailRecover {
        self.protect_target = true;
        self
    }

    /// Builder: never crash sources.
    pub fn protect_sources(mut self) -> RandomFailRecover {
        self.protect_sources = true;
        self
    }
}

impl FailureModel for RandomFailRecover {
    fn apply(&mut self, system: &mut System, _round: u64) -> FailureEvents {
        let dims = system.config().dims();
        let target = system.config().target();
        let sources = system.config().sources().clone();
        let mut events = FailureEvents::default();
        for id in dims.iter() {
            let failed = system.cell(id).failed;
            if failed {
                if self.rng.gen_bool(self.pr) {
                    system.recover(id);
                    events.recovered.push(id);
                }
            } else {
                if self.protect_target && id == target {
                    continue;
                }
                if self.protect_sources && sources.contains(&id) {
                    continue;
                }
                if self.rng.gen_bool(self.pf) {
                    system.fail(id);
                    events.failed.push(id);
                }
            }
        }
        events
    }
}

/// A scripted schedule of fail/recover transitions: `(round, cell, recover?)`.
/// Used to carve paths (Figure 8) and to build reproducible churn tests.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    entries: Vec<(u64, CellId, bool)>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Adds a crash of `cell` at `round`.
    pub fn fail_at(mut self, round: u64, cell: CellId) -> Schedule {
        self.entries.push((round, cell, false));
        self
    }

    /// Adds a recovery of `cell` at `round`.
    pub fn recover_at(mut self, round: u64, cell: CellId) -> Schedule {
        self.entries.push((round, cell, true));
        self
    }

    /// Adds crashes of all `cells` at round 0 — the path-carving helper.
    pub fn carve<I: IntoIterator<Item = CellId>>(mut self, cells: I) -> Schedule {
        for c in cells {
            self.entries.push((0, c, false));
        }
        self
    }
}

impl FailureModel for Schedule {
    fn apply(&mut self, system: &mut System, round: u64) -> FailureEvents {
        let mut events = FailureEvents::default();
        for &(when, cell, recover) in &self.entries {
            if when == round {
                if recover {
                    system.recover(cell);
                    events.recovered.push(cell);
                } else {
                    system.fail(cell);
                    events.failed.push(cell);
                }
            }
        }
        events
    }
}

/// A [`FaultPlan`] drives the shared-variable reference too: the same
/// scripted campaign that the message-passing runtime executes mechanically
/// (thread death, barrier leave/re-join, silence) reads here as plain
/// fail/recover transitions — which is exactly the abstraction the paper's
/// model makes. This is what the differential tests lean on: one plan, two
/// runtimes, identical observable behavior.
impl FailureModel for FaultPlan {
    fn apply(&mut self, system: &mut System, round: u64) -> FailureEvents {
        let mut events = FailureEvents::default();
        for event in self.events_at(round) {
            match event.kind {
                FaultKind::Recover => {
                    system.recover(event.cell);
                    events.recovered.push(event.cell);
                }
                // Crash, HardCrash, Kill, and OverloadCrash are
                // indistinguishable in the shared-variable model: the
                // cell's state freezes at `fail`.
                FaultKind::Crash
                | FaultKind::HardCrash
                | FaultKind::Kill
                | FaultKind::OverloadCrash => {
                    system.fail(event.cell);
                    events.failed.push(event.cell);
                }
                FaultKind::Corrupt(c) => {
                    system.corrupt(event.cell, c);
                    events.corrupted.push(event.cell);
                }
            }
        }
        events
    }
}

/// Online overload detection as a failure model: a scripted base campaign
/// plus an [`OverloadDetector`] polled live against the running system, so
/// finite-capacity cells crash (or backoff-pause) *endogenously* as
/// congestion builds, instead of by script.
///
/// This is the same decision procedure
/// [`expand_overload`](cellflow_core::expand_overload) runs offline — a
/// differential test pins the two to identical executions — but the online
/// form is what a live deployment would run, and it composes with the
/// simulation's monitors, trace, and telemetry without precomputation.
#[derive(Clone, Debug)]
pub struct OverloadModel {
    base: FaultPlan,
    detector: OverloadDetector,
    restart_after: Option<u64>,
    backoff: bool,
    /// Scheduled future recoveries: `(round, cell)`, in schedule order.
    resumes: Vec<(u64, CellId)>,
}

impl OverloadModel {
    /// A model that overlays endogenous overload faults on `base`.
    ///
    /// With `backoff` set, trips pause-and-resume instead of crashing
    /// (mirroring `expand_overload` with a [`BackoffPolicy`]).
    pub fn new(
        config: &SystemConfig,
        base: FaultPlan,
        trigger: OverloadTrigger,
        backoff: Option<BackoffPolicy>,
    ) -> OverloadModel {
        OverloadModel {
            base,
            backoff: backoff.is_some(),
            detector: OverloadDetector::new(config, trigger, backoff),
            restart_after: None,
            resumes: Vec::new(),
        }
    }

    /// Builder: optimistically restart each overload-crashed cell `after`
    /// rounds — the raw restart request a supervisor would discipline.
    ///
    /// # Panics
    ///
    /// Panics if `after` is zero or the model was built with backoff
    /// (backoff pauses schedule their own resume).
    pub fn with_restart_after(mut self, after: u64) -> OverloadModel {
        assert!(after > 0, "restart_after must be at least one round");
        assert!(
            !self.backoff,
            "backoff pauses already schedule their own resume"
        );
        self.restart_after = Some(after);
        self
    }

    /// Campaign counters accumulated so far.
    pub fn stats(&self) -> CascadeStats {
        self.detector.stats()
    }
}

impl FailureModel for OverloadModel {
    fn apply(&mut self, system: &mut System, round: u64) -> FailureEvents {
        // Base script first, then scheduled resumes, then fresh trips —
        // the exact within-round order `expand_overload` both runs and
        // records, so the two stay replay-equivalent.
        let mut events = self.base.apply(system, round);
        for i in 0..self.resumes.len() {
            let (when, cell) = self.resumes[i];
            if when == round {
                system.recover(cell);
                events.recovered.push(cell);
            }
        }
        let tripped = self
            .detector
            .poll(system.config(), system.state(), round);
        for (cell, action) in tripped {
            system.fail(cell);
            events.failed.push(cell);
            match action {
                OverloadAction::Crash { .. } => {
                    if let Some(after) = self.restart_after {
                        self.resumes.push((round + after, cell));
                    }
                }
                OverloadAction::Backoff { resume_round, .. } => {
                    self.resumes.push((resume_round, cell));
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_core::Params;
    use cellflow_grid::GridDims;

    fn system() -> System {
        System::new(
            SystemConfig::new(
                GridDims::square(4),
                CellId::new(3, 3),
                Params::from_milli(250, 50, 100).unwrap(),
            )
            .unwrap()
            .with_source(CellId::new(0, 0)),
        )
    }

    #[test]
    fn no_failures_is_a_noop() {
        let mut sys = system();
        let ev = NoFailures.apply(&mut sys, 0);
        assert!(ev.is_empty());
        assert!(sys.config().dims().iter().all(|c| !sys.cell(c).failed));
    }

    #[test]
    fn random_model_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut sys = system();
            let mut model = RandomFailRecover::new(0.2, 0.3, seed);
            let mut log = Vec::new();
            for round in 0..50 {
                log.push(model.apply(&mut sys, round));
            }
            log
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn random_model_respects_protections() {
        let mut sys = system();
        let mut model = RandomFailRecover::new(1.0, 0.0, 1)
            .protect_target()
            .protect_sources();
        let ev = model.apply(&mut sys, 0);
        assert!(!ev.failed.contains(&CellId::new(3, 3)));
        assert!(!ev.failed.contains(&CellId::new(0, 0)));
        assert_eq!(ev.failed.len(), 14); // 16 − target − source
        assert!(!sys.cell(CellId::new(3, 3)).failed);
    }

    #[test]
    fn certain_recovery_heals_everything() {
        let mut sys = system();
        let mut kill = RandomFailRecover::new(1.0, 0.0, 1);
        kill.apply(&mut sys, 0);
        let mut heal = RandomFailRecover::new(0.0, 1.0, 2);
        let ev = heal.apply(&mut sys, 1);
        assert!(ev.failed.is_empty());
        assert!(!ev.recovered.is_empty());
        assert!(sys.config().dims().iter().all(|c| !sys.cell(c).failed));
    }

    #[test]
    fn schedule_fires_at_exact_rounds() {
        let mut sys = system();
        let mut sched = Schedule::new()
            .fail_at(2, CellId::new(1, 1))
            .recover_at(5, CellId::new(1, 1))
            .carve([CellId::new(2, 2)]);
        for round in 0..8 {
            let ev = sched.apply(&mut sys, round);
            match round {
                0 => assert_eq!(ev.failed, vec![CellId::new(2, 2)]),
                2 => assert_eq!(ev.failed, vec![CellId::new(1, 1)]),
                5 => assert_eq!(ev.recovered, vec![CellId::new(1, 1)]),
                _ => assert!(ev.is_empty()),
            }
        }
        assert!(sys.cell(CellId::new(2, 2)).failed);
        assert!(!sys.cell(CellId::new(1, 1)).failed);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_panics() {
        let _ = RandomFailRecover::new(1.5, 0.0, 1);
    }

    #[test]
    fn fault_plan_drives_the_reference() {
        let mut sys = system();
        let mut plan = FaultPlan::new()
            .crash_at(1, CellId::new(1, 1))
            .hard_crash_at(2, CellId::new(2, 2))
            .recover_at(4, CellId::new(1, 1));
        for round in 0..6 {
            let ev = plan.apply(&mut sys, round);
            match round {
                1 => assert_eq!(ev.failed, vec![CellId::new(1, 1)]),
                2 => assert_eq!(ev.failed, vec![CellId::new(2, 2)]),
                4 => assert_eq!(ev.recovered, vec![CellId::new(1, 1)]),
                _ => assert!(ev.is_empty()),
            }
        }
        assert!(!sys.cell(CellId::new(1, 1)).failed);
        assert!(sys.cell(CellId::new(2, 2)).failed, "hard crash reads as fail");
    }

    #[test]
    fn fault_plan_applies_corruptions() {
        use cellflow_core::{Corruption, Dist};

        let mut sys = system();
        let victim = CellId::new(1, 2);
        let mut plan =
            FaultPlan::new().corrupt_at(3, victim, Corruption::Dist(Dist::Finite(0)));
        for round in 0..5 {
            let ev = plan.apply(&mut sys, round);
            if round == 3 {
                assert_eq!(ev.corrupted, vec![victim]);
                assert!(ev.failed.is_empty() && ev.recovered.is_empty());
                assert!(!ev.is_empty());
                assert_eq!(sys.cell(victim).dist, Dist::Finite(0));
            } else {
                assert!(ev.is_empty());
            }
        }
        assert!(!sys.cell(victim).failed, "corruption does not crash");
    }

    #[test]
    fn recover_scheduled_same_round_as_crash_applies_in_plan_order() {
        let c = CellId::new(1, 1);
        // Crash then recover within the same round: the cell ends live
        // (events apply in insertion order, same as the net runtime).
        let mut sys = system();
        let mut plan = FaultPlan::new().crash_at(2, c).recover_at(2, c);
        let ev = plan.apply(&mut sys, 2);
        assert_eq!(ev.failed, vec![c]);
        assert_eq!(ev.recovered, vec![c]);
        assert!(!sys.cell(c).failed);
        // Reversed insertion order: recover (of a live cell) first, then
        // crash — the cell ends failed.
        let mut sys = system();
        let mut plan = FaultPlan::new().recover_at(2, c).crash_at(2, c);
        plan.apply(&mut sys, 2);
        assert!(sys.cell(c).failed);
    }

    #[test]
    fn recover_of_never_crashed_cell_is_harmless() {
        let c = CellId::new(2, 1);
        let mut sys = system();
        let before = sys.cell(c).clone();
        let mut plan = FaultPlan::new().recover_at(1, c);
        let ev = plan.apply(&mut sys, 1);
        assert_eq!(ev.recovered, vec![c]);
        assert_eq!(sys.cell(c), &before, "recovery of a live cell is a no-op");
        // Recovering the live target must keep its dist-0 anchor.
        let target = CellId::new(3, 3);
        let mut plan = FaultPlan::new().recover_at(2, target);
        plan.apply(&mut sys, 2);
        assert_eq!(
            sys.cell(target).dist,
            cellflow_core::Dist::Finite(0),
            "target anchor survives spurious recovery"
        );
    }

    #[test]
    fn kill_then_recover_ordering() {
        let c = CellId::new(1, 1);
        // In the shared-variable model a Kill is a crash; a later scripted
        // Recover revives the cell (the *deployment* is where a kill is
        // unrecoverable — its thread is gone and never re-spawned).
        let mut sys = system();
        let mut plan = FaultPlan::new().kill_at(1, c).recover_at(3, c);
        plan.apply(&mut sys, 1);
        assert!(sys.cell(c).failed);
        plan.apply(&mut sys, 2);
        assert!(sys.cell(c).failed);
        plan.apply(&mut sys, 3);
        assert!(!sys.cell(c).failed);
        // The plan itself still reports the kill as permanent hard death
        // (respawn accounting ignores kills only in the runtime's spawn
        // logic, not in hard_dead_at bookkeeping).
        assert!(plan.hard_dead_at(2).contains(&c));
        assert!(!plan.hard_dead_at(3).contains(&c));
    }

    fn capacity_system() -> System {
        System::new(
            SystemConfig::new(
                GridDims::square(5),
                CellId::new(1, 4),
                Params::from_milli(250, 50, 200).unwrap(),
            )
            .unwrap()
            .with_source(CellId::new(1, 0))
            .with_capacity(2),
        )
    }

    /// The online model and the offline expansion are the same decision
    /// procedure: replaying the expanded plan reproduces the online run
    /// state for state, for every mitigation mode.
    #[test]
    fn online_overload_matches_expanded_plan() {
        use cellflow_core::expand_overload;
        let base = FaultPlan::new().crash_at(8, CellId::new(1, 2));
        let trigger = OverloadTrigger::new(2, 2);
        let rounds = 160;
        let modes: [(Option<BackoffPolicy>, Option<u64>); 3] = [
            (None, None),
            (None, Some(12)),
            (Some(BackoffPolicy { base: 4, max: 32, seed: 0xCA5CADE }), None),
        ];
        for (backoff, restart_after) in modes {
            let mut online = capacity_system();
            let mut model = OverloadModel::new(
                online.config(),
                base.clone(),
                trigger,
                backoff,
            );
            if let Some(after) = restart_after {
                model = model.with_restart_after(after);
            }
            let outcome = expand_overload(
                online.config(),
                &base,
                trigger,
                backoff,
                restart_after,
                rounds,
            );
            let mut replay = capacity_system();
            let mut plan = outcome.plan.clone();
            for round in 0..rounds {
                model.apply(&mut online, round);
                online.step();
                plan.apply(&mut replay, round);
                replay.step();
            }
            assert_eq!(online.state(), replay.state(), "mode {backoff:?}/{restart_after:?}");
            assert_eq!(online.consumed_total(), replay.consumed_total());
            assert_eq!(model.stats(), outcome.stats);
        }
    }

    #[test]
    #[should_panic(expected = "backoff pauses already schedule their own resume")]
    fn overload_model_rejects_restart_with_backoff() {
        let sys = capacity_system();
        let _ = OverloadModel::new(
            sys.config(),
            FaultPlan::new(),
            OverloadTrigger::new(2, 2),
            Some(BackoffPolicy { base: 4, max: 32, seed: 1 }),
        )
        .with_restart_after(5);
    }
}
