//! Occupancy heat maps: where congestion lives on the grid.

use cellflow_core::overload::CascadeTrip;
use cellflow_core::{System, SystemConfig, SystemState};
use cellflow_grid::{CellId, GridDims};

/// Accumulates per-cell entity-rounds over a run and renders them as a
/// digit heat map — the congestion picture behind throughput numbers.
///
/// One `entity-round` is one entity spending one round on a cell; dividing by
/// the recorded rounds gives the mean occupancy.
///
/// ```
/// use cellflow_core::{Params, System, SystemConfig};
/// use cellflow_grid::{CellId, GridDims};
/// use cellflow_sim::heatmap::OccupancyGrid;
///
/// let config = SystemConfig::new(
///     GridDims::square(4),
///     CellId::new(3, 0),
///     Params::from_milli(250, 50, 200)?,
/// )?
/// .with_source(CellId::new(0, 0));
/// let mut system = System::new(config);
/// let mut heat = OccupancyGrid::new(system.config().dims());
/// for _ in 0..200 {
///     system.step();
///     heat.record(system.config(), system.state());
/// }
/// // The corridor row carries all the traffic.
/// assert!(heat.mean_occupancy(CellId::new(1, 0)) > heat.mean_occupancy(CellId::new(1, 3)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct OccupancyGrid {
    dims: GridDims,
    entity_rounds: Vec<u64>,
    rounds: u64,
}

impl OccupancyGrid {
    /// An empty accumulator for `dims`.
    pub fn new(dims: GridDims) -> OccupancyGrid {
        OccupancyGrid {
            dims,
            entity_rounds: vec![0; dims.cell_count()],
            rounds: 0,
        }
    }

    /// Records one round's occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not match the accumulator's grid.
    pub fn record(&mut self, config: &SystemConfig, state: &SystemState) {
        assert_eq!(config.dims(), self.dims, "grid mismatch");
        for id in self.dims.iter() {
            self.entity_rounds[self.dims.index(id)] +=
                state.cell(self.dims, id).members.len() as u64;
        }
        self.rounds += 1;
    }

    /// Rounds recorded so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total entity-rounds accumulated on `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    pub fn entity_rounds(&self, cell: CellId) -> u64 {
        self.entity_rounds[self.dims.index(cell)]
    }

    /// Mean number of entities on `cell` per round (0 if nothing recorded).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    pub fn mean_occupancy(&self, cell: CellId) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.entity_rounds(cell) as f64 / self.rounds as f64
        }
    }

    /// The cell with the highest accumulated occupancy (ties: smallest id).
    pub fn hottest(&self) -> CellId {
        self.dims
            .iter()
            .max_by_key(|&c| (self.entity_rounds(c), std::cmp::Reverse(c)))
            .expect("grids are nonempty")
    }

    /// Renders a digit heat map: each cell shows `0`–`9` scaled linearly to
    /// the hottest cell (`.` for exactly zero). North at the top.
    pub fn render(&self) -> String {
        let max = self.entity_rounds.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for j in (0..self.dims.ny()).rev() {
            for i in 0..self.dims.nx() {
                let v = self.entity_rounds(CellId::new(i, j));
                let ch = if v == 0 {
                    '.'
                } else {
                    char::from_digit(((v * 9) / max).clamp(1, 9) as u32, 10)
                        .expect("digit in range")
                };
                out.push(ch);
                out.push(' ');
            }
            out.pop();
            out.push('\n');
        }
        out
    }
}

/// Peak-pressure heat map: the engine's per-cell leaky-integrator pressure
/// (`p ← ⌊p/2⌋ + occupancy` per round) is the overload detector's view of
/// sustained congestion; this grid keeps the per-cell *peak* over a run, so
/// a cascade report can show where the pressure that tripped cells built
/// up — including on cells that later died and drained.
#[derive(Clone, Debug)]
pub struct PressureGrid {
    dims: GridDims,
    peak: Vec<u64>,
    rounds: u64,
}

impl PressureGrid {
    /// An empty accumulator for `dims`.
    pub fn new(dims: GridDims) -> PressureGrid {
        PressureGrid {
            dims,
            peak: vec![0; dims.cell_count()],
            rounds: 0,
        }
    }

    /// Records one round's pressure from the running system.
    ///
    /// # Panics
    ///
    /// Panics if `system`'s grid does not match the accumulator's.
    pub fn record(&mut self, system: &System) {
        assert_eq!(system.config().dims(), self.dims, "grid mismatch");
        for id in self.dims.iter() {
            let k = self.dims.index(id);
            self.peak[k] = self.peak[k].max(system.pressure(id));
        }
        self.rounds += 1;
    }

    /// Rounds recorded so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Peak pressure observed on `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    pub fn peak(&self, cell: CellId) -> u64 {
        self.peak[self.dims.index(cell)]
    }

    /// Renders a digit heat map of peak pressure, scaled like
    /// [`OccupancyGrid::render`]: `0`–`9` linear to the hottest cell, `.`
    /// for never-pressured cells, north at the top.
    pub fn render(&self) -> String {
        let max = self.peak.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for j in (0..self.dims.ny()).rev() {
            for i in 0..self.dims.nx() {
                let v = self.peak(CellId::new(i, j));
                let ch = if v == 0 {
                    '.'
                } else {
                    char::from_digit(((v * 9) / max).clamp(1, 9) as u32, 10)
                        .expect("digit in range")
                };
                out.push(ch);
                out.push(' ');
            }
            out.pop();
            out.push('\n');
        }
        out
    }
}

/// Renders a cascade progression map: each cell shows the depth of its
/// deepest overload trip (`1`–`9`, clamped), `.` if it never tripped.
/// North at the top — the same orientation as the heat maps, so the three
/// layers (occupancy, pressure, cascade) line up in a report.
pub fn render_cascade(dims: GridDims, trips: &[CascadeTrip]) -> String {
    let mut depth = vec![0u32; dims.cell_count()];
    for &(_, cell, d) in trips {
        let k = dims.index(cell);
        depth[k] = depth[k].max(d);
    }
    let mut out = String::new();
    for j in (0..dims.ny()).rev() {
        for i in 0..dims.nx() {
            let d = depth[dims.index(CellId::new(i, j))];
            let ch = if d == 0 {
                '.'
            } else {
                char::from_digit(d.min(9), 10).expect("digit in range")
            };
            out.push(ch);
            out.push(' ');
        }
        out.pop();
        out.push('\n');
    }
    out
}

/// Renders a component-membership map from [`component_map`]'s labels: each
/// cell shows its connected-component identifier (`0`–`9`, clamped), `.` for
/// failed cells. North at the top, the shared orientation of this module —
/// during a split-brain episode the islands read directly off the picture.
///
/// [`component_map`]: cellflow_core::component_map
pub fn render_components(dims: GridDims, components: &[Option<u32>]) -> String {
    assert_eq!(
        components.len(),
        dims.cell_count(),
        "component labels must match the grid"
    );
    let mut out = String::new();
    for j in (0..dims.ny()).rev() {
        for i in 0..dims.nx() {
            let ch = match components[dims.index(CellId::new(i, j))] {
                None => '.',
                Some(c) => char::from_digit(c.min(9), 10).expect("digit in range"),
            };
            out.push(ch);
            out.push(' ');
        }
        out.pop();
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_core::{Params, System};

    fn corridor() -> System {
        System::new(
            SystemConfig::new(
                GridDims::new(4, 2),
                CellId::new(3, 0),
                Params::from_milli(250, 50, 200).unwrap(),
            )
            .unwrap()
            .with_source(CellId::new(0, 0)),
        )
    }

    #[test]
    fn accumulates_where_traffic_flows() {
        let mut sys = corridor();
        let mut heat = OccupancyGrid::new(sys.config().dims());
        for _ in 0..150 {
            sys.step();
            heat.record(sys.config(), sys.state());
        }
        assert_eq!(heat.rounds(), 150);
        // All traffic lives on row 0; row 1 never sees an entity.
        for i in 0..4 {
            assert_eq!(heat.entity_rounds(CellId::new(i, 1)), 0, "row 1 cell {i}");
        }
        assert!(heat.entity_rounds(CellId::new(0, 0)) > 0);
        assert_eq!(heat.hottest().j(), 0);
        // Render shape: 2 lines of 4 cells; top line (row 1) all dots.
        let pic = heat.render();
        let lines: Vec<&str> = pic.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], ". . . .");
        assert!(lines[1].chars().any(|c| c.is_ascii_digit()));
    }

    #[test]
    fn empty_grid_renders_dots() {
        let heat = OccupancyGrid::new(GridDims::square(2));
        assert_eq!(heat.render(), ". .\n. .\n");
        assert_eq!(heat.mean_occupancy(CellId::new(0, 0)), 0.0);
        assert_eq!(heat.hottest(), CellId::new(0, 0));
    }

    #[test]
    #[should_panic(expected = "grid mismatch")]
    fn mismatched_grid_panics() {
        let sys = corridor();
        let mut heat = OccupancyGrid::new(GridDims::square(8));
        heat.record(sys.config(), sys.state());
    }

    #[test]
    fn pressure_peaks_track_sustained_congestion() {
        let mut sys = corridor();
        let mut pressure = PressureGrid::new(sys.config().dims());
        for _ in 0..150 {
            sys.step();
            pressure.record(&sys);
        }
        assert_eq!(pressure.rounds(), 150);
        // Pressure builds only on the loaded corridor row.
        assert!(pressure.peak(CellId::new(0, 0)) > 0);
        for i in 0..4 {
            assert_eq!(pressure.peak(CellId::new(i, 1)), 0, "row 1 cell {i}");
        }
        let pic = pressure.render();
        let lines: Vec<&str> = pic.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], ". . . .");
        assert!(lines[1].chars().any(|c| c.is_ascii_digit()));
    }

    #[test]
    fn component_map_renders_islands() {
        let dims = GridDims::square(3);
        // Left column one component, the rest another; center cell failed.
        let labels = [
            Some(0),
            Some(1),
            Some(1), // j = 0 row: (0,0) (1,0) (2,0)
            Some(0),
            None,
            Some(1), // j = 1
            Some(0),
            Some(1),
            Some(1), // j = 2
        ];
        let pic = render_components(dims, &labels);
        assert_eq!(pic, "0 1 1\n0 . 1\n0 1 1\n");
    }

    #[test]
    #[should_panic(expected = "labels must match the grid")]
    fn component_map_rejects_wrong_length() {
        render_components(GridDims::square(3), &[None; 4]);
    }

    #[test]
    fn cascade_map_shows_deepest_trip_per_cell() {
        let dims = GridDims::square(3);
        let trips = [
            (10, CellId::new(0, 0), 1),
            (14, CellId::new(1, 0), 2),
            (20, CellId::new(1, 0), 1), // shallower re-trip doesn't regress
        ];
        let pic = render_cascade(dims, &trips);
        assert_eq!(pic, ". . .\n. . .\n1 2 .\n");
        assert_eq!(render_cascade(dims, &[]), ". . .\n. . .\n. . .\n");
    }
}
