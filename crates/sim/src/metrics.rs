//! Throughput and congestion metrics (paper §IV).
//!
//! The paper defines the **K-round throughput** as the number of entities
//! arriving at the target over `K` rounds divided by `K`, and the **average
//! throughput** as its large-`K` limit. [`Metrics`] records per-round counts
//! so both (and windowed variants) can be computed after a run.

use cellflow_core::RoundEvents;

use crate::failure::FailureEvents;

/// Per-round counters accumulated over a simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Metrics {
    consumed_per_round: Vec<u32>,
    inserted_per_round: Vec<u32>,
    blocked_per_round: Vec<u32>,
    grants_per_round: Vec<u32>,
    moved_per_round: Vec<u32>,
    // `default` (not `skip`): JSON written before failure history was
    // serialized deserializes to an empty history instead of erroring.
    #[cfg_attr(feature = "serde", serde(default))]
    failures_per_round: Vec<FailureEvents>,
}

impl Metrics {
    /// Empty metrics (zero rounds recorded).
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one round's events.
    pub fn record(&mut self, events: &RoundEvents) {
        self.consumed_per_round.push(events.consumed.len() as u32);
        self.inserted_per_round.push(events.inserted.len() as u32);
        self.blocked_per_round.push(events.blocked.len() as u32);
        self.grants_per_round.push(events.grants.len() as u32);
        self.moved_per_round.push(events.moved.len() as u32);
    }

    /// Records the round's failure-model activity alongside the protocol
    /// events, so traces carry *why* throughput dipped, not just that it
    /// did. Call once per round, before or after [`Metrics::record`].
    pub fn record_failures(&mut self, events: &FailureEvents) {
        self.failures_per_round.push(events.clone());
    }

    /// Per-round failure-model activity, when recorded (empty otherwise).
    pub fn failure_history(&self) -> &[FailureEvents] {
        &self.failures_per_round
    }

    /// Total cells crashed by the failure model over the run.
    pub fn failed_total(&self) -> u64 {
        self.failures_per_round
            .iter()
            .map(|e| e.failed.len() as u64)
            .sum()
    }

    /// Total cells recovered by the failure model over the run.
    pub fn recovered_total(&self) -> u64 {
        self.failures_per_round
            .iter()
            .map(|e| e.recovered.len() as u64)
            .sum()
    }

    /// Rounds recorded so far (the `K` of K-round throughput).
    pub fn rounds(&self) -> u64 {
        self.consumed_per_round.len() as u64
    }

    /// Total entities consumed by the target.
    pub fn consumed_total(&self) -> u64 {
        self.consumed_per_round.iter().map(|&c| c as u64).sum()
    }

    /// Total entities inserted by sources.
    pub fn inserted_total(&self) -> u64 {
        self.inserted_per_round.iter().map(|&c| c as u64).sum()
    }

    /// Total blocked signals (a congestion indicator).
    pub fn blocked_total(&self) -> u64 {
        self.blocked_per_round.iter().map(|&c| c as u64).sum()
    }

    /// Total grants issued.
    pub fn grants_total(&self) -> u64 {
        self.grants_per_round.iter().map(|&c| c as u64).sum()
    }

    /// The paper's K-round throughput over *all* recorded rounds:
    /// `consumed_total / rounds`. Returns 0 for an empty record.
    pub fn throughput(&self) -> f64 {
        if self.rounds() == 0 {
            0.0
        } else {
            self.consumed_total() as f64 / self.rounds() as f64
        }
    }

    /// K-round throughput of the **last** `k` rounds (a steady-state estimate
    /// that skips the initial fill transient). Uses all rounds if fewer than
    /// `k` are recorded.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn tail_throughput(&self, k: usize) -> f64 {
        assert!(k > 0, "window must be positive");
        let n = self.consumed_per_round.len();
        let window = &self.consumed_per_round[n.saturating_sub(k)..];
        if window.is_empty() {
            0.0
        } else {
            window.iter().map(|&c| c as u64).sum::<u64>() as f64 / window.len() as f64
        }
    }

    /// Mean number of blocked signals per round.
    pub fn mean_blocked(&self) -> f64 {
        if self.rounds() == 0 {
            0.0
        } else {
            self.blocked_total() as f64 / self.rounds() as f64
        }
    }

    /// Per-round consumption history (for time-series plots).
    pub fn consumed_history(&self) -> &[u32] {
        &self.consumed_per_round
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_core::{EntityId, Transfer};
    use cellflow_grid::CellId;

    fn events(consumed: usize, inserted: usize, blocked: usize) -> RoundEvents {
        RoundEvents {
            consumed: (0..consumed).map(|k| EntityId(k as u64)).collect(),
            transfers: vec![Transfer {
                entity: EntityId(99),
                from: CellId::new(0, 0),
                to: CellId::new(1, 0),
            }],
            inserted: (0..inserted)
                .map(|k| (CellId::new(0, 0), EntityId(100 + k as u64)))
                .collect(),
            grants: vec![(CellId::new(1, 0), CellId::new(0, 0))],
            blocked: (0..blocked)
                .map(|_| (CellId::new(1, 0), CellId::new(0, 0)))
                .collect(),
            moved: vec![CellId::new(0, 0)],
        }
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new();
        assert_eq!(m.rounds(), 0);
        assert_eq!(m.throughput(), 0.0);
        assert_eq!(m.tail_throughput(10), 0.0);
        assert_eq!(m.mean_blocked(), 0.0);
    }

    #[test]
    fn throughput_is_consumed_over_rounds() {
        let mut m = Metrics::new();
        m.record(&events(0, 1, 0));
        m.record(&events(2, 1, 1));
        m.record(&events(1, 0, 2));
        assert_eq!(m.rounds(), 3);
        assert_eq!(m.consumed_total(), 3);
        assert_eq!(m.inserted_total(), 2);
        assert_eq!(m.blocked_total(), 3);
        assert_eq!(m.grants_total(), 3);
        assert!((m.throughput() - 1.0).abs() < 1e-12);
        assert!((m.mean_blocked() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_throughput_windows() {
        let mut m = Metrics::new();
        for consumed in [0, 0, 0, 3, 3] {
            m.record(&events(consumed, 0, 0));
        }
        assert!((m.tail_throughput(2) - 3.0).abs() < 1e-12);
        assert!((m.tail_throughput(5) - 1.2).abs() < 1e-12);
        assert!((m.tail_throughput(100) - 1.2).abs() < 1e-12); // clamps
        assert_eq!(m.consumed_history(), &[0, 0, 0, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        Metrics::new().tail_throughput(0);
    }

    #[test]
    fn failure_history_accumulates() {
        let mut m = Metrics::new();
        m.record_failures(&FailureEvents::default());
        m.record_failures(&FailureEvents {
            failed: vec![CellId::new(1, 1), CellId::new(2, 2)],
            recovered: vec![],
            corrupted: vec![],
        });
        m.record_failures(&FailureEvents {
            failed: vec![],
            recovered: vec![CellId::new(1, 1)],
            corrupted: vec![],
        });
        assert_eq!(m.failure_history().len(), 3);
        assert_eq!(m.failed_total(), 2);
        assert_eq!(m.recovered_total(), 1);
        assert!(m.failure_history()[0].is_empty());
    }
}
