//! Multi-threaded parameter sweeps.
//!
//! Figure regeneration runs dozens of independent simulations (e.g. Figure 7
//! is 14 `rs` values × 4 velocities); [`parallel_map`] fans them out over a
//! thread pool with deterministic result ordering.

/// Applies `f` to every item on `threads` worker threads, returning results
/// in input order. Falls back to a sequential loop for `threads <= 1`.
///
/// Each worker owns a disjoint contiguous chunk of the input and writes into
/// the matching chunk of the result buffer — no lock anywhere on the result
/// path (the previous design serialized every item's write through a single
/// `Mutex<Vec<_>>`). Results are deterministic as long as `f` is (each
/// item's seed should derive from the item, not from scheduling).
///
/// # Panics
///
/// Propagates panics from `f` (the scope join panics).
///
/// ```
/// use cellflow_sim::sweep::parallel_map;
///
/// let squares = parallel_map(&[1u64, 2, 3, 4, 5], 4, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(items.len());
    let chunk = items.len().div_ceil(workers);
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(items.len(), || None);
    let f = &f;
    crossbeam::thread::scope(|scope| {
        for (input, output) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (item, slot) in input.iter().zip(output.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("sweep worker panicked");
    results
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

/// The number of worker threads to use by default: the machine's available
/// parallelism, capped at 16.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(
            parallel_map(&items, 1, |&x| x + 1),
            parallel_map(&items, 8, |&x| x + 1)
        );
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u64> = vec![];
        assert!(parallel_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u64], 8, |&x| x), vec![7]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still land in the right slots.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, 4, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 10
        });
        assert_eq!(out, items.iter().map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
        assert!(default_threads() <= 16);
    }

    #[test]
    fn simulations_in_parallel_match_sequential() {
        use crate::scenario::{fig7_point, run_spec};
        let specs: Vec<_> = [50i64, 150, 250]
            .iter()
            .map(|&rs| fig7_point(rs, 200))
            .collect();
        let par = parallel_map(&specs, 3, |s| run_spec(s, 150, 1));
        let seq: Vec<_> = specs.iter().map(|s| run_spec(s, 150, 1)).collect();
        assert_eq!(par, seq);
    }
}
