//! Cascading-failure campaigns: drive a finite-capacity grid into
//! endogenous overload, watch the cascade propagate, and report what the
//! monitors and heat maps saw — deterministically, so two runs of the same
//! scenario produce byte-identical reports.
//!
//! The campaign is precomputed by
//! [`expand_overload`](cellflow_core::expand_overload) into an ordinary
//! scripted [`FaultPlan`]; the simulation then replays it with the full
//! monitor suite attached, plus `settle` fault-free rounds at the end so
//! the stabilization stopwatch (Corollary 7's `O(N²)` clock) has room to
//! expire. Running the same scenario with a [`BackoffPolicy`] swaps every
//! overload crash for a randomized pause — the comparison
//! `cellflow chaos --cascade` prints.

use std::fmt::Write as _;

use cellflow_core::certify::fnv1a;
use cellflow_core::monitor::{
    stabilization_bound, CapacityMonitor, ConservationMonitor, Monitor, RoutingMonitor,
    SafetyMonitor, StabilizationMonitor, StabilizationProbe,
};
use cellflow_core::overload::{check_capacity, BackoffPolicy, CascadeOutcome, OverloadTrigger};
use cellflow_core::{expand_overload, FaultCensus, FaultPlan, SystemConfig};

use crate::heatmap::{render_cascade, OccupancyGrid, PressureGrid};
use crate::{SimTelemetry, Simulation};

/// One cascade campaign: a base fault script on a finite-capacity grid,
/// an overload trigger, and at most one mitigation discipline.
#[derive(Clone, Debug)]
pub struct CascadeScenario {
    /// The grid under test; must have a finite capacity
    /// ([`SystemConfig::with_capacity`]).
    pub config: SystemConfig,
    /// The exogenous script that seeds the congestion.
    pub base: FaultPlan,
    /// When sustained occupancy trips a cell.
    pub trigger: OverloadTrigger,
    /// Randomized backoff mitigation; `None` lets cells overload-crash.
    pub backoff: Option<BackoffPolicy>,
    /// Optimistic restart delay for overload crashes (exclusive with
    /// `backoff`); what a supervisor's restart policy then disciplines.
    pub restart_after: Option<u64>,
    /// Rounds of active campaign (overloads may trip anywhere in here).
    pub rounds: u64,
    /// Fault-free tail rounds for the stabilization clock to expire in.
    pub settle: u64,
    /// Shard workers for the sparse engine (1 = sequential). Any value
    /// produces the same byte-identical report; >1 exercises the sharded
    /// row-band path.
    pub workers: usize,
}

/// What one campaign did, plus everything needed to judge and render it.
#[derive(Clone, Debug)]
pub struct CascadeReport {
    /// The expanded campaign: scripted plan, counters, trip log.
    pub outcome: CascadeOutcome,
    /// Event census of the expanded plan.
    pub census: FaultCensus,
    /// Entities the target consumed over the whole run.
    pub consumed: u64,
    /// Total rounds driven (`rounds + settle`).
    pub rounds: u64,
    /// The stabilization bound (`2N² + 2`) the run is judged against.
    pub bound: u64,
    /// Rounds from the last disturbance to re-stabilization, if reached.
    pub rounds_to_stabilize: Option<u64>,
    /// Each monitor's closing summary line.
    pub monitor_summaries: Vec<String>,
    /// Monitor violations accumulated over the run.
    pub violations: usize,
    /// Whether the final state satisfies occupancy ≤ capacity.
    pub capacity_ok_final: bool,
    /// Rendered occupancy heat map.
    pub occupancy: String,
    /// Rendered peak-pressure heat map.
    pub pressure: String,
    /// Rendered cascade-depth map.
    pub cascade: String,
}

impl CascadeReport {
    /// `true` iff the run re-stabilized within the bound after the last
    /// disturbance — the campaign-level reading of Corollary 7.
    pub fn stabilized_in_bound(&self) -> bool {
        self.rounds_to_stabilize.is_some_and(|r| r <= self.bound)
    }

    /// A deterministic plain-text report: byte-identical for equal
    /// reports, sealed by an FNV-1a checksum like
    /// [`Certificate::render`](cellflow_core::Certificate::render).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "cascade campaign report");
        let _ = writeln!(s, "rounds driven: {}", self.rounds);
        let _ = writeln!(s, "trips: {}", self.outcome.trips.len());
        for &(round, cell, depth) in &self.outcome.trips {
            let _ = writeln!(
                s,
                "  round {:>4}  cell ({},{})  depth {}",
                round,
                cell.i(),
                cell.j(),
                depth
            );
        }
        let st = self.outcome.stats;
        let _ = writeln!(
            s,
            "overload crashes: {}  sheds: {}  backoff activations: {}  max cascade depth: {}",
            st.overload_crashes, st.sheds, st.backoff_activations, st.max_cascade_depth
        );
        let _ = writeln!(
            s,
            "census: crashes={} recoveries={} hard={} kills={} corruptions={} overload={}",
            self.census.crashes,
            self.census.recoveries,
            self.census.hard_crashes,
            self.census.kills,
            self.census.corruptions,
            self.census.overload_crashes
        );
        let _ = writeln!(s, "consumed: {}", self.consumed);
        let restab = match self.rounds_to_stabilize {
            Some(r) => format!("{r} rounds after last disturbance"),
            None => "NO".to_string(),
        };
        let _ = writeln!(s, "stabilization bound: {} rounds", self.bound);
        let _ = writeln!(s, "re-stabilized: {restab}");
        let _ = writeln!(s, "monitor violations: {}", self.violations);
        for m in &self.monitor_summaries {
            let _ = writeln!(s, "  {m}");
        }
        let _ = writeln!(
            s,
            "capacity at end: {}",
            if self.capacity_ok_final { "OK" } else { "VIOLATED" }
        );
        let _ = writeln!(s, "occupancy:");
        s.push_str(&self.occupancy);
        let _ = writeln!(s, "pressure peaks:");
        s.push_str(&self.pressure);
        let _ = writeln!(s, "cascade depth:");
        s.push_str(&self.cascade);
        let checksum = fnv1a(s.as_bytes());
        let _ = writeln!(s, "checksum: {checksum:016x}");
        s
    }
}

/// Runs `scenario` end to end. See [`run_cascade_with`] for the telemetry
/// variant.
///
/// # Panics
///
/// Panics if the scenario's config has no capacity, or on the
/// [`expand_overload`] mitigation conflicts.
pub fn run_cascade(scenario: &CascadeScenario) -> CascadeReport {
    run_cascade_with(scenario, None)
}

/// Runs `scenario`, optionally folding the campaign's counters and
/// per-round activity into `telemetry`'s registry and event stream.
pub fn run_cascade_with(
    scenario: &CascadeScenario,
    telemetry: Option<SimTelemetry>,
) -> CascadeReport {
    run_cascade_recorded(scenario, telemetry, None).0
}

/// [`run_cascade_with`], optionally capturing a flight recording of every
/// driven round. Returns the sealed `.rec` bytes when a recorder was
/// supplied — byte-identical for reruns of the same scenario, since the
/// whole campaign is deterministic.
pub fn run_cascade_recorded(
    scenario: &CascadeScenario,
    telemetry: Option<SimTelemetry>,
    recorder: Option<Box<cellflow_core::snapshot::Recorder>>,
) -> (CascadeReport, Option<Vec<u8>>) {
    let config = &scenario.config;
    assert!(
        config.capacity().is_some(),
        "cascade campaigns need a finite capacity"
    );
    let outcome = expand_overload(
        config,
        &scenario.base,
        scenario.trigger,
        scenario.backoff,
        scenario.restart_after,
        scenario.rounds,
    );

    let probe = StabilizationProbe::new();
    let monitors: Vec<Box<dyn Monitor>> = vec![
        Box::new(SafetyMonitor::new()),
        Box::new(RoutingMonitor::new()),
        Box::new(ConservationMonitor::new()),
        Box::new(StabilizationMonitor::new(config).with_probe(&probe)),
        Box::new(CapacityMonitor::new(config)),
    ];

    let mut sim = Simulation::new(config.clone(), 0)
        .with_failure_model(outcome.plan.clone())
        .with_monitors(monitors)
        .with_safety_checks(false)
        .with_workers(scenario.workers.max(1));
    if let Some(tel) = telemetry {
        tel.record_cascade(&outcome.stats, &outcome.trips);
        sim = sim.with_telemetry(tel);
    }
    if let Some(rec) = recorder {
        sim = sim.with_recorder(rec);
    }

    let dims = config.dims();
    let mut occupancy = OccupancyGrid::new(dims);
    let mut pressure = PressureGrid::new(dims);
    let total_rounds = scenario.rounds + scenario.settle;
    for _ in 0..total_rounds {
        sim.step();
        occupancy.record(config, sim.system().state());
        pressure.record(sim.system());
    }

    let recording = sim.take_recorder().map(|r| r.finish());
    let census = outcome.plan.census();
    let capacity_ok_final = check_capacity(config, sim.system().state()).is_ok();
    let report = CascadeReport {
        census,
        consumed: sim.system().consumed_total(),
        rounds: total_rounds,
        bound: stabilization_bound(config),
        rounds_to_stabilize: probe.rounds_to_stabilize(),
        monitor_summaries: sim.monitor_summaries(),
        violations: sim.violations().len(),
        capacity_ok_final,
        occupancy: occupancy.render(),
        pressure: pressure.render(),
        cascade: render_cascade(dims, &outcome.trips),
        outcome,
    };
    (report, recording)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_core::Params;
    use cellflow_grid::{CellId, GridDims};

    fn scenario(backoff: Option<BackoffPolicy>) -> CascadeScenario {
        let config = SystemConfig::new(
            GridDims::square(5),
            CellId::new(1, 4),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0))
        .with_capacity(2);
        CascadeScenario {
            config,
            base: FaultPlan::new().crash_at(8, CellId::new(1, 2)),
            trigger: OverloadTrigger::new(2, 2),
            backoff,
            restart_after: None,
            rounds: 160,
            settle: 80,
            workers: 1,
        }
    }

    #[test]
    fn cascade_run_reports_crashes_and_backoff_mitigates() {
        let cascade = run_cascade(&scenario(None));
        assert!(cascade.outcome.stats.overload_crashes > 0);
        assert_eq!(cascade.outcome.stats.backoff_activations, 0);
        assert!(cascade.census.overload_crashes > 0);

        let mitigated = run_cascade(&scenario(Some(BackoffPolicy {
            base: 4,
            max: 32,
            seed: 0xFE1D,
        })));
        // Backoff strictly reduces overload crashes (to zero: pauses are
        // recorded as plain Crash/Recover pairs) and actually activates.
        assert!(
            mitigated.outcome.stats.overload_crashes
                < cascade.outcome.stats.overload_crashes
        );
        assert_eq!(mitigated.outcome.stats.overload_crashes, 0);
        assert!(mitigated.outcome.stats.backoff_activations > 0);
    }

    #[test]
    fn cascade_stabilizes_within_bound_after_settling() {
        let report = run_cascade(&scenario(None));
        assert!(
            report.stabilized_in_bound(),
            "rounds_to_stabilize={:?} bound={}",
            report.rounds_to_stabilize,
            report.bound
        );
    }

    #[test]
    fn reports_are_byte_identical_across_runs() {
        let a = run_cascade(&scenario(None)).render();
        let b = run_cascade(&scenario(None)).render();
        assert_eq!(a, b);
        assert!(a.contains("checksum: "));
        // The cascade-depth map marks at least one tripped cell.
        assert!(a.contains("cascade depth:"));
    }

    #[test]
    fn sharded_campaign_report_is_byte_identical_to_sequential() {
        let sequential = run_cascade(&scenario(None)).render();
        let mut sharded = scenario(None);
        sharded.workers = 4;
        assert_eq!(run_cascade(&sharded).render(), sequential);
    }

    #[test]
    #[should_panic(expected = "cascade campaigns need a finite capacity")]
    fn capacity_free_config_is_rejected() {
        let mut s = scenario(None);
        s.config = SystemConfig::new(
            GridDims::square(5),
            CellId::new(1, 4),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0));
        run_cascade(&s);
    }
}
