//! Telemetry binding for the reference simulation.
//!
//! [`SimTelemetry`] mirrors the simulation's per-round activity into a
//! [`Registry`] (counters + a round-latency histogram) and unifies the
//! trace vocabulary ([`TraceEvent`](crate::TraceEvent)-shaped protocol
//! events, failure-model activity, monitor verdicts) into the same
//! schema-versioned JSONL [`Event`] stream the `cellflow-net` runtime
//! emits — one inspector reads both. Monitor violations are trigger
//! events: when the attached [`EventLog`] carries a flight recorder, the
//! first violation dumps the last K rounds of history to disk.
//!
//! Attaching a [`SimTelemetry`] to a [`Simulation`](crate::Simulation)
//! also registers the core engine's phase timers
//! ([`PhaseTimers`](cellflow_telemetry::PhaseTimers)) in the same
//! registry, so Route/Signal/Move latency lands beside the sim counters.

use std::collections::BTreeMap;

use cellflow_core::monitor::MonitorViolation;
use cellflow_core::overload::{CascadeStats, CascadeTrip};
use cellflow_core::{RoundEvents, RoundTrace};
use cellflow_grid::CellId;
use cellflow_telemetry::trace::cell_ordinal;
use cellflow_telemetry::{
    Counter, Event, EventLog, Histogram, Registry, SpanBuilder, SpanKind, Tracer,
};

use crate::failure::FailureEvents;

/// The simulation's metric handles and structured event sink.
pub struct SimTelemetry {
    registry: Registry,
    /// Wall-clock nanoseconds of each `update` transition.
    pub(crate) round_ns: Histogram,
    rounds: Counter,
    consumed: Counter,
    inserted: Counter,
    blocked: Counter,
    moved: Counter,
    failures: Counter,
    violations: Counter,
    overload_crashes: Counter,
    sheds: Counter,
    backoff_activations: Counter,
    cascade_depth: Histogram,
    partition_rounds: Counter,
    cut_edge_rounds: Counter,
    partition_heals: Counter,
    signals: bool,
    log: EventLog,
}

impl SimTelemetry {
    /// Registers the simulation's metrics on `registry` (under
    /// `cellflow_sim_*` names) with a disabled event log.
    pub fn new(registry: &Registry) -> SimTelemetry {
        SimTelemetry {
            registry: registry.clone(),
            round_ns: registry.histogram("cellflow_sim_round_ns"),
            rounds: registry.counter("cellflow_sim_rounds_total"),
            consumed: registry.counter("cellflow_sim_consumed_total"),
            inserted: registry.counter("cellflow_sim_inserted_total"),
            blocked: registry.counter("cellflow_sim_blocked_total"),
            moved: registry.counter("cellflow_sim_moved_total"),
            failures: registry.counter("cellflow_sim_failures_total"),
            violations: registry.counter("cellflow_sim_violations_total"),
            overload_crashes: registry.counter("cellflow_sim_overload_crashes_total"),
            sheds: registry.counter("cellflow_sim_sheds_total"),
            backoff_activations: registry.counter("cellflow_sim_backoff_activations_total"),
            cascade_depth: registry.histogram("cellflow_sim_cascade_depth"),
            partition_rounds: registry.counter("cellflow_sim_partition_rounds_total"),
            cut_edge_rounds: registry.counter("cellflow_sim_cut_edge_rounds_total"),
            partition_heals: registry.counter("cellflow_sim_partition_heals_total"),
            signals: false,
            log: EventLog::new(),
        }
    }

    /// Folds one partition campaign's schedule into the registry: rounds
    /// with at least one active cut, cut edge-rounds (one directed edge
    /// suppressed for one round), and whether the campaign healed.
    pub fn record_partition(&self, schedule: &cellflow_core::PartitionSchedule) {
        let active = (0..schedule.rounds()).filter(|&r| schedule.active(r)).count() as u64;
        self.partition_rounds.add(active);
        self.cut_edge_rounds.add(schedule.cut_edge_rounds());
        if active > 0 && !schedule.active(schedule.rounds().saturating_sub(1)) {
            self.partition_heals.add(1);
        }
    }

    /// Folds one overload campaign's counters into the registry: crash,
    /// shed, and backoff totals plus a histogram sample per trip depth.
    pub fn record_cascade(&self, stats: &CascadeStats, trips: &[CascadeTrip]) {
        self.overload_crashes.add(stats.overload_crashes);
        self.sheds.add(stats.sheds);
        self.backoff_activations.add(stats.backoff_activations);
        for &(_, _, depth) in trips {
            self.cascade_depth.observe(depth as u64);
        }
    }

    /// Attaches the structured event sink (stream and/or flight recorder).
    pub fn with_event_log(mut self, log: EventLog) -> SimTelemetry {
        self.log = log;
        self
    }

    /// Also stream grant/block signal events (voluminous; off by default,
    /// mirroring [`TraceRecorder::with_signals`](crate::TraceRecorder)).
    pub fn with_signals(mut self) -> SimTelemetry {
        self.signals = true;
        self
    }

    /// The registry the metric handles live in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Flushes the event stream.
    pub fn flush(&mut self) {
        self.log.flush();
    }

    /// `(events emitted, flight dumps written)` so far.
    pub fn log_stats(&self) -> (u64, u64) {
        (self.log.events_emitted(), self.log.dumps_written())
    }

    /// Ingests one round: counters, then the unified event stream in trace
    /// order (faults, inserts, transfers, consumes, optional signals, fresh
    /// monitor verdicts, rollup). `round` is 1-based, matching the
    /// monitors' numbering and the net collector's stream.
    pub(crate) fn observe_round(
        &mut self,
        round: u64,
        failures: &FailureEvents,
        events: &RoundEvents,
        fresh_violations: &[MonitorViolation],
    ) {
        self.rounds.inc();
        self.consumed.add(events.consumed.len() as u64);
        self.inserted.add(events.inserted.len() as u64);
        self.blocked.add(events.blocked.len() as u64);
        self.moved.add(events.moved.len() as u64);
        self.failures.add(failures.failed.len() as u64);
        self.violations.add(fresh_violations.len() as u64);

        for &cell in &failures.failed {
            self.log.emit(round, Event::Fail { cell });
        }
        for &cell in &failures.recovered {
            self.log.emit(round, Event::Recover { cell });
        }
        for &cell in &failures.corrupted {
            self.log.emit(round, Event::Corrupt { cell });
        }
        for &(cell, entity) in &events.inserted {
            self.log.emit(
                round,
                Event::Insert {
                    cell,
                    entity: entity.0,
                },
            );
        }
        for t in &events.transfers {
            self.log.emit(
                round,
                Event::Transfer {
                    entity: t.entity.0,
                    from: t.from,
                    to: t.to,
                },
            );
        }
        for &entity in &events.consumed {
            self.log.emit(round, Event::Consume { entity: entity.0 });
        }
        if self.signals {
            for &(granter, grantee) in &events.grants {
                self.log.emit(round, Event::Grant { granter, grantee });
            }
            for &(blocker, blocked) in &events.blocked {
                self.log.emit(round, Event::Block { blocker, blocked });
            }
        }
        for v in fresh_violations {
            self.log.emit(
                round,
                Event::Violation {
                    monitor: v.monitor.to_string(),
                    detail: v.detail.clone(),
                },
            );
        }
        self.log.emit(
            round,
            Event::RoundSummary {
                consumed: events.consumed.len() as u64,
                inserted: events.inserted.len() as u64,
                blocked: events.blocked.len() as u64,
                moved: events.moved.len() as u64,
            },
        );
    }

    /// [`Self::observe_round`] plus the causal span tree: a round span
    /// carrying the engine's phase attribution (route/signal/move children
    /// with deterministic swept-cell work, shard leaves when a phase fanned
    /// out), fault leaves, and one leaf per event-bearing cell whose id is
    /// the [`Tracer::cell_round_id`] linking key. Spans are appended after
    /// the round's protocol events at the same round tag, so the stream
    /// stays round-monotonic, and are only emitted here — with the tracer
    /// absent the stream is byte-identical to previous releases.
    pub(crate) fn observe_round_traced(
        &mut self,
        round: u64,
        failures: &FailureEvents,
        events: &RoundEvents,
        fresh_violations: &[MonitorViolation],
        tracer: &Tracer,
        rt: RoundTrace,
    ) {
        self.observe_round(round, failures, events, fresh_violations);
        if !self.log.is_enabled() {
            return;
        }
        let mut b = SpanBuilder::new(round);
        b.open(tracer.span_id(round, SpanKind::Round, 0), SpanKind::Round);
        b.add_work(rt.route_cells + rt.signal_cells + rt.move_cells);
        b.add_ns(rt.route_ns + rt.signal_ns + rt.move_ns);
        for (kind, cells, bands, ns) in [
            (SpanKind::Route, rt.route_cells, rt.route_bands, rt.route_ns),
            (
                SpanKind::Signal,
                rt.signal_cells,
                rt.signal_bands,
                rt.signal_ns,
            ),
            (SpanKind::Move, rt.move_cells, rt.move_bands, rt.move_ns),
        ] {
            b.open(tracer.span_id(round, kind, 0), kind);
            b.add_work(cells);
            b.add_ns(ns);
            if bands > 1 {
                // Reconstruct the deterministic band split the engine used:
                // `chunks(len.div_ceil(bands))` over the sorted work list.
                let chunk = (cells as usize).div_ceil(bands as usize);
                let mut remaining = cells as usize;
                let mut k = 0u64;
                while remaining > 0 {
                    let take = remaining.min(chunk);
                    b.leaf(
                        tracer.span_id(round, SpanKind::Shard, kind.code() * 1024 + k),
                        SpanKind::Shard,
                        None,
                        take as u64,
                        0,
                    );
                    remaining -= take;
                    k += 1;
                }
            }
            b.close();
        }
        for &cell in &failures.failed {
            b.leaf(
                tracer.span_id(round, SpanKind::Fault, cell_ordinal(cell)),
                SpanKind::Fault,
                Some(cell),
                2,
                0,
            );
        }
        for &cell in &failures.recovered {
            b.leaf(
                tracer.span_id(round, SpanKind::Recover, cell_ordinal(cell)),
                SpanKind::Recover,
                Some(cell),
                1,
                0,
            );
        }
        for &cell in &failures.corrupted {
            b.leaf(
                tracer.span_id(round, SpanKind::Corrupt, cell_ordinal(cell)),
                SpanKind::Corrupt,
                Some(cell),
                1,
                0,
            );
        }
        // One leaf per event-bearing cell, work = its protocol events this
        // round. Aggregated first so each cell-round id appears exactly
        // once (the causality suite rejects duplicate span ids).
        let mut touched: BTreeMap<(u16, u16), u64> = BTreeMap::new();
        for &(cell, _) in &events.inserted {
            *touched.entry((cell.i(), cell.j())).or_default() += 1;
        }
        for t in &events.transfers {
            *touched.entry((t.from.i(), t.from.j())).or_default() += 1;
        }
        if self.signals {
            for &(granter, _) in &events.grants {
                *touched.entry((granter.i(), granter.j())).or_default() += 1;
            }
            for &(blocker, _) in &events.blocked {
                *touched.entry((blocker.i(), blocker.j())).or_default() += 1;
            }
        }
        for (&(i, j), &work) in &touched {
            let cell = CellId::new(i, j);
            b.leaf(
                tracer.cell_round_id(round, cell),
                SpanKind::Cell,
                Some(cell),
                work,
                0,
            );
        }
        for event in b.finish() {
            self.log.emit(round, event);
        }
    }
}

impl std::fmt::Debug for SimTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (events, dumps) = self.log_stats();
        f.debug_struct("SimTelemetry")
            .field("registry", &self.registry)
            .field("signals", &self.signals)
            .field("events", &events)
            .field("dumps", &dumps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_core::{EntityId, Transfer};
    use cellflow_grid::CellId;
    use cellflow_telemetry::SharedBuffer;

    #[test]
    fn rounds_flow_into_counters_and_the_stream() {
        let buffer = SharedBuffer::new();
        let registry = Registry::new();
        let mut tel = SimTelemetry::new(&registry)
            .with_event_log(EventLog::new().with_stream(Box::new(buffer.clone())));
        let events = RoundEvents {
            consumed: vec![EntityId(7)],
            transfers: vec![Transfer {
                entity: EntityId(7),
                from: CellId::new(0, 0),
                to: CellId::new(1, 0),
            }],
            inserted: vec![(CellId::new(0, 0), EntityId(8))],
            grants: vec![(CellId::new(1, 0), CellId::new(0, 0))],
            blocked: vec![],
            moved: vec![CellId::new(0, 0)],
        };
        tel.observe_round(1, &FailureEvents::default(), &events, &[]);
        tel.flush();

        let stats = cellflow_telemetry::validate_stream(&buffer.contents()).unwrap();
        // transfer + insert + consume + round_summary; grants are opt-in.
        assert_eq!(stats.events, 4);
        let names: Vec<String> = registry
            .snapshot()
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        assert!(names.contains(&"cellflow_sim_consumed_total".to_string()));
    }

    #[test]
    fn signals_are_opt_in() {
        let buffer = SharedBuffer::new();
        let mut tel = SimTelemetry::new(&Registry::disabled())
            .with_signals()
            .with_event_log(EventLog::new().with_stream(Box::new(buffer.clone())));
        let events = RoundEvents {
            grants: vec![(CellId::new(1, 0), CellId::new(0, 0))],
            blocked: vec![(CellId::new(2, 0), CellId::new(1, 0))],
            ..Default::default()
        };
        tel.observe_round(1, &FailureEvents::default(), &events, &[]);
        tel.flush();
        let stats = cellflow_telemetry::validate_stream(&buffer.contents()).unwrap();
        assert!(stats.by_kind.iter().any(|(k, _)| k == "grant"));
        assert!(stats.by_kind.iter().any(|(k, _)| k == "block"));
    }

    #[test]
    fn cascade_counters_register_and_accumulate() {
        let registry = Registry::new();
        let tel = SimTelemetry::new(&registry);
        let stats = CascadeStats {
            overload_crashes: 2,
            sheds: 5,
            backoff_activations: 3,
            max_cascade_depth: 2,
        };
        let trips = [
            (10, CellId::new(1, 1), 1),
            (12, CellId::new(1, 2), 2),
        ];
        tel.record_cascade(&stats, &trips);
        let names: Vec<String> = registry
            .snapshot()
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        for name in [
            "cellflow_sim_overload_crashes_total",
            "cellflow_sim_sheds_total",
            "cellflow_sim_backoff_activations_total",
            "cellflow_sim_cascade_depth",
        ] {
            assert!(names.contains(&name.to_string()), "missing {name}");
        }
        assert_eq!(tel.overload_crashes.value(), 2);
        assert_eq!(tel.sheds.value(), 5);
        assert_eq!(tel.backoff_activations.value(), 3);
        assert_eq!(tel.cascade_depth.count(), 2);
    }
}
