//! Summary statistics for replicated stochastic experiments.
//!
//! Figure 9's random fail/recover model makes throughput a random variable;
//! honest reproduction reports a mean over independent seeds with a spread,
//! not a single run. [`Summary`] collects those moments and
//! [`replicated_throughput`] runs the replications (in parallel).

use crate::scenario::{run_spec, ExperimentSpec};
use crate::sweep::parallel_map;

/// Moments of a sample: mean, standard deviation (sample, n−1), extrema.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected); 0 for n < 2.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "cannot summarize an empty sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Half-width of a ~95% normal-approximation confidence interval for the
    /// mean (`1.96 · s/√n`). Zero for n < 2.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={}, range {:.4}–{:.4})",
            self.mean,
            self.ci95_half_width(),
            self.n,
            self.min,
            self.max
        )
    }
}

/// Runs `spec` for `k` rounds under `seeds` independent seeds (in parallel)
/// and summarizes the measured throughputs.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn replicated_throughput(
    spec: &ExperimentSpec,
    k: u64,
    seeds: &[u64],
    threads: usize,
) -> Summary {
    assert!(!seeds.is_empty(), "need at least one seed");
    let outcomes = parallel_map(seeds, threads, |&seed| run_spec(spec, k, seed).throughput);
    Summary::of(&outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::fig9_point;

    #[test]
    fn summary_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - 1.2909944487).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.ci95_half_width() > 0.0);
        assert!(s.to_string().contains("n=4"));
    }

    #[test]
    fn singleton_has_zero_spread() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!((s.min, s.max), (7.0, 7.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn replication_is_deterministic_and_spread_is_real() {
        let spec = fig9_point(0.03, 0.1);
        let a = replicated_throughput(&spec, 250, &[1, 2, 3, 4], 4);
        let b = replicated_throughput(&spec, 250, &[1, 2, 3, 4], 2);
        assert_eq!(a, b, "thread count must not affect results");
        // Stochastic failures ⇒ different seeds give different throughput.
        assert!(a.std_dev > 0.0);
    }
}
