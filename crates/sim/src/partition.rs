//! Partition campaigns: script link faults and split-brain episodes over
//! the lockstep simulator, watch every island with the full monitor suite
//! (including the split-brain [`ReachabilityMonitor`]), and report what
//! happened — deterministically, so two runs of the same scenario produce
//! byte-identical reports.
//!
//! The scenario's [`PartitionPlan`] is expanded once into a round-major
//! [`PartitionSchedule`]; the simulation installs each round's cut mask
//! before the round runs, so a cut slot reads as a silent neighbor (the
//! paper's footnote-1 convention: silence is `∞`/`⊥`). Rounds with any
//! active cut count as ambient disturbance, which makes the stabilization
//! stopwatch measure recovery *from the heal* — the post-heal reading of
//! Corollary 7 that `cellflow chaos --partition` certifies.

use std::fmt::Write as _;

use cellflow_core::certify::fnv1a;
use cellflow_core::monitor::{
    component_map, stabilization_bound, ConservationMonitor, Monitor, ReachabilityMonitor,
    RoutingMonitor, SafetyMonitor, StabilizationMonitor, StabilizationProbe,
};
use cellflow_core::{FaultPlan, PartitionPlan, PartitionSchedule, SystemConfig};

use crate::heatmap::{render_components, OccupancyGrid};
use crate::{SimTelemetry, Simulation};

/// One partition campaign: a link-fault script, an optional crash script
/// riding along, and the round horizon.
#[derive(Clone, Debug)]
pub struct PartitionScenario {
    /// The grid under test.
    pub config: SystemConfig,
    /// The scripted link faults (cuts, splits, islands, flaky links).
    pub plan: PartitionPlan,
    /// An exogenous crash/recover script applied alongside the cuts.
    pub base: FaultPlan,
    /// Rounds of active campaign (every cut should heal in here for the
    /// certificate to have a chance).
    pub rounds: u64,
    /// Fault-free tail rounds for the stabilization clock to expire in.
    pub settle: u64,
    /// Shard workers for the sparse engine (1 = sequential). Any value
    /// produces the same byte-identical report; >1 exercises the sharded
    /// row-band path.
    pub workers: usize,
}

/// What one campaign did, plus everything needed to judge and render it.
#[derive(Clone, Debug)]
pub struct PartitionReport {
    /// Scripted directed cuts in the plan.
    pub faults: usize,
    /// Seeded flaky-link specs in the plan.
    pub flaky: usize,
    /// Total directed edge-rounds suppressed over the schedule.
    pub cut_edge_rounds: u64,
    /// The round the last cut healed; `None` if some cut never heals.
    pub heal_round: Option<u64>,
    /// Entities the target consumed over the whole run.
    pub consumed: u64,
    /// Total rounds driven (`rounds + settle`).
    pub rounds: u64,
    /// The stabilization bound (`2N² + 2`) the run is judged against.
    pub bound: u64,
    /// Rounds from the last disturbance to re-stabilization, if reached.
    pub rounds_to_stabilize: Option<u64>,
    /// The largest number of simultaneous connected components observed.
    pub max_components: u32,
    /// Each monitor's closing summary line.
    pub monitor_summaries: Vec<String>,
    /// Monitor violations accumulated over the run.
    pub violations: usize,
    /// Component map at the first round of deepest fragmentation.
    pub components_split: String,
    /// Component map at the end of the run (one island iff healed).
    pub components_final: String,
    /// Rendered occupancy heat map.
    pub occupancy: String,
}

impl PartitionReport {
    /// `true` iff every cut healed, routing re-stabilized within the bound
    /// of the heal, and no monitor fired — the campaign-level reading of
    /// "Theorem 5 through the split, Corollary 7 after the heal".
    pub fn certified(&self) -> bool {
        self.heal_round.is_some()
            && self.rounds_to_stabilize.is_some_and(|r| r <= self.bound)
            && self.violations == 0
    }

    /// A deterministic plain-text report: byte-identical for equal reports,
    /// sealed by an FNV-1a checksum like
    /// [`Certificate::render`](cellflow_core::Certificate::render).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "partition campaign report");
        let _ = writeln!(s, "rounds driven: {}", self.rounds);
        let _ = writeln!(
            s,
            "scripted cuts: {}  flaky specs: {}  cut edge-rounds: {}",
            self.faults, self.flaky, self.cut_edge_rounds
        );
        let heal = match self.heal_round {
            Some(h) => format!("{h}"),
            None => "never".to_string(),
        };
        let _ = writeln!(s, "heal round: {heal}");
        let _ = writeln!(s, "max components: {}", self.max_components);
        let _ = writeln!(s, "consumed: {}", self.consumed);
        let restab = match self.rounds_to_stabilize {
            Some(r) => format!("{r} rounds after last disturbance"),
            None => "NO".to_string(),
        };
        let _ = writeln!(s, "stabilization bound: {} rounds", self.bound);
        let _ = writeln!(s, "re-stabilized: {restab}");
        let _ = writeln!(s, "monitor violations: {}", self.violations);
        for m in &self.monitor_summaries {
            let _ = writeln!(s, "  {m}");
        }
        let _ = writeln!(
            s,
            "verdict: {}",
            if self.certified() { "CERTIFIED" } else { "FAILED" }
        );
        let _ = writeln!(s, "components at deepest split:");
        s.push_str(&self.components_split);
        let _ = writeln!(s, "components at end:");
        s.push_str(&self.components_final);
        let _ = writeln!(s, "occupancy:");
        s.push_str(&self.occupancy);
        let checksum = fnv1a(s.as_bytes());
        let _ = writeln!(s, "checksum: {checksum:016x}");
        s
    }
}

/// Runs `scenario` end to end. See [`run_partition_with`] for the
/// telemetry variant.
pub fn run_partition(scenario: &PartitionScenario) -> PartitionReport {
    run_partition_with(scenario, None)
}

/// Runs `scenario`, optionally folding the campaign's counters into
/// `telemetry`'s registry and event stream.
///
/// # Panics
///
/// Panics if the plan was built for a different grid than the config.
pub fn run_partition_with(
    scenario: &PartitionScenario,
    telemetry: Option<SimTelemetry>,
) -> PartitionReport {
    run_partition_recorded(scenario, telemetry, None).0
}

/// [`run_partition_with`], optionally capturing a flight recording of every
/// driven round. Returns the sealed `.rec` bytes when a recorder was
/// supplied — byte-identical for reruns of the same scenario, since the
/// whole campaign is deterministic.
pub fn run_partition_recorded(
    scenario: &PartitionScenario,
    telemetry: Option<SimTelemetry>,
    recorder: Option<Box<cellflow_core::snapshot::Recorder>>,
) -> (PartitionReport, Option<Vec<u8>>) {
    let config = &scenario.config;
    let total_rounds = scenario.rounds + scenario.settle;
    let schedule: PartitionSchedule = scenario.plan.expand(total_rounds);

    let probe = StabilizationProbe::new();
    let monitors: Vec<Box<dyn Monitor>> = vec![
        Box::new(SafetyMonitor::new()),
        Box::new(RoutingMonitor::new()),
        Box::new(ConservationMonitor::new()),
        Box::new(StabilizationMonitor::new(config).with_probe(&probe)),
        Box::new(ReachabilityMonitor::new(config, schedule.clone())),
    ];

    let mut sim = Simulation::new(config.clone(), 0)
        .with_failure_model(scenario.base.clone())
        .with_partition(schedule.clone())
        .with_monitors(monitors)
        .with_safety_checks(false)
        .with_workers(scenario.workers.max(1));
    if let Some(tel) = telemetry {
        tel.record_partition(&schedule);
        sim = sim.with_telemetry(tel);
    }
    if let Some(rec) = recorder {
        sim = sim.with_recorder(rec);
    }

    let dims = config.dims();
    let mut occupancy = OccupancyGrid::new(dims);
    let mut max_components = 0u32;
    let mut components_split = render_components(dims, &component_map(config, sim.system().state(), schedule.mask_row(0)));
    for round in 0..total_rounds {
        sim.step();
        occupancy.record(config, sim.system().state());
        let comp = component_map(config, sim.system().state(), schedule.mask_row(round));
        let count = comp.iter().flatten().copied().max().map_or(0, |m| m + 1);
        if count > max_components {
            max_components = count;
            components_split = render_components(dims, &comp);
        }
    }
    let components_final = render_components(
        dims,
        &component_map(config, sim.system().state(), schedule.mask_row(total_rounds)),
    );

    let recording = sim.take_recorder().map(|r| r.finish());
    let report = PartitionReport {
        faults: scenario.plan.faults().len(),
        flaky: scenario.plan.flaky().len(),
        cut_edge_rounds: schedule.cut_edge_rounds(),
        heal_round: scenario.plan.heal_round(),
        consumed: sim.system().consumed_total(),
        rounds: total_rounds,
        bound: stabilization_bound(config),
        rounds_to_stabilize: probe.rounds_to_stabilize(),
        max_components,
        monitor_summaries: sim.monitor_summaries(),
        violations: sim.violations().len(),
        components_split,
        components_final,
        occupancy: occupancy.render(),
    };
    (report, recording)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_core::Params;
    use cellflow_grid::{CellId, GridDims};

    fn scenario(plan: PartitionPlan) -> PartitionScenario {
        let config = SystemConfig::new(
            GridDims::square(5),
            CellId::new(1, 4),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0))
        .with_source(CellId::new(3, 0));
        PartitionScenario {
            config,
            plan,
            base: FaultPlan::new(),
            rounds: 120,
            settle: 80,
            workers: 1,
        }
    }

    fn split_plan() -> PartitionPlan {
        PartitionPlan::for_grid(GridDims::square(5)).split_col(2, 10, Some(80))
    }

    #[test]
    fn split_and_heal_campaign_certifies() {
        let report = run_partition(&scenario(split_plan()));
        assert_eq!(report.max_components, 2);
        assert_eq!(report.heal_round, Some(80));
        assert!(report.certified(), "{}", report.render());
        // The deepest-split map shows both islands; the final map is whole.
        assert!(report.components_split.contains('1'));
        assert!(!report.components_final.contains('1'));
        assert!(report.render().contains("verdict: CERTIFIED"));
    }

    #[test]
    fn never_healing_split_fails_certification() {
        let plan = PartitionPlan::for_grid(GridDims::square(5)).split_row(2, 10, None);
        let report = run_partition(&scenario(plan));
        assert!(!report.certified());
        assert_eq!(report.heal_round, None);
        assert!(report.render().contains("verdict: FAILED"));
    }

    #[test]
    fn island_and_flaky_reports_are_byte_identical_across_runs() {
        let island = PartitionPlan::for_grid(GridDims::square(5)).island(
            CellId::new(3, 3),
            CellId::new(4, 4),
            5,
            Some(60),
        );
        let a = run_partition(&scenario(island.clone())).render();
        let b = run_partition(&scenario(island)).render();
        assert_eq!(a, b);
        assert!(a.contains("checksum: "));

        let flaky = PartitionPlan::for_grid(GridDims::square(5)).flaky_links(9, 250, 0, Some(50));
        let a = run_partition(&scenario(flaky.clone())).render();
        let b = run_partition(&scenario(flaky)).render();
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_campaign_report_is_byte_identical_to_sequential() {
        let sequential = run_partition(&scenario(split_plan())).render();
        let mut sharded = scenario(split_plan());
        sharded.workers = 4;
        assert_eq!(run_partition(&sharded).render(), sequential);
    }

    #[test]
    fn partition_telemetry_registers_counters() {
        use cellflow_telemetry::{MetricSnapshot, Registry};
        let registry = Registry::new();
        let tel = SimTelemetry::new(&registry);
        let report = run_partition_with(&scenario(split_plan()), Some(tel));
        assert!(report.certified());
        let counter = |name: &str| {
            registry.snapshot().into_iter().find_map(|m| match m {
                MetricSnapshot::Counter { name: n, value } if n == name => Some(value),
                _ => None,
            })
        };
        // Cuts ran rounds 10..80; 10 directed edges per round on a 5-wide split.
        assert_eq!(counter("cellflow_sim_partition_rounds_total"), Some(70));
        assert_eq!(counter("cellflow_sim_cut_edge_rounds_total"), Some(700));
        assert_eq!(counter("cellflow_sim_partition_heals_total"), Some(1));
    }

    #[test]
    #[should_panic(expected = "share a grid")]
    fn mismatched_grid_is_rejected() {
        let mut s = scenario(split_plan());
        s.plan = PartitionPlan::for_grid(GridDims::square(4)).split_col(2, 0, Some(10));
        run_partition(&s);
    }
}
