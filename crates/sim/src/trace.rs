//! Structured event traces of simulation runs.

use cellflow_core::{EntityId, RoundEvents};
use cellflow_grid::CellId;

use crate::failure::FailureEvents;

/// One observable event, tagged with the round it happened in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TraceEvent {
    /// A source created an entity.
    Insert {
        /// Source cell.
        cell: CellId,
        /// The new entity.
        entity: EntityId,
    },
    /// An entity crossed between cells.
    Transfer {
        /// The entity.
        entity: EntityId,
        /// Cell it left.
        from: CellId,
        /// Cell it entered.
        to: CellId,
    },
    /// The target consumed an entity.
    Consume {
        /// The entity.
        entity: EntityId,
    },
    /// A cell granted its token holder permission to move.
    Grant {
        /// The granting cell.
        granter: CellId,
        /// The cell allowed to move toward it.
        grantee: CellId,
    },
    /// A cell withheld its signal (occupied boundary strip).
    Block {
        /// The blocking cell.
        blocker: CellId,
        /// The token holder that stays put.
        blocked: CellId,
    },
    /// A cell crashed.
    Fail {
        /// The crashed cell.
        cell: CellId,
    },
    /// A cell recovered.
    Recover {
        /// The recovered cell.
        cell: CellId,
    },
}

/// Records [`TraceEvent`]s with their round numbers.
///
/// Grant/Block events are voluminous; recording them is off by default and
/// enabled with [`TraceRecorder::with_signals`].
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    events: Vec<(u64, TraceEvent)>,
    record_signals: bool,
}

impl TraceRecorder {
    /// A recorder of inserts, transfers, consumes, fails and recoveries.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// Also record grant/block signal events.
    pub fn with_signals(mut self) -> TraceRecorder {
        self.record_signals = true;
        self
    }

    /// Ingests one round's worth of events.
    pub fn record(&mut self, round: u64, failures: &FailureEvents, events: &RoundEvents) {
        for &cell in &failures.failed {
            self.events.push((round, TraceEvent::Fail { cell }));
        }
        for &cell in &failures.recovered {
            self.events.push((round, TraceEvent::Recover { cell }));
        }
        for &(cell, entity) in &events.inserted {
            self.events
                .push((round, TraceEvent::Insert { cell, entity }));
        }
        for t in &events.transfers {
            self.events.push((
                round,
                TraceEvent::Transfer {
                    entity: t.entity,
                    from: t.from,
                    to: t.to,
                },
            ));
        }
        for &entity in &events.consumed {
            self.events.push((round, TraceEvent::Consume { entity }));
        }
        if self.record_signals {
            for &(granter, grantee) in &events.grants {
                self.events
                    .push((round, TraceEvent::Grant { granter, grantee }));
            }
            for &(blocker, blocked) in &events.blocked {
                self.events
                    .push((round, TraceEvent::Block { blocker, blocked }));
            }
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[(u64, TraceEvent)] {
        &self.events
    }

    /// The full lifecycle of one entity: its insert, transfers, and consume.
    pub fn lifecycle(&self, entity: EntityId) -> Vec<(u64, TraceEvent)> {
        self.events
            .iter()
            .filter(|(_, e)| match e {
                TraceEvent::Insert { entity: x, .. }
                | TraceEvent::Transfer { entity: x, .. }
                | TraceEvent::Consume { entity: x } => *x == entity,
                _ => false,
            })
            .copied()
            .collect()
    }

    /// Validates causal sanity of the trace: every consumed or transferred
    /// entity was inserted first, rounds are non-decreasing, and each entity
    /// is consumed at most once. Returns the number of entities checked.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<usize, String> {
        let mut last_round = 0u64;
        let mut born = std::collections::HashSet::new();
        let mut dead = std::collections::HashSet::new();
        for &(round, ev) in &self.events {
            if round < last_round {
                return Err(format!("round went backwards at {ev:?}"));
            }
            last_round = round;
            match ev {
                TraceEvent::Insert { entity, .. } if !born.insert(entity) => {
                    return Err(format!("{entity} inserted twice"));
                }
                TraceEvent::Transfer { entity, from, to } => {
                    if !born.contains(&entity) {
                        return Err(format!("{entity} transferred before insert"));
                    }
                    if dead.contains(&entity) {
                        return Err(format!("{entity} transferred after consume"));
                    }
                    if !from.is_neighbor(to) {
                        return Err(format!("non-adjacent transfer {from} → {to}"));
                    }
                }
                TraceEvent::Consume { entity } => {
                    if !born.contains(&entity) {
                        return Err(format!("{entity} consumed before insert"));
                    }
                    if !dead.insert(entity) {
                        return Err(format!("{entity} consumed twice"));
                    }
                }
                _ => {}
            }
        }
        Ok(born.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_core::{RoundEvents, Transfer};

    fn id(i: u16, j: u16) -> CellId {
        CellId::new(i, j)
    }

    fn round_events() -> RoundEvents {
        RoundEvents {
            consumed: vec![],
            transfers: vec![Transfer {
                entity: EntityId(0),
                from: id(0, 0),
                to: id(1, 0),
            }],
            inserted: vec![(id(0, 0), EntityId(1))],
            grants: vec![(id(1, 0), id(0, 0))],
            blocked: vec![(id(2, 0), id(1, 0))],
            moved: vec![id(0, 0)],
        }
    }

    #[test]
    fn records_core_events_without_signals() {
        let mut tr = TraceRecorder::new();
        let failures = FailureEvents {
            failed: vec![id(3, 3)],
            recovered: vec![],
            corrupted: vec![],
        };
        // Entity 0 must exist before it transfers.
        let birth = RoundEvents {
            inserted: vec![(id(0, 0), EntityId(0))],
            ..Default::default()
        };
        tr.record(0, &FailureEvents::default(), &birth);
        tr.record(1, &failures, &round_events());
        assert_eq!(tr.events().len(), 4); // insert(0), fail, insert(1), transfer
        assert_eq!(tr.validate(), Ok(2));
        let life = tr.lifecycle(EntityId(0));
        assert_eq!(life.len(), 2);
    }

    #[test]
    fn signal_recording_is_opt_in() {
        let mut tr = TraceRecorder::new().with_signals();
        let birth = RoundEvents {
            inserted: vec![(id(0, 0), EntityId(0))],
            ..Default::default()
        };
        tr.record(0, &FailureEvents::default(), &birth);
        tr.record(1, &FailureEvents::default(), &round_events());
        assert!(tr
            .events()
            .iter()
            .any(|(_, e)| matches!(e, TraceEvent::Grant { .. })));
        assert!(tr
            .events()
            .iter()
            .any(|(_, e)| matches!(e, TraceEvent::Block { .. })));
    }

    #[test]
    fn validate_catches_inconsistencies() {
        let mut tr = TraceRecorder::new();
        // Consume without insert.
        let bad = RoundEvents {
            consumed: vec![EntityId(9)],
            ..Default::default()
        };
        tr.record(0, &FailureEvents::default(), &bad);
        assert!(tr.validate().unwrap_err().contains("before insert"));
    }
}
