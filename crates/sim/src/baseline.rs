//! A centralized omniscient controller — the comparison baseline.
//!
//! The paper motivates its protocol against "traditional traffic protocols
//! \[which\] are centralized" (§I). This module implements that comparator with
//! the *same physics* (`Move` from `cellflow-core`) but perfect global
//! knowledge replacing the two distributed mechanisms:
//!
//! * **Routing**: exact BFS distances installed instantly each round (no
//!   `O(N²)`-round stabilization delay);
//! * **Granting**: each receiving cell grants the eligible upstream sender
//!   whose lead entity is closest to the shared boundary (no token rotation,
//!   never a wasted grant to a blocked or stale contender).
//!
//! Safety is preserved by construction (grants still require the free
//! boundary strip, one grant per receiver), so measured throughput
//! differences isolate the *cost of distribution* — the ablation reported in
//! `EXPERIMENTS.md`.

use std::collections::HashSet;

use cellflow_core::{move_phase, safety, SystemConfig, SystemState};
use cellflow_geom::Fixed;
use cellflow_grid::{connectivity, CellId};
use cellflow_routing::Dist;

/// The centralized controller and its system state.
pub struct CentralizedBaseline {
    config: SystemConfig,
    state: SystemState,
    round: u64,
    consumed_total: u64,
    inserted_total: u64,
    check_safety: bool,
}

impl CentralizedBaseline {
    /// Creates a centralized run of `config` from the initial state.
    pub fn new(config: SystemConfig) -> CentralizedBaseline {
        let state = config.initial_state();
        CentralizedBaseline {
            config,
            state,
            round: 0,
            consumed_total: 0,
            inserted_total: 0,
            check_safety: cfg!(debug_assertions),
        }
    }

    /// Forces per-round safety checking on or off.
    pub fn with_safety_checks(mut self, on: bool) -> CentralizedBaseline {
        self.check_safety = on;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The current state.
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// Rounds executed.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Entities consumed by the target so far.
    pub fn consumed_total(&self) -> u64 {
        self.consumed_total
    }

    /// Entities created so far.
    pub fn inserted_total(&self) -> u64 {
        self.inserted_total
    }

    /// Average throughput so far (consumed / rounds).
    pub fn throughput(&self) -> f64 {
        if self.round == 0 {
            0.0
        } else {
            self.consumed_total as f64 / self.round as f64
        }
    }

    /// Crashes a cell (the baseline tolerates failures the same way).
    pub fn fail(&mut self, id: CellId) {
        self.state.fail(self.config.dims(), id);
    }

    /// Recovers a cell.
    pub fn recover(&mut self, id: CellId) {
        let t = self.config.target();
        self.state.recover(self.config.dims(), id, t);
    }

    /// One centralized round: instant routing, optimal granting, same physics.
    pub fn step(&mut self) {
        self.install_routes();
        self.install_grants();
        let outcome = move_phase(&self.config, &self.state);
        self.consumed_total += outcome.consumed.len() as u64;
        self.inserted_total += outcome.inserted.len() as u64;
        self.state = outcome.state;
        self.round += 1;
        if self.check_safety {
            if let Err(v) = safety::check_safe(&self.config, &self.state) {
                panic!("baseline safety violated at round {}: {v}", self.round);
            }
        }
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Installs exact BFS routing in one shot (the centralized coordinator
    /// has the global failure map).
    fn install_routes(&mut self) {
        let dims = self.config.dims();
        let failed: HashSet<CellId> = dims
            .iter()
            .filter(|&c| self.state.cell(dims, c).failed)
            .collect();
        let rho = connectivity::path_distances(dims, self.config.target(), &failed);
        for id in dims.iter() {
            if self.state.cell(dims, id).failed {
                continue;
            }
            let dist = match rho.get(id) {
                Some(d) => Dist::Finite(d),
                None => Dist::Infinity,
            };
            let next = if id == self.config.target() {
                None
            } else {
                rho.get(id).and_then(|d| {
                    dims.neighbors(id)
                        .filter(|&n| rho.get(n) == Some(d - 1))
                        .min()
                })
            };
            let c = self.state.cell_mut(dims, id);
            c.dist = dist;
            c.next = next;
        }
    }

    /// For every receiver, grant the eligible sender with the most imminent
    /// transfer; clear all other signals.
    fn install_grants(&mut self) {
        let dims = self.config.dims();
        let params = self.config.params();
        let mut grants: Vec<(CellId, Option<CellId>)> = Vec::new();
        for receiver in dims.iter() {
            let rcell = self.state.cell(dims, receiver);
            if rcell.failed {
                grants.push((receiver, None));
                continue;
            }
            // Eligible senders: live, nonempty, routing into `receiver`, and
            // the boundary strip on the receiver side is free.
            let mut best: Option<(Fixed, CellId)> = None;
            for sender in dims.neighbors(receiver) {
                let scell = self.state.cell(dims, sender);
                if scell.failed || scell.members.is_empty() || scell.next != Some(receiver) {
                    continue;
                }
                let dir = receiver.dir_to(sender).expect("neighbors have a direction");
                let members = self.state.cell(dims, receiver).members.values();
                if !cellflow_core::gap_free_toward(params, receiver, dir, members) {
                    continue;
                }
                // Distance of the sender's lead entity to the shared boundary.
                let toward = sender.dir_to(receiver).expect("neighbors");
                let boundary = sender.boundary(toward);
                let lead_gap = scell
                    .members
                    .values()
                    .map(|p| {
                        let edge = p.along(toward.axis()) + params.half_l() * toward.sign();
                        (boundary - edge).abs()
                    })
                    .min()
                    .expect("nonempty members");
                let candidate = (lead_gap, sender);
                best = Some(match best {
                    None => candidate,
                    Some(cur) if candidate < cur => candidate,
                    Some(cur) => cur,
                });
            }
            grants.push((receiver, best.map(|(_, s)| s)));
        }
        for (receiver, grant) in grants {
            self.state.cell_mut(dims, receiver).signal = grant;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use cellflow_core::Params;
    use cellflow_grid::GridDims;

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::square(8),
            CellId::new(1, 7),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0))
    }

    #[test]
    fn baseline_moves_traffic_safely() {
        let mut b = CentralizedBaseline::new(config()).with_safety_checks(true);
        b.run(400);
        assert!(b.throughput() > 0.0);
        assert_eq!(
            b.inserted_total(),
            b.consumed_total() + b.state().entity_count() as u64
        );
    }

    #[test]
    fn baseline_at_least_matches_distributed_throughput() {
        let rounds = 1_500;
        let mut base = CentralizedBaseline::new(config()).with_safety_checks(false);
        base.run(rounds);
        let mut dist = Simulation::new(config(), 1).with_safety_checks(false);
        dist.run(rounds);
        // The omniscient controller can't be noticeably worse on the paper's
        // single-flow scenario; allow a small tolerance for phase effects.
        assert!(
            base.throughput() >= dist.metrics().throughput() * 0.95,
            "baseline {} vs distributed {}",
            base.throughput(),
            dist.metrics().throughput()
        );
    }

    #[test]
    fn baseline_survives_failures() {
        let mut b = CentralizedBaseline::new(config()).with_safety_checks(true);
        b.run(50);
        b.fail(CellId::new(1, 4));
        b.run(100);
        b.recover(CellId::new(1, 4));
        b.run(100);
        assert!(b.consumed_total() > 0);
    }

    #[test]
    fn routes_install_instantly() {
        let mut b = CentralizedBaseline::new(config());
        b.step();
        // After one round every cell already has exact distances — no O(N²)
        // stabilization phase.
        let dims = b.config().dims();
        for id in dims.iter() {
            let c = b.state().cell(dims, id);
            assert_eq!(
                c.dist,
                Dist::Finite(id.manhattan(CellId::new(1, 7))),
                "cell {id}"
            );
        }
    }
}
