//! Simulation engine and experiment harness for distributed cellular flows.
//!
//! This crate drives the protocol from `cellflow-core` through the
//! experiments of the paper's evaluation (Section IV):
//!
//! * [`Simulation`] — a [`cellflow_core::System`] plus a [`FailureModel`],
//!   per-round [`Metrics`], and an optional [`TraceRecorder`];
//! * [`failure`] — crash/recovery models, including the per-round
//!   `(p_f, p_r)` random model of Figure 9 (after DeVille & Mitra, SSS 2009)
//!   and the shared [`FaultPlan`](cellflow_core::FaultPlan) chaos vocabulary
//!   (bursts, blackouts, flapping, hard crashes), which drives this
//!   reference runtime and the `cellflow-net` deployment identically;
//! * [`metrics`] — K-round and average throughput exactly as defined in §IV;
//! * [`baseline`] — an omniscient centralized controller with the same
//!   physics, the comparator for the distributed protocol's signaling cost;
//! * [`scenario`] — builders reproducing every experiment in the paper
//!   (Figures 7, 8, 9) plus the ablations in `DESIGN.md`;
//! * [`sweep`] — a multi-threaded parameter-sweep runner;
//! * [`render`] — an ASCII visualization of system states;
//! * [`heatmap`] — per-cell occupancy accumulation and heat-map rendering;
//! * [`stats`] — replicated-run summaries (mean ± CI) for stochastic
//!   experiments;
//! * [`table`] — plain-text / CSV series output for the figure harness.
//!
//! # Example: one Figure 7 data point
//!
//! ```
//! use cellflow_sim::scenario;
//!
//! // Throughput at rs = 0.05, v = 0.2 (a short run for the doctest).
//! let spec = scenario::fig7_point(50, 200);
//! let outcome = scenario::run_spec(&spec, 300, 7);
//! assert!(outcome.throughput > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cascade;
pub mod failure;
pub mod heatmap;
pub mod metrics;
pub mod partition;
pub mod render;
mod runner;
pub mod scenario;
pub mod stats;
pub mod sweep;
pub mod table;
mod telemetry;
mod trace;

pub use cascade::{
    run_cascade, run_cascade_recorded, run_cascade_with, CascadeReport, CascadeScenario,
};
pub use failure::{FailureEvents, FailureModel, OverloadModel};
pub use metrics::Metrics;
pub use partition::{
    run_partition, run_partition_recorded, run_partition_with, PartitionReport, PartitionScenario,
};
pub use runner::Simulation;
pub use telemetry::SimTelemetry;
pub use trace::{TraceEvent, TraceRecorder};

// The chaos vocabulary is shared with the message-passing runtime; re-export
// it so campaign code needs only this crate.
pub use cellflow_core::{
    certify, certify_links, expand_overload, shrink, shrink_links, BackoffPolicy, CampaignSpec,
    CascadeOutcome, CascadeStats, Certificate, CertifyOptions, Corruption, CorruptionEvent,
    FaultCensus, FaultEvent, FaultKind, FaultPlan, FlakySpec, LinkCertificate, LinkFault,
    OverloadTrigger, PartitionPlan, PartitionSchedule,
};
