//! Integration across the simulation crate's surfaces: runner + failure
//! models + metrics + heatmap + stats + baseline working together.

use cellflow_core::SystemConfig;
use cellflow_grid::{CellId, GridDims};
use cellflow_sim::baseline::CentralizedBaseline;
use cellflow_sim::failure::{RandomFailRecover, Schedule};
use cellflow_sim::heatmap::OccupancyGrid;
use cellflow_sim::scenario::{self, fig7_point};
use cellflow_sim::stats::{replicated_throughput, Summary};
use cellflow_sim::{Simulation, TraceRecorder};

fn fig7_config() -> SystemConfig {
    fig7_point(50, 200).config
}

#[test]
fn heatmap_matches_trace_occupancy() {
    // The heat map's per-cell entity-rounds must equal what replaying the
    // trace implies: every entity contributes one round to exactly one cell
    // from its insertion round until its consumption round.
    let mut sim = Simulation::new(fig7_config(), 3).with_trace(TraceRecorder::new());
    let mut heat = OccupancyGrid::new(GridDims::square(8));
    let rounds = 400u64;
    let mut total_entity_rounds = 0u64;
    for _ in 0..rounds {
        sim.step();
        heat.record(sim.system().config(), sim.system().state());
        total_entity_rounds += sim.system().state().entity_count() as u64;
    }
    let heat_total: u64 = GridDims::square(8)
        .iter()
        .map(|c| heat.entity_rounds(c))
        .sum();
    assert_eq!(heat_total, total_entity_rounds);
    // All heat concentrates on the corridor column (i = 1).
    let hottest = heat.hottest();
    assert_eq!(hottest.i(), 1, "hot spot off the corridor: {hottest}");
    sim.trace().unwrap().validate().unwrap();
}

#[test]
fn stats_summary_tracks_actual_spread() {
    let spec = scenario::fig9_point(0.03, 0.1);
    let summary: Summary = replicated_throughput(&spec, 400, &[1, 2, 3, 4, 5], 4);
    assert_eq!(summary.n, 5);
    assert!(summary.min <= summary.mean && summary.mean <= summary.max);
    assert!(summary.std_dev > 0.0, "stochastic churn must show spread");
    assert!(summary.ci95_half_width() > 0.0);
    // The failure-free spec has zero spread across seeds (deterministic).
    let fixed = replicated_throughput(&fig7_point(50, 200), 400, &[1, 2, 3], 2);
    assert_eq!(fixed.std_dev, 0.0);
    assert_eq!(fixed.min, fixed.max);
}

#[test]
fn scheduled_and_random_failures_compose_with_metrics() {
    // A scripted outage inside an otherwise healthy run: throughput during
    // the outage window drops to zero, and recovers after.
    let outage_start = 150u64;
    let outage_end = 400u64;
    let mut sched = Schedule::new();
    for j in 0..8 {
        sched = sched
            .fail_at(outage_start, CellId::new(1, j))
            .recover_at(outage_end, CellId::new(1, j));
    }
    let mut sim = Simulation::new(fig7_config(), 1).with_failure_model(sched);
    sim.run(outage_start + 60);
    let during = sim.metrics().tail_throughput(40);
    assert_eq!(during, 0.0, "the whole corridor is down");
    sim.run(outage_end - (outage_start + 60) + 400);
    let after = sim.metrics().tail_throughput(200);
    assert!(after > 0.0, "no recovery after the outage");
}

#[test]
fn baseline_and_distributed_share_failure_semantics() {
    let mut base = CentralizedBaseline::new(fig7_config());
    base.run(30);
    base.fail(CellId::new(1, 3));
    base.run(80);
    base.recover(CellId::new(1, 3));
    base.run(120);
    // Same dance through the distributed runner.
    let mut dist = Simulation::new(fig7_config(), 1);
    dist.run(30);
    dist.system_mut().fail(CellId::new(1, 3));
    dist.run(80);
    dist.system_mut().recover(CellId::new(1, 3));
    dist.run(120);
    // Both deliver despite the outage; the baseline at least as much.
    assert!(dist.metrics().consumed_total() > 0);
    assert!(base.consumed_total() >= dist.metrics().consumed_total());
}

#[test]
fn random_churn_metrics_are_internally_consistent() {
    let mut sim = Simulation::new(fig7_config(), 9)
        .with_failure_model(RandomFailRecover::new(0.03, 0.15, 17));
    sim.run(1_000);
    let m = sim.metrics();
    assert_eq!(m.rounds(), 1_000);
    assert_eq!(
        m.consumed_total(),
        m.consumed_history().iter().map(|&c| c as u64).sum::<u64>()
    );
    assert!(m.throughput() <= 1.0, "one source inserts at most 1/round");
    assert_eq!(
        m.inserted_total(),
        sim.system().consumed_total() + sim.system().state().entity_count() as u64
    );
}
