//! Property-based tests for the grid substrate.

use std::collections::HashSet;

use cellflow_grid::{path_distances, CellId, GridDims, Path};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = GridDims> {
    (1u16..=12, 1u16..=12).prop_map(|(nx, ny)| GridDims::new(nx, ny))
}

fn dims_and_cell() -> impl Strategy<Value = (GridDims, CellId)> {
    dims().prop_flat_map(|d| (0..d.nx(), 0..d.ny()).prop_map(move |(i, j)| (d, CellId::new(i, j))))
}

fn dims_cell_failures() -> impl Strategy<Value = (GridDims, CellId, HashSet<CellId>)> {
    dims_and_cell().prop_flat_map(|(d, t)| {
        proptest::collection::hash_set(
            (0..d.nx(), 0..d.ny()).prop_map(|(i, j)| CellId::new(i, j)),
            0..=(d.cell_count() / 2).max(1),
        )
        .prop_map(move |f| (d, t, f))
    })
}

proptest! {
    #[test]
    fn neighbors_are_in_bounds_and_adjacent((d, c) in dims_and_cell()) {
        for n in d.neighbors(c) {
            prop_assert!(d.contains(n));
            prop_assert!(c.is_neighbor(n));
        }
        prop_assert!(d.neighbors(c).count() <= 4);
    }

    #[test]
    fn index_bijection(d in dims()) {
        let mut seen = vec![false; d.cell_count()];
        for c in d.iter() {
            let k = d.index(c);
            prop_assert!(!seen[k], "duplicate index {k}");
            seen[k] = true;
            prop_assert_eq!(d.id_at(k), c);
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn with_turns_meets_spec(
        (d, start) in dims_and_cell(),
        len in 1usize..=16,
        turns in 0usize..=6,
    ) {
        if let Some(p) = Path::with_turns(d, start, len, turns) {
            prop_assert_eq!(p.len(), len);
            prop_assert_eq!(p.turns(), turns);
            prop_assert!(p.fits(d));
            prop_assert_eq!(*p.source(), start);
            // Validity: re-validate through the constructor.
            prop_assert!(Path::new(p.cells().to_vec()).is_ok());
        }
        // When the generator declines, the spec was impossible for a
        // staircase from this corner (too many turns for the length, or the
        // staircase leaves the grid); there is nothing further to assert.
    }

    #[test]
    fn path_distance_matches_manhattan_without_failures((d, t) in dims_and_cell()) {
        let rho = path_distances(d, t, &HashSet::new());
        for c in d.iter() {
            prop_assert_eq!(rho.get(c), Some(c.manhattan(t)));
        }
    }

    #[test]
    fn path_distance_is_lipschitz((d, t, failed) in dims_cell_failures()) {
        // Adjacent live cells differ by at most 1 in finite distance.
        let rho = path_distances(d, t, &failed);
        for c in d.iter() {
            if let Some(dc) = rho.get(c) {
                prop_assert!(!failed.contains(&c));
                for n in d.neighbors(c) {
                    if let Some(dn) = rho.get(n) {
                        prop_assert!(dc.abs_diff(dn) <= 1, "{c}:{dc} vs {n}:{dn}");
                    }
                }
                // Every non-target connected cell has a strictly closer neighbor.
                if dc > 0 {
                    prop_assert!(
                        d.neighbors(c).any(|n| rho.get(n) == Some(dc - 1)),
                        "{c} at {dc} has no downhill neighbor"
                    );
                }
            }
        }
    }

    #[test]
    fn failed_cells_never_connected((d, t, failed) in dims_cell_failures()) {
        let rho = path_distances(d, t, &failed);
        for c in &failed {
            prop_assert_eq!(rho.get(*c), None);
        }
    }

    #[test]
    fn carve_failures_partitions_grid((d, start) in dims_and_cell(), len in 1usize..=10) {
        if let Some(p) = Path::with_turns(d, start, len, 0) {
            let carved = p.carve_failures(d);
            prop_assert_eq!(carved.len() + p.len(), d.cell_count());
            // Routing restricted to the carved grid gives exactly the path cells.
            let failed: HashSet<_> = carved.into_iter().collect();
            let rho = path_distances(d, *p.target(), &failed);
            for (k, c) in p.iter().enumerate() {
                prop_assert_eq!(rho.get(*c), Some((p.len() - 1 - k) as u32));
            }
        }
    }
}
