//! Cell identifiers `⟨i, j⟩`.

use core::fmt;

use cellflow_geom::{Dir, Fixed, Point, Square};

/// The identifier `⟨i, j⟩` of a grid cell.
///
/// Cell `⟨i, j⟩` occupies the unit square whose bottom-left corner is the point
/// `(i, j)` in the plane: `i` is the column (x) index and `j` the row (y) index.
/// Identifiers are ordered lexicographically by `(i, j)`; the protocol uses this
/// order to break routing ties deterministically (`argmin (dist, id)` in the
/// paper's `Route` function).
///
/// ```
/// use cellflow_geom::Dir;
/// use cellflow_grid::CellId;
///
/// let c = CellId::new(2, 1);
/// assert_eq!(c.step(Dir::North), Some(CellId::new(2, 2)));
/// assert_eq!(c.step(Dir::South), Some(CellId::new(2, 0)));
/// assert_eq!(CellId::new(0, 0).step(Dir::West), None); // underflow
/// assert_eq!(c.dir_to(CellId::new(3, 1)), Some(Dir::East));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellId {
    i: u16,
    j: u16,
}

impl CellId {
    /// Creates the identifier `⟨i, j⟩`.
    #[inline]
    pub const fn new(i: u16, j: u16) -> CellId {
        CellId { i, j }
    }

    /// The column (x) index `i`.
    #[inline]
    pub const fn i(self) -> u16 {
        self.i
    }

    /// The row (y) index `j`.
    #[inline]
    pub const fn j(self) -> u16 {
        self.j
    }

    /// The neighbor one step in direction `dir`, or `None` if the index would
    /// leave the first quadrant (grid bounds are checked by [`GridDims`]).
    ///
    /// [`GridDims`]: crate::GridDims
    #[inline]
    pub fn step(self, dir: Dir) -> Option<CellId> {
        let (di, dj) = dir.offset();
        let i = self.i.checked_add_signed(di as i16)?;
        let j = self.j.checked_add_signed(dj as i16)?;
        Some(CellId::new(i, j))
    }

    /// The direction from `self` to an adjacent cell `other`, or `None` if the
    /// cells are not neighbors (Manhattan distance ≠ 1).
    #[inline]
    pub fn dir_to(self, other: CellId) -> Option<Dir> {
        let di = other.i as i32 - self.i as i32;
        let dj = other.j as i32 - self.j as i32;
        match (di, dj) {
            (1, 0) => Some(Dir::East),
            (-1, 0) => Some(Dir::West),
            (0, 1) => Some(Dir::North),
            (0, -1) => Some(Dir::South),
            _ => None,
        }
    }

    /// `true` if `other` is at Manhattan distance exactly 1 (the paper's
    /// neighbor relation `|i − m| + |j − n| = 1`).
    #[inline]
    pub fn is_neighbor(self, other: CellId) -> bool {
        self.manhattan(other) == 1
    }

    /// Manhattan distance between the two identifiers.
    #[inline]
    pub fn manhattan(self, other: CellId) -> u32 {
        self.i.abs_diff(other.i) as u32 + self.j.abs_diff(other.j) as u32
    }

    /// The unit square this cell occupies in the plane.
    #[inline]
    pub fn square(self) -> Square {
        Square::unit_cell(self.i as i64, self.j as i64)
    }

    /// The center point of the cell, `(i + ½, j + ½)`.
    #[inline]
    pub fn center(self) -> Point {
        self.square().center()
    }

    /// The coordinate of this cell's boundary facing `dir`.
    ///
    /// E.g. for `⟨2, 1⟩` and `East` this is `x = 3`; entities transferring east
    /// cross this line.
    #[inline]
    pub fn boundary(self, dir: Dir) -> Fixed {
        self.square().edge_toward(dir)
    }
}

impl fmt::Debug for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.i, self.j)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.i, self.j)
    }
}

impl From<(u16, u16)> for CellId {
    #[inline]
    fn from((i, j): (u16, u16)) -> CellId {
        CellId::new(i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_all_directions() {
        let c = CellId::new(3, 3);
        assert_eq!(c.step(Dir::East), Some(CellId::new(4, 3)));
        assert_eq!(c.step(Dir::West), Some(CellId::new(2, 3)));
        assert_eq!(c.step(Dir::North), Some(CellId::new(3, 4)));
        assert_eq!(c.step(Dir::South), Some(CellId::new(3, 2)));
    }

    #[test]
    fn step_underflows_at_origin() {
        assert_eq!(CellId::new(0, 5).step(Dir::West), None);
        assert_eq!(CellId::new(5, 0).step(Dir::South), None);
    }

    #[test]
    fn dir_to_inverse_of_step() {
        let c = CellId::new(7, 9);
        for d in Dir::ALL {
            let n = c.step(d).unwrap();
            assert_eq!(c.dir_to(n), Some(d));
            assert_eq!(n.dir_to(c), Some(d.opposite()));
        }
        assert_eq!(c.dir_to(c), None);
        assert_eq!(c.dir_to(CellId::new(8, 10)), None); // diagonal
    }

    #[test]
    fn neighbor_relation_is_manhattan_one() {
        let c = CellId::new(2, 2);
        assert!(c.is_neighbor(CellId::new(3, 2)));
        assert!(c.is_neighbor(CellId::new(2, 1)));
        assert!(!c.is_neighbor(CellId::new(3, 3)));
        assert!(!c.is_neighbor(c));
        assert_eq!(c.manhattan(CellId::new(5, 7)), 8);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(CellId::new(0, 9) < CellId::new(1, 0));
        assert!(CellId::new(1, 0) < CellId::new(1, 1));
    }

    #[test]
    fn geometry() {
        let c = CellId::new(2, 1);
        assert_eq!(c.square().low_x(), Fixed::from_int(2));
        assert_eq!(c.square().high_y(), Fixed::from_int(2));
        assert_eq!(
            c.center(),
            Point::new(Fixed::from_milli(2_500), Fixed::from_milli(1_500))
        );
        assert_eq!(c.boundary(Dir::East), Fixed::from_int(3));
        assert_eq!(c.boundary(Dir::West), Fixed::from_int(2));
        assert_eq!(c.boundary(Dir::North), Fixed::from_int(2));
        assert_eq!(c.boundary(Dir::South), Fixed::from_int(1));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(CellId::new(2, 1).to_string(), "⟨2, 1⟩");
    }
}
