//! Grid dimensions and neighbor enumeration.

use core::fmt;

use cellflow_geom::Dir;

use crate::CellId;

/// Dimensions of a rectangular grid of unit cells.
///
/// The paper uses square `N × N` grids ([`GridDims::square`]); rectangular
/// grids are supported because nothing in the protocol depends on squareness.
///
/// ```
/// use cellflow_grid::{CellId, GridDims};
///
/// let dims = GridDims::square(4);
/// assert_eq!(dims.cell_count(), 16);
/// assert!(dims.contains(CellId::new(3, 3)));
/// assert!(!dims.contains(CellId::new(4, 0)));
/// // Corner cells have two neighbors:
/// assert_eq!(dims.neighbors(CellId::new(0, 0)).count(), 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridDims {
    nx: u16,
    ny: u16,
}

impl GridDims {
    /// A rectangular `nx × ny` grid (columns × rows).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[inline]
    pub fn new(nx: u16, ny: u16) -> GridDims {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        GridDims { nx, ny }
    }

    /// The paper's square `N × N` grid.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    pub fn square(n: u16) -> GridDims {
        GridDims::new(n, n)
    }

    /// Number of columns (extent along x).
    #[inline]
    pub const fn nx(self) -> u16 {
        self.nx
    }

    /// Number of rows (extent along y).
    #[inline]
    pub const fn ny(self) -> u16 {
        self.ny
    }

    /// Total number of cells.
    #[inline]
    pub const fn cell_count(self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// `true` if `id` lies within the grid.
    #[inline]
    pub const fn contains(self, id: CellId) -> bool {
        id.i() < self.nx && id.j() < self.ny
    }

    /// Row-major linear index of `id` (for dense per-cell storage).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn index(self, id: CellId) -> usize {
        assert!(self.contains(id), "cell {id} out of {self} bounds");
        id.j() as usize * self.nx as usize + id.i() as usize
    }

    /// Inverse of [`GridDims::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ cell_count()`.
    #[inline]
    pub fn id_at(self, index: usize) -> CellId {
        assert!(index < self.cell_count(), "index {index} out of bounds");
        CellId::new(
            (index % self.nx as usize) as u16,
            (index / self.nx as usize) as u16,
        )
    }

    /// Iterates over all cell identifiers in row-major order.
    pub fn iter(self) -> impl Iterator<Item = CellId> {
        (0..self.ny).flat_map(move |j| (0..self.nx).map(move |i| CellId::new(i, j)))
    }

    /// The in-bounds neighbors of `id` — the paper's `Nbrs_{i,j}` — in the
    /// deterministic order East, West, North, South.
    pub fn neighbors(self, id: CellId) -> impl Iterator<Item = CellId> {
        Dir::ALL
            .into_iter()
            .filter_map(move |d| id.step(d))
            .filter(move |&n| self.contains(n))
    }

    /// The in-bounds neighbor of `id` in direction `dir`, if any.
    #[inline]
    pub fn neighbor(self, id: CellId, dir: Dir) -> Option<CellId> {
        id.step(dir).filter(|&n| self.contains(n))
    }
}

impl fmt::Display for GridDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}", self.nx, self.ny)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_and_rect() {
        let s = GridDims::square(8);
        assert_eq!((s.nx(), s.ny()), (8, 8));
        assert_eq!(s.cell_count(), 64);
        let r = GridDims::new(3, 5);
        assert_eq!(r.cell_count(), 15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        let _ = GridDims::new(0, 4);
    }

    #[test]
    fn containment() {
        let d = GridDims::new(3, 2);
        assert!(d.contains(CellId::new(2, 1)));
        assert!(!d.contains(CellId::new(3, 0)));
        assert!(!d.contains(CellId::new(0, 2)));
    }

    #[test]
    fn index_round_trip() {
        let d = GridDims::new(5, 3);
        for (k, id) in d.iter().enumerate() {
            assert_eq!(d.index(id), k);
            assert_eq!(d.id_at(k), id);
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn index_out_of_bounds_panics() {
        GridDims::square(2).index(CellId::new(2, 0));
    }

    #[test]
    fn iter_covers_grid_exactly_once() {
        let d = GridDims::new(4, 4);
        let all: Vec<_> = d.iter().collect();
        assert_eq!(all.len(), 16);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    #[test]
    fn neighbor_counts() {
        let d = GridDims::square(3);
        assert_eq!(d.neighbors(CellId::new(0, 0)).count(), 2); // corner
        assert_eq!(d.neighbors(CellId::new(1, 0)).count(), 3); // edge
        assert_eq!(d.neighbors(CellId::new(1, 1)).count(), 4); // interior
    }

    #[test]
    fn neighbors_are_symmetric() {
        let d = GridDims::square(4);
        for a in d.iter() {
            for b in d.neighbors(a) {
                assert!(d.neighbors(b).any(|x| x == a), "{b} should list {a}");
            }
        }
    }

    #[test]
    fn directed_neighbor() {
        let d = GridDims::square(2);
        assert_eq!(
            d.neighbor(CellId::new(0, 0), Dir::East),
            Some(CellId::new(1, 0))
        );
        assert_eq!(d.neighbor(CellId::new(1, 0), Dir::East), None);
        assert_eq!(d.neighbor(CellId::new(0, 0), Dir::West), None);
    }

    #[test]
    fn display() {
        assert_eq!(GridDims::new(8, 8).to_string(), "8×8");
    }
}
