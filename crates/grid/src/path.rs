//! Simple cell paths and the paper's path-complexity measure.

use core::fmt;

use cellflow_geom::Dir;

use crate::{CellId, GridDims};

/// A simple path of pairwise-adjacent, non-repeating cells.
///
/// Paths describe the corridor an entity flow takes from a source cell to the
/// target cell. The paper's Figure 8 measures throughput against *path
/// complexity* — the number of 90° turns along a fixed-length path — which
/// [`Path::turns`] computes.
///
/// ```
/// use cellflow_geom::Dir;
/// use cellflow_grid::{CellId, Path};
///
/// // The path β from the paper's Figure 7 setup: ⟨1,0⟩ … ⟨1,7⟩, length 8.
/// let beta = Path::straight(CellId::new(1, 0), Dir::North, 8)?;
/// assert_eq!(beta.len(), 8);
/// assert_eq!(beta.turns(), 0);
/// assert_eq!(*beta.target(), CellId::new(1, 7));
/// # Ok::<(), cellflow_grid::PathError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Path {
    cells: Vec<CellId>,
}

impl Path {
    /// Validates and wraps a sequence of cells as a path.
    ///
    /// # Errors
    ///
    /// * [`PathError::Empty`] if `cells` is empty;
    /// * [`PathError::NotAdjacent`] if consecutive cells are not grid neighbors;
    /// * [`PathError::Repeated`] if any cell appears twice.
    pub fn new(cells: Vec<CellId>) -> Result<Path, PathError> {
        if cells.is_empty() {
            return Err(PathError::Empty);
        }
        for (k, pair) in cells.windows(2).enumerate() {
            if !pair[0].is_neighbor(pair[1]) {
                return Err(PathError::NotAdjacent { index: k });
            }
        }
        let mut seen = cells.clone();
        seen.sort();
        for pair in seen.windows(2) {
            if pair[0] == pair[1] {
                return Err(PathError::Repeated { cell: pair[0] });
            }
        }
        Ok(Path { cells })
    }

    /// A straight path of `len` cells starting at `start`, heading `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::OutOfQuadrant`] if the path would step to a
    /// negative index, or [`PathError::Empty`] if `len == 0`.
    pub fn straight(start: CellId, dir: Dir, len: usize) -> Result<Path, PathError> {
        if len == 0 {
            return Err(PathError::Empty);
        }
        let mut cells = Vec::with_capacity(len);
        let mut cur = start;
        cells.push(cur);
        for _ in 1..len {
            cur = cur.step(dir).ok_or(PathError::OutOfQuadrant)?;
            cells.push(cur);
        }
        Ok(Path { cells })
    }

    /// Builds a path of exactly `len` cells and exactly `turns` turns inside
    /// `dims`, starting at `start`, or `None` if no such staircase fits.
    ///
    /// The construction makes the first `turns` segments one step long,
    /// alternating East and North, then runs the final segment straight —
    /// exactly the family of length-8 paths with 0–6 turns used by the paper's
    /// Figure 8.
    ///
    /// A path of `len` cells has `len − 1` steps, so `turns ≤ len − 2` is
    /// required.
    ///
    /// ```
    /// use cellflow_grid::{CellId, GridDims, Path};
    /// let dims = GridDims::square(8);
    /// for turns in 0..=6 {
    ///     let p = Path::with_turns(dims, CellId::new(0, 0), 8, turns).unwrap();
    ///     assert_eq!((p.len(), p.turns()), (8, turns));
    /// }
    /// ```
    pub fn with_turns(dims: GridDims, start: CellId, len: usize, turns: usize) -> Option<Path> {
        if len == 0 || (len == 1 && turns > 0) || (len >= 2 && turns > len - 2) {
            return None;
        }
        let steps = len - 1;
        // Segment k (0-based) heads East when k is even, North when k is odd.
        // Segments 0..turns have one step each; the final segment takes the rest.
        let mut dirs = Vec::with_capacity(steps);
        for seg in 0..turns {
            dirs.push(if seg % 2 == 0 { Dir::East } else { Dir::North });
        }
        let last_dir = if turns.is_multiple_of(2) {
            Dir::East
        } else {
            Dir::North
        };
        while dirs.len() < steps {
            dirs.push(last_dir);
        }
        let mut cells = Vec::with_capacity(len);
        let mut cur = start;
        cells.push(cur);
        for d in dirs {
            cur = cur.step(d)?;
            if !dims.contains(cur) {
                return None;
            }
            cells.push(cur);
        }
        Some(Path { cells })
    }

    /// A boustrophedon (serpentine) path visiting **every** cell of `dims`:
    /// east along row 0, one step north, west along row 1, and so on. The
    /// maximal-length simple path used by stress scenarios.
    ///
    /// ```
    /// use cellflow_grid::{GridDims, Path};
    /// let dims = GridDims::new(4, 3);
    /// let snake = Path::serpentine(dims);
    /// assert_eq!(snake.len(), 12);
    /// assert_eq!(snake.turns(), 2 * 2); // two turns per row change
    /// ```
    pub fn serpentine(dims: GridDims) -> Path {
        let mut cells = Vec::with_capacity(dims.cell_count());
        for j in 0..dims.ny() {
            let row: Vec<u16> = if j % 2 == 0 {
                (0..dims.nx()).collect()
            } else {
                (0..dims.nx()).rev().collect()
            };
            for i in row {
                cells.push(CellId::new(i, j));
            }
        }
        Path { cells }
    }

    /// The cells of the path, source first, target last.
    #[inline]
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of cells on the path (the paper's "path length").
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always `false`: paths have at least one cell.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The first cell (the source end).
    #[inline]
    pub fn source(&self) -> &CellId {
        &self.cells[0]
    }

    /// The last cell (the target end).
    #[inline]
    pub fn target(&self) -> &CellId {
        self.cells.last().expect("paths are nonempty")
    }

    /// The step directions along the path (`len() − 1` entries).
    pub fn dirs(&self) -> Vec<Dir> {
        self.cells
            .windows(2)
            .map(|w| w[0].dir_to(w[1]).expect("validated adjacency"))
            .collect()
    }

    /// The number of 90° turns along the path — the paper's path-complexity
    /// measure (Figure 8).
    pub fn turns(&self) -> usize {
        let dirs = self.dirs();
        dirs.windows(2).filter(|w| w[1].is_turn_from(w[0])).count()
    }

    /// `true` if `cell` lies on the path.
    #[inline]
    pub fn contains(&self, cell: CellId) -> bool {
        self.cells.contains(&cell)
    }

    /// `true` if every cell lies within `dims`.
    pub fn fits(&self, dims: GridDims) -> bool {
        self.cells.iter().all(|&c| dims.contains(c))
    }

    /// All cells of `dims` *not* on the path, in row-major order.
    ///
    /// Failing exactly these cells restricts routing to the path — how the
    /// simulation scenarios pin entity flows to a prescribed corridor (e.g. the
    /// turn-complexity sweep of Figure 8).
    pub fn carve_failures(&self, dims: GridDims) -> Vec<CellId> {
        dims.iter().filter(|&c| !self.contains(c)).collect()
    }

    /// Iterates over the cells of the path.
    pub fn iter(&self) -> impl Iterator<Item = &CellId> {
        self.cells.iter()
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path{:?}", self.cells)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.cells {
            if !first {
                f.write_str(" → ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl TryFrom<Vec<CellId>> for Path {
    type Error = PathError;

    fn try_from(cells: Vec<CellId>) -> Result<Path, PathError> {
        Path::new(cells)
    }
}

impl<'a> IntoIterator for &'a Path {
    type Item = &'a CellId;
    type IntoIter = core::slice::Iter<'a, CellId>;

    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter()
    }
}

/// Error constructing a [`Path`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathError {
    /// The cell sequence was empty.
    Empty,
    /// Cells at `index` and `index + 1` are not grid neighbors.
    NotAdjacent {
        /// Position of the first cell of the offending pair.
        index: usize,
    },
    /// A cell appears more than once.
    Repeated {
        /// The repeated cell.
        cell: CellId,
    },
    /// A step would leave the first quadrant (negative index).
    OutOfQuadrant,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => f.write_str("path must contain at least one cell"),
            PathError::NotAdjacent { index } => {
                write!(
                    f,
                    "cells at positions {index} and {} are not adjacent",
                    index + 1
                )
            }
            PathError::Repeated { cell } => write!(f, "cell {cell} appears more than once"),
            PathError::OutOfQuadrant => f.write_str("path leaves the first quadrant"),
        }
    }
}

impl std::error::Error for PathError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u16, j: u16) -> CellId {
        CellId::new(i, j)
    }

    #[test]
    fn validation_catches_bad_sequences() {
        assert_eq!(Path::new(vec![]).unwrap_err(), PathError::Empty);
        assert_eq!(
            Path::new(vec![id(0, 0), id(2, 0)]).unwrap_err(),
            PathError::NotAdjacent { index: 0 }
        );
        assert_eq!(
            Path::new(vec![id(0, 0), id(1, 0), id(0, 0)]).unwrap_err(),
            PathError::Repeated { cell: id(0, 0) }
        );
        assert!(Path::new(vec![id(0, 0)]).is_ok());
    }

    #[test]
    fn straight_paths() {
        let p = Path::straight(id(1, 0), Dir::North, 8).unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(*p.source(), id(1, 0));
        assert_eq!(*p.target(), id(1, 7));
        assert_eq!(p.turns(), 0);
        assert_eq!(p.dirs(), vec![Dir::North; 7]);
        assert_eq!(
            Path::straight(id(0, 0), Dir::West, 2).unwrap_err(),
            PathError::OutOfQuadrant
        );
        assert_eq!(
            Path::straight(id(0, 0), Dir::East, 0).unwrap_err(),
            PathError::Empty
        );
    }

    #[test]
    fn with_turns_exact_counts() {
        let dims = GridDims::square(8);
        for turns in 0..=6 {
            let p = Path::with_turns(dims, id(0, 0), 8, turns)
                .unwrap_or_else(|| panic!("no path with {turns} turns"));
            assert_eq!(p.len(), 8, "length for {turns} turns");
            assert_eq!(p.turns(), turns, "turn count");
            assert!(p.fits(dims));
        }
    }

    #[test]
    fn with_turns_rejects_impossible() {
        let dims = GridDims::square(8);
        // len−2 is the max number of turns.
        assert!(Path::with_turns(dims, id(0, 0), 8, 7).is_none());
        assert!(Path::with_turns(dims, id(0, 0), 0, 0).is_none());
        assert!(Path::with_turns(dims, id(0, 0), 1, 1).is_none());
        // Doesn't fit: straight length 9 in an 8-wide grid.
        assert!(Path::with_turns(dims, id(0, 0), 9, 0).is_none());
        // Single cell, zero turns is fine.
        assert_eq!(Path::with_turns(dims, id(0, 0), 1, 0).unwrap().len(), 1);
    }

    #[test]
    fn turn_counting_on_handmade_path() {
        // E, E, N, E, S : turns at steps 2,3,4 → 3 turns.
        let p = Path::new(vec![
            id(0, 0),
            id(1, 0),
            id(2, 0),
            id(2, 1),
            id(3, 1),
            id(3, 0),
        ])
        .unwrap();
        assert_eq!(p.turns(), 3);
    }

    #[test]
    fn carve_failures_complements_path() {
        let dims = GridDims::square(3);
        let p = Path::straight(id(0, 0), Dir::East, 3).unwrap();
        let carved = p.carve_failures(dims);
        assert_eq!(carved.len(), 6);
        for c in &carved {
            assert!(!p.contains(*c));
        }
        for c in p.iter() {
            assert!(!carved.contains(c));
        }
    }

    #[test]
    fn try_from_and_iter() {
        let p = Path::try_from(vec![id(0, 0), id(0, 1)]).unwrap();
        let collected: Vec<_> = (&p).into_iter().copied().collect();
        assert_eq!(collected, vec![id(0, 0), id(0, 1)]);
        assert!(!p.is_empty());
    }

    #[test]
    fn display_shows_arrows() {
        let p = Path::try_from(vec![id(0, 0), id(0, 1)]).unwrap();
        assert_eq!(p.to_string(), "⟨0, 0⟩ → ⟨0, 1⟩");
    }
}
