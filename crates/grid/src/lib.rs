//! Partitioned-plane grid substrate for distributed cellular flows.
//!
//! The paper *"Safe and Stabilizing Distributed Cellular Flows"* (ICDCS 2010)
//! partitions the plane into an `N × N` grid of unit-square cells, identified by
//! `ID = [N−1] × [N−1]`. This crate provides:
//!
//! * [`CellId`] — the identifier `⟨i, j⟩` of a cell, with the geometric
//!   relationship to its unit square in the plane;
//! * [`GridDims`] — grid dimensions, bounds checking, and neighbor enumeration
//!   (the paper's `Nbrs`, i.e. cells at Manhattan distance 1);
//! * [`Path`] — simple paths of adjacent cells with *turn counting* (the path
//!   complexity measure of the paper's Figure 8) and generators for the
//!   evaluation scenarios;
//! * [`connectivity`] — the path distance `ρ` through non-faulty cells and the
//!   target-connected set `TC` from Section III-B.
//!
//! # Example
//!
//! ```
//! use cellflow_grid::{CellId, GridDims, Path};
//!
//! let dims = GridDims::square(8);
//! let path = Path::with_turns(dims, CellId::new(0, 0), 8, 2).unwrap();
//! assert_eq!(path.len(), 8);
//! assert_eq!(path.turns(), 2);
//! assert!(path.cells().iter().all(|&c| dims.contains(c)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell_id;
pub mod connectivity;
mod dims;
mod path;

pub use cell_id::CellId;
pub use connectivity::{path_distances, target_connected, Distances};
pub use dims::GridDims;
pub use path::{Path, PathError};
