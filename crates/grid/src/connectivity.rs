//! Path distance `ρ` and the target-connected set `TC` (paper §III-B).
//!
//! The paper defines, for a state `x`, the *path distance* `ρ(x, ⟨i,j⟩)` of a
//! cell as its hop distance to the target through non-faulty cells (`∞` for
//! failed or disconnected cells), and `TC(x)` as the set of cells with finite
//! path distance. Both the stabilization analysis (Lemma 6, Corollary 7) and
//! the progress theorem (Theorem 10) are stated over `TC`.

use std::collections::{HashSet, VecDeque};

use crate::{CellId, GridDims};

/// Dense per-cell distances produced by [`path_distances`].
///
/// `None` means `ρ = ∞` (failed or not connected to the target).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Distances {
    dims: GridDims,
    dist: Vec<Option<u32>>,
}

impl Distances {
    /// The path distance `ρ` of `cell`, or `None` for `∞`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    #[inline]
    pub fn get(&self, cell: CellId) -> Option<u32> {
        self.dist[self.dims.index(cell)]
    }

    /// `true` if `cell` is target-connected (`ρ < ∞`).
    #[inline]
    pub fn is_connected(&self, cell: CellId) -> bool {
        self.get(cell).is_some()
    }

    /// The grid dimensions these distances were computed for.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The largest finite distance, or `None` if nothing is connected.
    pub fn eccentricity(&self) -> Option<u32> {
        self.dist.iter().flatten().copied().max()
    }

    /// Iterates over `(cell, ρ(cell))` pairs with finite distance.
    pub fn iter_connected(&self) -> impl Iterator<Item = (CellId, u32)> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter_map(move |(k, d)| d.map(|d| (self.dims.id_at(k), d)))
    }
}

/// Computes the paper's path distance `ρ` from every cell to `target` through
/// non-faulty cells, by breadth-first search.
///
/// `failed` is the set `F(x)` of crashed cells; they and anything they isolate
/// get distance `None` (`∞`). A failed target yields all-`None`.
///
/// # Panics
///
/// Panics if `target` is out of bounds.
///
/// ```
/// use cellflow_grid::{path_distances, CellId, GridDims};
/// use std::collections::HashSet;
///
/// let dims = GridDims::square(3);
/// let failed: HashSet<_> = [CellId::new(1, 0), CellId::new(1, 1)].into();
/// let rho = path_distances(dims, CellId::new(0, 0), &failed);
/// assert_eq!(rho.get(CellId::new(0, 0)), Some(0));
/// // ⟨2,0⟩ must route around the failed column, over the top row:
/// // ⟨2,0⟩→⟨2,1⟩→⟨2,2⟩→⟨1,2⟩→⟨0,2⟩→⟨0,1⟩→⟨0,0⟩.
/// assert_eq!(rho.get(CellId::new(2, 0)), Some(6));
/// assert_eq!(rho.get(CellId::new(1, 0)), None); // failed ⇒ ∞
/// ```
pub fn path_distances(dims: GridDims, target: CellId, failed: &HashSet<CellId>) -> Distances {
    assert!(
        dims.contains(target),
        "target {target} out of {dims} bounds"
    );
    let mut dist = vec![None; dims.cell_count()];
    if !failed.contains(&target) {
        dist[dims.index(target)] = Some(0);
        let mut queue = VecDeque::from([target]);
        while let Some(cur) = queue.pop_front() {
            let next_d = dist[dims.index(cur)].expect("queued cells have distances") + 1;
            for nbr in dims.neighbors(cur) {
                let slot = &mut dist[dims.index(nbr)];
                if slot.is_none() && !failed.contains(&nbr) {
                    *slot = Some(next_d);
                    queue.push_back(nbr);
                }
            }
        }
    }
    Distances { dims, dist }
}

/// The target-connected set `TC(x)`: all cells with finite path distance.
///
/// ```
/// use cellflow_grid::{target_connected, CellId, GridDims};
/// use std::collections::HashSet;
///
/// let dims = GridDims::square(2);
/// let tc = target_connected(dims, CellId::new(0, 0), &HashSet::new());
/// assert_eq!(tc.len(), 4);
/// ```
pub fn target_connected(
    dims: GridDims,
    target: CellId,
    failed: &HashSet<CellId>,
) -> HashSet<CellId> {
    path_distances(dims, target, failed)
        .iter_connected()
        .map(|(c, _)| c)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u16, j: u16) -> CellId {
        CellId::new(i, j)
    }

    #[test]
    fn no_failures_is_manhattan() {
        let dims = GridDims::square(5);
        let target = id(2, 2);
        let rho = path_distances(dims, target, &HashSet::new());
        for c in dims.iter() {
            assert_eq!(rho.get(c), Some(c.manhattan(target)), "cell {c}");
        }
        assert_eq!(rho.eccentricity(), Some(4));
    }

    #[test]
    fn failed_cells_are_infinite() {
        let dims = GridDims::square(3);
        let failed: HashSet<_> = [id(1, 1)].into();
        let rho = path_distances(dims, id(0, 0), &failed);
        assert_eq!(rho.get(id(1, 1)), None);
        assert!(!rho.is_connected(id(1, 1)));
        // Others take detours around the failed center.
        assert_eq!(rho.get(id(2, 2)), Some(4));
    }

    #[test]
    fn wall_disconnects_region() {
        let dims = GridDims::square(3);
        // Vertical wall at column 1 separates column 2 from the target at 0,1.
        let failed: HashSet<_> = [id(1, 0), id(1, 1), id(1, 2)].into();
        let rho = path_distances(dims, id(0, 1), &failed);
        for j in 0..3 {
            assert_eq!(rho.get(id(2, j)), None, "⟨2,{j}⟩ should be isolated");
            assert!(rho.is_connected(id(0, j)));
        }
        let tc = target_connected(dims, id(0, 1), &failed);
        assert_eq!(tc.len(), 3);
    }

    #[test]
    fn failed_target_disconnects_everything() {
        let dims = GridDims::square(2);
        let failed: HashSet<_> = [id(0, 0)].into();
        let rho = path_distances(dims, id(0, 0), &failed);
        for c in dims.iter() {
            assert_eq!(rho.get(c), None);
        }
        assert_eq!(rho.eccentricity(), None);
        assert!(target_connected(dims, id(0, 0), &failed).is_empty());
    }

    #[test]
    fn iter_connected_lists_pairs() {
        let dims = GridDims::square(2);
        let rho = path_distances(dims, id(1, 1), &HashSet::new());
        let mut pairs: Vec<_> = rho.iter_connected().collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![(id(0, 0), 2), (id(0, 1), 1), (id(1, 0), 1), (id(1, 1), 0)]
        );
        assert_eq!(rho.dims(), dims);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_bounds_target_panics() {
        path_distances(GridDims::square(2), id(2, 2), &HashSet::new());
    }
}
