//! Offline placeholder for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Used only by the `#![cfg(feature = "serde")]`-gated round-trip tests,
//! which the hermetic tier-1 build never compiles; this crate exists so
//! dependency resolution succeeds without network access (see
//! `vendor/README.md`).

#![forbid(unsafe_code)]
