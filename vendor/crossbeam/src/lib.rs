//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so external dependencies are replaced by vendored stubs via
//! `[patch.crates-io]` (see `vendor/README.md`). This stub provides the two
//! crossbeam facilities the workspace uses — unbounded MPSC channels and
//! scoped threads — implemented directly on `std`:
//!
//! * [`channel::unbounded`] wraps [`std::sync::mpsc::channel`] (which, since
//!   Rust 1.67, *is* crossbeam's channel implementation upstreamed into std);
//! * [`thread::scope`] wraps [`std::thread::scope`], adapting the panic
//!   contract: crossbeam returns `Err(payload)` when a spawned thread
//!   panicked, where std re-raises, so the wrapper catches the unwind.
//!
//! Only the APIs this repository calls are exposed.

#![forbid(unsafe_code)]

/// Multi-producer channels (the subset of `crossbeam::channel` in use).
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// An unbounded sender. Cloneable; sending never blocks.
    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    /// The receiving end (supports `recv`, `recv_timeout`, `try_iter`, …).
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads (the subset of `crossbeam::thread` in use).
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Alias of [`std::thread::Result`]: `Err` carries a panic payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; spawned closures receive a reference to it so they
    /// can spawn further scoped threads (crossbeam's signature).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, so nested
        /// spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which threads borrowing locals can be
    /// spawned; joins them all before returning. Returns `Err(payload)` if
    /// any spawned thread (or `f` itself) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channels_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<i32>>(), vec![1, 2]);
    }

    #[test]
    fn scope_joins_and_catches_panics() {
        let mut data = vec![0u64; 4];
        let ok = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .iter_mut()
                .enumerate()
                .map(|(k, slot)| s.spawn(move |_| *slot = k as u64 + 1))
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            42
        });
        assert_eq!(ok.unwrap(), 42);
        assert_eq!(data, vec![1, 2, 3, 4]);

        let err = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(err.is_err());
    }

    #[test]
    fn nested_spawn_from_scope_handle() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
