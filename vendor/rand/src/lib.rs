//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so the external dependencies are replaced by vendored stubs via
//! `[patch.crates-io]` (see `vendor/README.md`). This stub implements the
//! subset of the rand 0.8 API the workspace uses — [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_bool`], [`Rng::gen_range`], [`Rng::gen`], and the [`rngs::SmallRng`] /
//! [`rngs::StdRng`] generator types — with deterministic, portable algorithms
//! (splitmix64 seeding into xoshiro256**), which is a *feature* for this
//! repository: every seeded experiment is reproducible bit-for-bit on any
//! platform, with no dependence on an external crate's stream stability.
//!
//! It is **not** a cryptographic or statistically rigorous RNG and must never
//! be used outside this workspace's simulations and tests.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds the generator from a nondeterministic seed. In this offline
    /// stub the "entropy" is the monotonic time, which is good enough for
    /// the exploratory (non-seeded) uses in this workspace.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Sample types uniformly from ranges — the subset of `rand`'s
/// `SampleUniform` machinery the workspace needs.
pub trait UniformSample: Copy + PartialOrd {
    /// A uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// A uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high - low) as u128;
                low + (rng.next_u64() as u128 % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high - low) as u128 + 1;
                low + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (low as i128 + off) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (low as i128 + off) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        f64::draw(self) < p
    }

    /// A value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256** — the same family real `rand` 0.8 uses for `SmallRng` on
/// 64-bit targets. Deterministic and portable.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix cannot produce it
        // from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(state: u64) -> Self {
        Xoshiro256::from_u64(state)
    }
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    /// The small, fast generator (here: xoshiro256**).
    pub type SmallRng = super::Xoshiro256;
    /// The default generator (same algorithm in this stub — determinism over
    /// cryptographic strength).
    pub type StdRng = super::Xoshiro256;
}

/// A fresh generator seeded from the clock (mirrors `rand::thread_rng` just
/// closely enough for exploratory use; no thread-local caching).
pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::from_entropy()
}

/// `rand::random()` — one clock-seeded sample.
pub fn random<T: Standard>() -> T {
    T::draw(&mut thread_rng())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = rngs::SmallRng::seed_from_u64(7);
        let mut b = rngs::SmallRng::seed_from_u64(7);
        let mut c = rngs::SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y: u16 = rng.gen_range(3u16..=9);
            assert!((3..=9).contains(&y));
            let z: usize = rng.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_extremes_and_mass() {
        let mut rng = rngs::SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gen_bool_rejects_bad_p() {
        rngs::SmallRng::seed_from_u64(3).gen_bool(1.5);
    }
}
