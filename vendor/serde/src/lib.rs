//! Offline placeholder for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace's serialization support is behind opt-in `serde` cargo
//! features that the hermetic tier-1 build never enables; this placeholder
//! exists only so dependency resolution succeeds without network access
//! (see `vendor/README.md`). It declares the trait names so that stray
//! non-derive bounds still name-resolve, but it provides **no** derive
//! macros: building the workspace `--features serde` requires the real
//! serde and a network-connected environment.

#![forbid(unsafe_code)]

/// Placeholder for `serde::Serialize` (no methods; not implementable by
/// derive in this offline stub).
pub trait Serialize {}

/// Placeholder for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Placeholder for the `serde::de` module.
pub mod de {
    /// Placeholder for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: Sized {}
}

/// Placeholder for the `serde::ser` module.
pub mod ser {}
