//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io (see `vendor/README.md`). The real proptest brings a large
//! dependency tree and a shrinking engine; this stub implements the subset
//! of the proptest 1.x API the workspace's property tests use as a plain
//! seeded random-sampling harness:
//!
//! - [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter` / `boxed`
//! - strategies for integer ranges, tuples (arity 1–6), [`Just`],
//!   `prop_oneof!` unions, `collection::vec`, `collection::hash_set`,
//!   `sample::select`, `bool::ANY`, and `any::<T>()`
//! - [`test_runner::TestRunner`], [`test_runner::ProptestConfig`],
//!   [`test_runner::TestCaseError`]
//! - the `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`
//!   macros
//!
//! There is **no shrinking**: a failing case reports its seed and inputs
//! (via the assertion message) but is not minimized. Each test function is
//! deterministically seeded from its module path and name, so failures
//! reproduce across runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;

pub mod test_runner {
    //! The execution harness: RNG, config, and error types.

    use std::fmt;

    /// Deterministic splitmix64 RNG used to sample strategies.
    #[derive(Clone, Debug)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Creates an RNG from an explicit seed.
        pub fn from_seed(seed: u64) -> Rng {
            Rng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Creates an RNG deterministically seeded from a test's identity,
        /// so each property test gets a distinct but reproducible stream.
        pub fn seeded_for(name: &str) -> Rng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Rng::from_seed(h)
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift reduction; bias is negligible for test sampling.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Subset of proptest's per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Lighter than upstream's 256: these tests run in CI on every
            // push and the harness does no shrinking to amortize.
            ProptestConfig { cases: 64 }
        }
    }

    /// A rejected or failed test case.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The input was rejected (unused by this stub's strategies).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject<S: Into<String>>(msg: S) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// A failed property run: the case error plus the seed that produced it.
    #[derive(Clone, Debug)]
    pub struct TestError {
        /// What went wrong.
        pub error: TestCaseError,
        /// RNG seed of the failing run (reproduce by rerunning the test).
        pub seed: u64,
    }

    impl fmt::Display for TestError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{} (harness seed {:#x})", self.error, self.seed)
        }
    }

    /// Drives a strategy through repeated sampled runs.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: Rng,
    }

    impl Default for TestRunner {
        fn default() -> TestRunner {
            TestRunner::new(ProptestConfig::default())
        }
    }

    impl TestRunner {
        /// Runner with the given config and a fixed default seed.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner {
                config,
                rng: Rng::from_seed(0x5eed_cafe_f00d_d00d),
            }
        }

        /// Runner with an explicit seed (this stub's extension, used by the
        /// `proptest!` macro to seed per-test streams).
        pub fn with_rng(config: ProptestConfig, rng: Rng) -> TestRunner {
            TestRunner { config, rng }
        }

        /// Runs `test` against `config.cases` sampled values. Returns the
        /// first failure, if any.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
        where
            S: crate::Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            for _ in 0..self.config.cases {
                let case_seed = self.rng.state;
                let value = strategy.sample(&mut self.rng);
                if let Err(error) = test(value) {
                    if let TestCaseError::Reject(_) = error {
                        continue;
                    }
                    return Err(TestError {
                        error,
                        seed: case_seed,
                    });
                }
            }
            Ok(())
        }
    }
}

use test_runner::Rng;

/// How many re-samples `prop_filter` attempts before giving up.
const FILTER_MAX_RETRIES: u32 = 10_000;

/// A generator of random values of type `Value`.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy is
/// just a seeded sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then a dependent strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Re-samples until `pred` accepts a value (bounded retries).
    fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Maps values through `f`, re-sampling whenever it returns `None`
    /// (bounded retries).
    fn prop_filter_map<R, O, F>(self, reason: R, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(move |rng: &mut Rng| self.sample(rng)),
        }
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` adapter.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut Rng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// `prop_filter` adapter.
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut Rng) -> S::Value {
        for _ in 0..FILTER_MAX_RETRIES {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter exhausted {FILTER_MAX_RETRIES} retries: {}",
            self.reason
        );
    }
}

/// `prop_filter_map` adapter.
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn sample(&self, rng: &mut Rng) -> O {
        for _ in 0..FILTER_MAX_RETRIES {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map exhausted {FILTER_MAX_RETRIES} retries: {}",
            self.reason
        );
    }
}

/// A type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Fn(&mut Rng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut Rng) -> T {
        (self.inner)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union from its arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut Rng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Integer types sampleable uniformly from a range.
pub trait UniformSample: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_below(rng: &mut Rng, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_below(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as u128) - (lo as u128);
                lo + (((rng.next_u64() as u128 * span) >> 64) as $t)
            }
            fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (((rng.next_u64() as u128 * span) >> 64) as $t)
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_below(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (((rng.next_u64() as u128 * span) >> 64) as i128)) as $t
            }
            fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (((rng.next_u64() as u128 * span) >> 64) as i128)) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8, i16, i32, i64, isize);

impl<T: UniformSample> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut Rng) -> T {
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: UniformSample> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut Rng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// Strategy produced by [`any`].
pub struct ArbitraryStrategy<T> {
    sample: fn(&mut Rng) -> T,
    _ty: PhantomData<T>,
}

impl<T> Clone for ArbitraryStrategy<T> {
    fn clone(&self) -> Self {
        ArbitraryStrategy {
            sample: self.sample,
            _ty: PhantomData,
        }
    }
}

impl<T> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut Rng) -> T {
        (self.sample)(rng)
    }
}

macro_rules! impl_arbitrary {
    ($($t:ty => $f:expr;)*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<$t> {
                ArbitraryStrategy { sample: $f, _ty: PhantomData }
            }
        }
    )*};
}

impl_arbitrary! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i8 => |rng| rng.next_u64() as i8;
    i16 => |rng| rng.next_u64() as i16;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
    isize => |rng| rng.next_u64() as isize;
}

/// The canonical strategy for `T` (integers and `bool` here).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    T::arbitrary()
}

pub mod bool {
    //! Boolean strategies.

    use super::{Rng, Strategy};

    /// Uniform `bool` strategy (unit struct so it can be a `const`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    /// Generates `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        Weighted { p }
    }

    /// Bernoulli strategy from [`weighted`].
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn sample(&self, rng: &mut Rng) -> bool {
            rng.unit_f64() < self.p
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Rng, Strategy};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// An inclusive size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut Rng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
            }
        }
    }

    /// `Vec` strategy from an element strategy and a size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy built by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `HashSet` strategy; draws extra samples if duplicates collide, and
    /// accepts an undersized set when the element domain is too small.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy built by [`hash_set`].
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut Rng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 20 + 100 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    //! Sampling from explicit value lists.

    use super::{Rng, Strategy};

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone>(values: &[T]) -> Select<T> {
        assert!(!values.is_empty(), "sample::select on empty slice");
        Select {
            values: values.to_vec(),
        }
    }

    /// Strategy built by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut Rng) -> T {
            let i = rng.below(self.values.len() as u64) as usize;
            self.values[i].clone()
        }
    }
}

pub mod strategy {
    //! Re-exports mirroring proptest's module layout.
    pub use crate::{BoxedStrategy, Just, Strategy, Union};
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias so `prop::bool::ANY` / `prop::collection::vec` work.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Declares property tests. Each function body runs against
/// `ProptestConfig::default().cases` sampled inputs (or the count from an
/// optional leading `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __rng = $crate::test_runner::Rng::seeded_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __runner =
                    $crate::test_runner::TestRunner::with_rng(__config, __rng);
                let __strategy = ($($strat,)+);
                let __result = __runner.run(&__strategy, |__values| {
                    let ($($arg,)+) = __values;
                    let __case: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    __case
                });
                if let Err(__e) = __result {
                    panic!("proptest {} failed: {}", stringify!($name), __e);
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property, failing the case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right),
            format!($($fmt)*), __l, __r
        );
    }};
}

/// Asserts inequality inside a property, failing the case with both values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
}

/// Uniform choice among several strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Strategy::boxed($strat),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::Rng::from_seed(7);
        for _ in 0..1000 {
            let v = (3u32..10).sample(&mut rng);
            assert!((3..10).contains(&v));
            let w = (-5i32..=5).sample(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn runner_reports_failures() {
        let mut runner = crate::test_runner::TestRunner::default();
        let result = runner.run(&(0u32..100), |v| {
            if v >= 0 {
                Err(TestCaseError::fail("always fails"))
            } else {
                Ok(())
            }
        });
        assert!(result.is_err());
    }

    #[test]
    fn union_and_collections_sample() {
        let mut rng = crate::test_runner::Rng::from_seed(11);
        let s = prop_oneof![Just(1u8), Just(2u8)];
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v == 1 || v == 2);
        }
        let vs = prop::collection::vec(0u8..4, 2..=5).sample(&mut rng);
        assert!((2..=5).contains(&vs.len()));
        let hs = prop::collection::hash_set(0u32..1000, 3).sample(&mut rng);
        assert_eq!(hs.len(), 3);
        let sel = prop::sample::select(&[10, 20, 30]).sample(&mut rng);
        assert!([10, 20, 30].contains(&sel));
        let b = prop::bool::ANY.sample(&mut rng);
        let _ = b;
    }

    proptest! {
        #[test]
        fn macro_end_to_end(x in 0u64..100, flip in prop::bool::ANY) {
            prop_assert!(x < 100);
            let y = if flip { x + 1 } else { x };
            prop_assert_eq!(y >= x, true);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_with_config(v in prop::collection::vec(0i32..10, 0..4)) {
            prop_assert!(v.len() < 4);
        }
    }
}
