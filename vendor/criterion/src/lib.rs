//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io (see `vendor/README.md`). The real criterion brings a large
//! dependency tree (rayon, plotters, clap, …); this stub keeps the bench
//! sources compiling and runnable with a deliberately simple wall-clock
//! harness: each benchmark runs a short calibrated loop and prints
//! `bench <group>/<id> ... <time>/iter`. No statistics, no HTML reports —
//! numbers are indicative only.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (best-effort without
/// intrinsics: a volatile-ish identity through `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (accepted and echoed, not used in calculations).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple.
    BytesDecimal(u64),
}

/// A benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to bench closures; [`Bencher::iter`] runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over a calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call, then time a batch.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: aim for a modest total runtime so `cargo bench` stays quick.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(200);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;
    let mut b = Bencher {
        iters: iters.max(sample_size.min(10)),
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per = b.elapsed.as_secs_f64() / b.iters as f64;
    println!("bench {label:<50} {:>12.3} µs/iter ({} iters)", per * 1e6, b.iters);
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Sets the measurement time (accepted, unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates throughput (accepted, unused).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: IntoBenchmarkId, In: ?Sized, F: FnMut(&mut Bencher, &In)>(
        &mut self,
        id: I,
        input: &In,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The bench harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 10, &mut f);
        self
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
