/root/repo/target/release/deps/cellflow-2984233da7b36b60.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/cellflow-2984233da7b36b60: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
