/root/repo/target/release/deps/cellflow_geom-c6798a22836061d4.d: crates/geom/src/lib.rs crates/geom/src/direction.rs crates/geom/src/fixed.rs crates/geom/src/point.rs crates/geom/src/square.rs

/root/repo/target/release/deps/libcellflow_geom-c6798a22836061d4.rlib: crates/geom/src/lib.rs crates/geom/src/direction.rs crates/geom/src/fixed.rs crates/geom/src/point.rs crates/geom/src/square.rs

/root/repo/target/release/deps/libcellflow_geom-c6798a22836061d4.rmeta: crates/geom/src/lib.rs crates/geom/src/direction.rs crates/geom/src/fixed.rs crates/geom/src/point.rs crates/geom/src/square.rs

crates/geom/src/lib.rs:
crates/geom/src/direction.rs:
crates/geom/src/fixed.rs:
crates/geom/src/point.rs:
crates/geom/src/square.rs:
