/root/repo/target/release/deps/cellflow_multiflow-7636492575d12de6.d: crates/multiflow/src/lib.rs crates/multiflow/src/cell.rs crates/multiflow/src/config.rs crates/multiflow/src/phases.rs crates/multiflow/src/safety.rs crates/multiflow/src/types.rs

/root/repo/target/release/deps/libcellflow_multiflow-7636492575d12de6.rlib: crates/multiflow/src/lib.rs crates/multiflow/src/cell.rs crates/multiflow/src/config.rs crates/multiflow/src/phases.rs crates/multiflow/src/safety.rs crates/multiflow/src/types.rs

/root/repo/target/release/deps/libcellflow_multiflow-7636492575d12de6.rmeta: crates/multiflow/src/lib.rs crates/multiflow/src/cell.rs crates/multiflow/src/config.rs crates/multiflow/src/phases.rs crates/multiflow/src/safety.rs crates/multiflow/src/types.rs

crates/multiflow/src/lib.rs:
crates/multiflow/src/cell.rs:
crates/multiflow/src/config.rs:
crates/multiflow/src/phases.rs:
crates/multiflow/src/safety.rs:
crates/multiflow/src/types.rs:
