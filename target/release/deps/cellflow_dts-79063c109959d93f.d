/root/repo/target/release/deps/cellflow_dts-79063c109959d93f.d: crates/dts/src/lib.rs crates/dts/src/automaton.rs crates/dts/src/execution.rs crates/dts/src/explore.rs crates/dts/src/invariant.rs crates/dts/src/liveness.rs crates/dts/src/montecarlo.rs crates/dts/src/stabilize.rs

/root/repo/target/release/deps/libcellflow_dts-79063c109959d93f.rlib: crates/dts/src/lib.rs crates/dts/src/automaton.rs crates/dts/src/execution.rs crates/dts/src/explore.rs crates/dts/src/invariant.rs crates/dts/src/liveness.rs crates/dts/src/montecarlo.rs crates/dts/src/stabilize.rs

/root/repo/target/release/deps/libcellflow_dts-79063c109959d93f.rmeta: crates/dts/src/lib.rs crates/dts/src/automaton.rs crates/dts/src/execution.rs crates/dts/src/explore.rs crates/dts/src/invariant.rs crates/dts/src/liveness.rs crates/dts/src/montecarlo.rs crates/dts/src/stabilize.rs

crates/dts/src/lib.rs:
crates/dts/src/automaton.rs:
crates/dts/src/execution.rs:
crates/dts/src/explore.rs:
crates/dts/src/invariant.rs:
crates/dts/src/liveness.rs:
crates/dts/src/montecarlo.rs:
crates/dts/src/stabilize.rs:
