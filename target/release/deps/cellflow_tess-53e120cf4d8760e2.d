/root/repo/target/release/deps/cellflow_tess-53e120cf4d8760e2.d: crates/tess/src/lib.rs crates/tess/src/phases.rs crates/tess/src/safety.rs crates/tess/src/system.rs crates/tess/src/tessellation.rs

/root/repo/target/release/deps/libcellflow_tess-53e120cf4d8760e2.rlib: crates/tess/src/lib.rs crates/tess/src/phases.rs crates/tess/src/safety.rs crates/tess/src/system.rs crates/tess/src/tessellation.rs

/root/repo/target/release/deps/libcellflow_tess-53e120cf4d8760e2.rmeta: crates/tess/src/lib.rs crates/tess/src/phases.rs crates/tess/src/safety.rs crates/tess/src/system.rs crates/tess/src/tessellation.rs

crates/tess/src/lib.rs:
crates/tess/src/phases.rs:
crates/tess/src/safety.rs:
crates/tess/src/system.rs:
crates/tess/src/tessellation.rs:
