/root/repo/target/release/deps/cellflow_net-4ffd6a05909099dd.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs crates/net/src/sync.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libcellflow_net-4ffd6a05909099dd.rlib: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs crates/net/src/sync.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libcellflow_net-4ffd6a05909099dd.rmeta: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs crates/net/src/sync.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/node.rs:
crates/net/src/runtime.rs:
crates/net/src/sync.rs:
crates/net/src/transport.rs:
