/root/repo/target/release/deps/rand-044cd4d77dbd4909.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-044cd4d77dbd4909.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-044cd4d77dbd4909.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
