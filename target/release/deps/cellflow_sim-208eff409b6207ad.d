/root/repo/target/release/deps/cellflow_sim-208eff409b6207ad.d: crates/sim/src/lib.rs crates/sim/src/baseline.rs crates/sim/src/failure.rs crates/sim/src/heatmap.rs crates/sim/src/metrics.rs crates/sim/src/render.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libcellflow_sim-208eff409b6207ad.rlib: crates/sim/src/lib.rs crates/sim/src/baseline.rs crates/sim/src/failure.rs crates/sim/src/heatmap.rs crates/sim/src/metrics.rs crates/sim/src/render.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libcellflow_sim-208eff409b6207ad.rmeta: crates/sim/src/lib.rs crates/sim/src/baseline.rs crates/sim/src/failure.rs crates/sim/src/heatmap.rs crates/sim/src/metrics.rs crates/sim/src/render.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/baseline.rs:
crates/sim/src/failure.rs:
crates/sim/src/heatmap.rs:
crates/sim/src/metrics.rs:
crates/sim/src/render.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenario.rs:
crates/sim/src/stats.rs:
crates/sim/src/sweep.rs:
crates/sim/src/table.rs:
crates/sim/src/trace.rs:
