/root/repo/target/release/deps/cellular_flows-4fd643808bfd276d.d: src/lib.rs

/root/repo/target/release/deps/libcellular_flows-4fd643808bfd276d.rlib: src/lib.rs

/root/repo/target/release/deps/libcellular_flows-4fd643808bfd276d.rmeta: src/lib.rs

src/lib.rs:
