/root/repo/target/release/deps/cellflow_bench-bbf7e6977ee27c52.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcellflow_bench-bbf7e6977ee27c52.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcellflow_bench-bbf7e6977ee27c52.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
