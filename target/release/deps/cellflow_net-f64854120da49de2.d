/root/repo/target/release/deps/cellflow_net-f64854120da49de2.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs

/root/repo/target/release/deps/libcellflow_net-f64854120da49de2.rlib: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs

/root/repo/target/release/deps/libcellflow_net-f64854120da49de2.rmeta: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/node.rs:
crates/net/src/runtime.rs:
