/root/repo/target/release/deps/cellflow_cube-d7fceb779240fd74.d: crates/cube/src/lib.rs crates/cube/src/analysis.rs crates/cube/src/cell.rs crates/cube/src/geometry.rs crates/cube/src/phases.rs crates/cube/src/safety.rs crates/cube/src/system.rs

/root/repo/target/release/deps/libcellflow_cube-d7fceb779240fd74.rlib: crates/cube/src/lib.rs crates/cube/src/analysis.rs crates/cube/src/cell.rs crates/cube/src/geometry.rs crates/cube/src/phases.rs crates/cube/src/safety.rs crates/cube/src/system.rs

/root/repo/target/release/deps/libcellflow_cube-d7fceb779240fd74.rmeta: crates/cube/src/lib.rs crates/cube/src/analysis.rs crates/cube/src/cell.rs crates/cube/src/geometry.rs crates/cube/src/phases.rs crates/cube/src/safety.rs crates/cube/src/system.rs

crates/cube/src/lib.rs:
crates/cube/src/analysis.rs:
crates/cube/src/cell.rs:
crates/cube/src/geometry.rs:
crates/cube/src/phases.rs:
crates/cube/src/safety.rs:
crates/cube/src/system.rs:
