/root/repo/target/release/deps/cellflow_grid-45e2dff23869e55e.d: crates/grid/src/lib.rs crates/grid/src/cell_id.rs crates/grid/src/connectivity.rs crates/grid/src/dims.rs crates/grid/src/path.rs

/root/repo/target/release/deps/libcellflow_grid-45e2dff23869e55e.rlib: crates/grid/src/lib.rs crates/grid/src/cell_id.rs crates/grid/src/connectivity.rs crates/grid/src/dims.rs crates/grid/src/path.rs

/root/repo/target/release/deps/libcellflow_grid-45e2dff23869e55e.rmeta: crates/grid/src/lib.rs crates/grid/src/cell_id.rs crates/grid/src/connectivity.rs crates/grid/src/dims.rs crates/grid/src/path.rs

crates/grid/src/lib.rs:
crates/grid/src/cell_id.rs:
crates/grid/src/connectivity.rs:
crates/grid/src/dims.rs:
crates/grid/src/path.rs:
