/root/repo/target/release/deps/cellular_flows-bb34856f9c6608cd.d: src/lib.rs

/root/repo/target/release/deps/libcellular_flows-bb34856f9c6608cd.rlib: src/lib.rs

/root/repo/target/release/deps/libcellular_flows-bb34856f9c6608cd.rmeta: src/lib.rs

src/lib.rs:
