/root/repo/target/release/deps/cellflow_routing-38906d19aba7135b.d: crates/routing/src/lib.rs crates/routing/src/dist.rs crates/routing/src/table.rs crates/routing/src/topology.rs

/root/repo/target/release/deps/libcellflow_routing-38906d19aba7135b.rlib: crates/routing/src/lib.rs crates/routing/src/dist.rs crates/routing/src/table.rs crates/routing/src/topology.rs

/root/repo/target/release/deps/libcellflow_routing-38906d19aba7135b.rmeta: crates/routing/src/lib.rs crates/routing/src/dist.rs crates/routing/src/table.rs crates/routing/src/topology.rs

crates/routing/src/lib.rs:
crates/routing/src/dist.rs:
crates/routing/src/table.rs:
crates/routing/src/topology.rs:
