/root/repo/target/release/deps/cellflow_cli-9fe240f64ae8d59b.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libcellflow_cli-9fe240f64ae8d59b.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libcellflow_cli-9fe240f64ae8d59b.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
