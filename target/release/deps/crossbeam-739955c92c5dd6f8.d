/root/repo/target/release/deps/crossbeam-739955c92c5dd6f8.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-739955c92c5dd6f8.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-739955c92c5dd6f8.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
