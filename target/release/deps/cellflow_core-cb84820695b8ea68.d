/root/repo/target/release/deps/cellflow_core-cb84820695b8ea68.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/cell.rs crates/core/src/entity.rs crates/core/src/fault.rs crates/core/src/mc.rs crates/core/src/monitor.rs crates/core/src/move_fn.rs crates/core/src/params.rs crates/core/src/route.rs crates/core/src/safety.rs crates/core/src/signal.rs crates/core/src/source.rs crates/core/src/system.rs crates/core/src/token.rs crates/core/src/update.rs

/root/repo/target/release/deps/libcellflow_core-cb84820695b8ea68.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/cell.rs crates/core/src/entity.rs crates/core/src/fault.rs crates/core/src/mc.rs crates/core/src/monitor.rs crates/core/src/move_fn.rs crates/core/src/params.rs crates/core/src/route.rs crates/core/src/safety.rs crates/core/src/signal.rs crates/core/src/source.rs crates/core/src/system.rs crates/core/src/token.rs crates/core/src/update.rs

/root/repo/target/release/deps/libcellflow_core-cb84820695b8ea68.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/cell.rs crates/core/src/entity.rs crates/core/src/fault.rs crates/core/src/mc.rs crates/core/src/monitor.rs crates/core/src/move_fn.rs crates/core/src/params.rs crates/core/src/route.rs crates/core/src/safety.rs crates/core/src/signal.rs crates/core/src/source.rs crates/core/src/system.rs crates/core/src/token.rs crates/core/src/update.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/cell.rs:
crates/core/src/entity.rs:
crates/core/src/fault.rs:
crates/core/src/mc.rs:
crates/core/src/monitor.rs:
crates/core/src/move_fn.rs:
crates/core/src/params.rs:
crates/core/src/route.rs:
crates/core/src/safety.rs:
crates/core/src/signal.rs:
crates/core/src/source.rs:
crates/core/src/system.rs:
crates/core/src/token.rs:
crates/core/src/update.rs:
