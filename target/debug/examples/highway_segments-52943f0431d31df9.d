/root/repo/target/debug/examples/highway_segments-52943f0431d31df9.d: examples/highway_segments.rs

/root/repo/target/debug/examples/highway_segments-52943f0431d31df9: examples/highway_segments.rs

examples/highway_segments.rs:
