/root/repo/target/debug/examples/verify-e3fca01dfd0309fc.d: examples/verify.rs

/root/repo/target/debug/examples/verify-e3fca01dfd0309fc: examples/verify.rs

examples/verify.rs:
