/root/repo/target/debug/examples/verify-bf376983aefe106a.d: examples/verify.rs Cargo.toml

/root/repo/target/debug/examples/libverify-bf376983aefe106a.rmeta: examples/verify.rs Cargo.toml

examples/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
