/root/repo/target/debug/examples/conveyor-4ba3c32b59decc8c.d: examples/conveyor.rs

/root/repo/target/debug/examples/conveyor-4ba3c32b59decc8c: examples/conveyor.rs

examples/conveyor.rs:
