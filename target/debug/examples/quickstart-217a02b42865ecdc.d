/root/repo/target/debug/examples/quickstart-217a02b42865ecdc.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-217a02b42865ecdc.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
