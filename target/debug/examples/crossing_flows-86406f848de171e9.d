/root/repo/target/debug/examples/crossing_flows-86406f848de171e9.d: examples/crossing_flows.rs

/root/repo/target/debug/examples/crossing_flows-86406f848de171e9: examples/crossing_flows.rs

examples/crossing_flows.rs:
