/root/repo/target/debug/examples/highway-34e9236e7a83563c.d: examples/highway.rs Cargo.toml

/root/repo/target/debug/examples/libhighway-34e9236e7a83563c.rmeta: examples/highway.rs Cargo.toml

examples/highway.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
