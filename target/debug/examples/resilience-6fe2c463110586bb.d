/root/repo/target/debug/examples/resilience-6fe2c463110586bb.d: examples/resilience.rs

/root/repo/target/debug/examples/resilience-6fe2c463110586bb: examples/resilience.rs

examples/resilience.rs:
