/root/repo/target/debug/examples/verify-e11b72014acd88ff.d: examples/verify.rs

/root/repo/target/debug/examples/verify-e11b72014acd88ff: examples/verify.rs

examples/verify.rs:
