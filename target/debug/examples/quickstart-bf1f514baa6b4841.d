/root/repo/target/debug/examples/quickstart-bf1f514baa6b4841.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bf1f514baa6b4841: examples/quickstart.rs

examples/quickstart.rs:
