/root/repo/target/debug/examples/drone_corridor-71aa422a3787034c.d: examples/drone_corridor.rs

/root/repo/target/debug/examples/drone_corridor-71aa422a3787034c: examples/drone_corridor.rs

examples/drone_corridor.rs:
