/root/repo/target/debug/examples/quickstart-804db17a762071d2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-804db17a762071d2: examples/quickstart.rs

examples/quickstart.rs:
