/root/repo/target/debug/examples/drone_corridor-3fa1274df1ef92e3.d: examples/drone_corridor.rs

/root/repo/target/debug/examples/drone_corridor-3fa1274df1ef92e3: examples/drone_corridor.rs

examples/drone_corridor.rs:
