/root/repo/target/debug/examples/highway_segments-bf31221f63bfee30.d: examples/highway_segments.rs

/root/repo/target/debug/examples/highway_segments-bf31221f63bfee30: examples/highway_segments.rs

examples/highway_segments.rs:
