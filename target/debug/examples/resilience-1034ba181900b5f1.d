/root/repo/target/debug/examples/resilience-1034ba181900b5f1.d: examples/resilience.rs

/root/repo/target/debug/examples/resilience-1034ba181900b5f1: examples/resilience.rs

examples/resilience.rs:
