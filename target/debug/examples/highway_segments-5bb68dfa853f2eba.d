/root/repo/target/debug/examples/highway_segments-5bb68dfa853f2eba.d: examples/highway_segments.rs Cargo.toml

/root/repo/target/debug/examples/libhighway_segments-5bb68dfa853f2eba.rmeta: examples/highway_segments.rs Cargo.toml

examples/highway_segments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
