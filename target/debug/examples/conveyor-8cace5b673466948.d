/root/repo/target/debug/examples/conveyor-8cace5b673466948.d: examples/conveyor.rs

/root/repo/target/debug/examples/conveyor-8cace5b673466948: examples/conveyor.rs

examples/conveyor.rs:
