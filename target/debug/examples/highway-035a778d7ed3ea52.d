/root/repo/target/debug/examples/highway-035a778d7ed3ea52.d: examples/highway.rs

/root/repo/target/debug/examples/highway-035a778d7ed3ea52: examples/highway.rs

examples/highway.rs:
