/root/repo/target/debug/examples/crossing_flows-ad865f7426752188.d: examples/crossing_flows.rs

/root/repo/target/debug/examples/crossing_flows-ad865f7426752188: examples/crossing_flows.rs

examples/crossing_flows.rs:
