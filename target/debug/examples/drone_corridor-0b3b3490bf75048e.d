/root/repo/target/debug/examples/drone_corridor-0b3b3490bf75048e.d: examples/drone_corridor.rs Cargo.toml

/root/repo/target/debug/examples/libdrone_corridor-0b3b3490bf75048e.rmeta: examples/drone_corridor.rs Cargo.toml

examples/drone_corridor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
