/root/repo/target/debug/examples/crossing_flows-2f1b3a1d409dc271.d: examples/crossing_flows.rs Cargo.toml

/root/repo/target/debug/examples/libcrossing_flows-2f1b3a1d409dc271.rmeta: examples/crossing_flows.rs Cargo.toml

examples/crossing_flows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
