/root/repo/target/debug/examples/resilience-dbdbcdd806c89113.d: examples/resilience.rs Cargo.toml

/root/repo/target/debug/examples/libresilience-dbdbcdd806c89113.rmeta: examples/resilience.rs Cargo.toml

examples/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
