/root/repo/target/debug/examples/highway-510f4ada82ef8829.d: examples/highway.rs

/root/repo/target/debug/examples/highway-510f4ada82ef8829: examples/highway.rs

examples/highway.rs:
