/root/repo/target/debug/examples/conveyor-da271f495d01f59a.d: examples/conveyor.rs Cargo.toml

/root/repo/target/debug/examples/libconveyor-da271f495d01f59a.rmeta: examples/conveyor.rs Cargo.toml

examples/conveyor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
