/root/repo/target/debug/deps/path_length-7f54088a8e1995dc.d: crates/bench/src/bin/path_length.rs

/root/repo/target/debug/deps/path_length-7f54088a8e1995dc: crates/bench/src/bin/path_length.rs

crates/bench/src/bin/path_length.rs:
