/root/repo/target/debug/deps/cellular_flows-6cf5bef8f9a855a0.d: src/lib.rs

/root/repo/target/debug/deps/cellular_flows-6cf5bef8f9a855a0: src/lib.rs

src/lib.rs:
