/root/repo/target/debug/deps/cellflow_geom-311a17ebe7d0314a.d: crates/geom/src/lib.rs crates/geom/src/direction.rs crates/geom/src/fixed.rs crates/geom/src/point.rs crates/geom/src/square.rs

/root/repo/target/debug/deps/libcellflow_geom-311a17ebe7d0314a.rlib: crates/geom/src/lib.rs crates/geom/src/direction.rs crates/geom/src/fixed.rs crates/geom/src/point.rs crates/geom/src/square.rs

/root/repo/target/debug/deps/libcellflow_geom-311a17ebe7d0314a.rmeta: crates/geom/src/lib.rs crates/geom/src/direction.rs crates/geom/src/fixed.rs crates/geom/src/point.rs crates/geom/src/square.rs

crates/geom/src/lib.rs:
crates/geom/src/direction.rs:
crates/geom/src/fixed.rs:
crates/geom/src/point.rs:
crates/geom/src/square.rs:
