/root/repo/target/debug/deps/integration-90320853c9768aeb.d: crates/sim/tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-90320853c9768aeb.rmeta: crates/sim/tests/integration.rs Cargo.toml

crates/sim/tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
