/root/repo/target/debug/deps/cellflow-7e194acdc9568f0a.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow-7e194acdc9568f0a.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
