/root/repo/target/debug/deps/montecarlo-915755be7d964576.d: tests/montecarlo.rs Cargo.toml

/root/repo/target/debug/deps/libmontecarlo-915755be7d964576.rmeta: tests/montecarlo.rs Cargo.toml

tests/montecarlo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
