/root/repo/target/debug/deps/props-5236bff639bce9ab.d: crates/geom/tests/props.rs

/root/repo/target/debug/deps/props-5236bff639bce9ab: crates/geom/tests/props.rs

crates/geom/tests/props.rs:
