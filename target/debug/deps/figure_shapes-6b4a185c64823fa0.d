/root/repo/target/debug/deps/figure_shapes-6b4a185c64823fa0.d: tests/figure_shapes.rs

/root/repo/target/debug/deps/figure_shapes-6b4a185c64823fa0: tests/figure_shapes.rs

tests/figure_shapes.rs:
