/root/repo/target/debug/deps/integration-d25843c7f0ae1046.d: crates/sim/tests/integration.rs

/root/repo/target/debug/deps/integration-d25843c7f0ae1046: crates/sim/tests/integration.rs

crates/sim/tests/integration.rs:
