/root/repo/target/debug/deps/proptest-7c81ed93d45510e0.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7c81ed93d45510e0.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
