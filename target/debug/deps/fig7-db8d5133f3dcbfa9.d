/root/repo/target/debug/deps/fig7-db8d5133f3dcbfa9.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-db8d5133f3dcbfa9: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
