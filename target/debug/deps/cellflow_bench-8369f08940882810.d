/root/repo/target/debug/deps/cellflow_bench-8369f08940882810.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcellflow_bench-8369f08940882810.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcellflow_bench-8369f08940882810.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
