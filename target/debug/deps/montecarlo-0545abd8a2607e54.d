/root/repo/target/debug/deps/montecarlo-0545abd8a2607e54.d: tests/montecarlo.rs

/root/repo/target/debug/deps/montecarlo-0545abd8a2607e54: tests/montecarlo.rs

tests/montecarlo.rs:
