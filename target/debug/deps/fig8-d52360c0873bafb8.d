/root/repo/target/debug/deps/fig8-d52360c0873bafb8.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-d52360c0873bafb8: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
