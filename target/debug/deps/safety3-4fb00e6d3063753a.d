/root/repo/target/debug/deps/safety3-4fb00e6d3063753a.d: crates/cube/tests/safety3.rs

/root/repo/target/debug/deps/safety3-4fb00e6d3063753a: crates/cube/tests/safety3.rs

crates/cube/tests/safety3.rs:
