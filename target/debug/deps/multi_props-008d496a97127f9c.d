/root/repo/target/debug/deps/multi_props-008d496a97127f9c.d: crates/multiflow/tests/multi_props.rs

/root/repo/target/debug/deps/multi_props-008d496a97127f9c: crates/multiflow/tests/multi_props.rs

crates/multiflow/tests/multi_props.rs:
