/root/repo/target/debug/deps/cellular_flows-e2a27a0147b42188.d: src/lib.rs

/root/repo/target/debug/deps/libcellular_flows-e2a27a0147b42188.rlib: src/lib.rs

/root/repo/target/debug/deps/libcellular_flows-e2a27a0147b42188.rmeta: src/lib.rs

src/lib.rs:
