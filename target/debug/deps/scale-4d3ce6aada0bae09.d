/root/repo/target/debug/deps/scale-4d3ce6aada0bae09.d: tests/scale.rs

/root/repo/target/debug/deps/scale-4d3ce6aada0bae09: tests/scale.rs

tests/scale.rs:
