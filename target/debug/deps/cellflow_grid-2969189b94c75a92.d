/root/repo/target/debug/deps/cellflow_grid-2969189b94c75a92.d: crates/grid/src/lib.rs crates/grid/src/cell_id.rs crates/grid/src/connectivity.rs crates/grid/src/dims.rs crates/grid/src/path.rs

/root/repo/target/debug/deps/cellflow_grid-2969189b94c75a92: crates/grid/src/lib.rs crates/grid/src/cell_id.rs crates/grid/src/connectivity.rs crates/grid/src/dims.rs crates/grid/src/path.rs

crates/grid/src/lib.rs:
crates/grid/src/cell_id.rs:
crates/grid/src/connectivity.rs:
crates/grid/src/dims.rs:
crates/grid/src/path.rs:
