/root/repo/target/debug/deps/lemmas-9cb42a1f23964313.d: crates/core/tests/lemmas.rs Cargo.toml

/root/repo/target/debug/deps/liblemmas-9cb42a1f23964313.rmeta: crates/core/tests/lemmas.rs Cargo.toml

crates/core/tests/lemmas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
