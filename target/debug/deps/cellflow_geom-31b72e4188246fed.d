/root/repo/target/debug/deps/cellflow_geom-31b72e4188246fed.d: crates/geom/src/lib.rs crates/geom/src/direction.rs crates/geom/src/fixed.rs crates/geom/src/point.rs crates/geom/src/square.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_geom-31b72e4188246fed.rmeta: crates/geom/src/lib.rs crates/geom/src/direction.rs crates/geom/src/fixed.rs crates/geom/src/point.rs crates/geom/src/square.rs Cargo.toml

crates/geom/src/lib.rs:
crates/geom/src/direction.rs:
crates/geom/src/fixed.rs:
crates/geom/src/point.rs:
crates/geom/src/square.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
