/root/repo/target/debug/deps/figure_shapes-7fcce96cb0adbfc1.d: tests/figure_shapes.rs

/root/repo/target/debug/deps/figure_shapes-7fcce96cb0adbfc1: tests/figure_shapes.rs

tests/figure_shapes.rs:
