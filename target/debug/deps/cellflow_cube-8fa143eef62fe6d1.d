/root/repo/target/debug/deps/cellflow_cube-8fa143eef62fe6d1.d: crates/cube/src/lib.rs crates/cube/src/analysis.rs crates/cube/src/cell.rs crates/cube/src/geometry.rs crates/cube/src/phases.rs crates/cube/src/safety.rs crates/cube/src/system.rs

/root/repo/target/debug/deps/libcellflow_cube-8fa143eef62fe6d1.rlib: crates/cube/src/lib.rs crates/cube/src/analysis.rs crates/cube/src/cell.rs crates/cube/src/geometry.rs crates/cube/src/phases.rs crates/cube/src/safety.rs crates/cube/src/system.rs

/root/repo/target/debug/deps/libcellflow_cube-8fa143eef62fe6d1.rmeta: crates/cube/src/lib.rs crates/cube/src/analysis.rs crates/cube/src/cell.rs crates/cube/src/geometry.rs crates/cube/src/phases.rs crates/cube/src/safety.rs crates/cube/src/system.rs

crates/cube/src/lib.rs:
crates/cube/src/analysis.rs:
crates/cube/src/cell.rs:
crates/cube/src/geometry.rs:
crates/cube/src/phases.rs:
crates/cube/src/safety.rs:
crates/cube/src/system.rs:
