/root/repo/target/debug/deps/congestion-4fdae5bc8573f5c0.d: crates/bench/src/bin/congestion.rs Cargo.toml

/root/repo/target/debug/deps/libcongestion-4fdae5bc8573f5c0.rmeta: crates/bench/src/bin/congestion.rs Cargo.toml

crates/bench/src/bin/congestion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
