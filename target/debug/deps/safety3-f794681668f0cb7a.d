/root/repo/target/debug/deps/safety3-f794681668f0cb7a.d: crates/cube/tests/safety3.rs Cargo.toml

/root/repo/target/debug/deps/libsafety3-f794681668f0cb7a.rmeta: crates/cube/tests/safety3.rs Cargo.toml

crates/cube/tests/safety3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
