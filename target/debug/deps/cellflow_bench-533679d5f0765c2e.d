/root/repo/target/debug/deps/cellflow_bench-533679d5f0765c2e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cellflow_bench-533679d5f0765c2e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
