/root/repo/target/debug/deps/cellflow-ec4abebaf10412cf.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/cellflow-ec4abebaf10412cf: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
