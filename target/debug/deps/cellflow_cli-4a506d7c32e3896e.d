/root/repo/target/debug/deps/cellflow_cli-4a506d7c32e3896e.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/cellflow_cli-4a506d7c32e3896e: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
