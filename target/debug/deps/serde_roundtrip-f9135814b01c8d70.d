/root/repo/target/debug/deps/serde_roundtrip-f9135814b01c8d70.d: tests/serde_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libserde_roundtrip-f9135814b01c8d70.rmeta: tests/serde_roundtrip.rs Cargo.toml

tests/serde_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
