/root/repo/target/debug/deps/cellflow_dts-0ad10e18e50658a7.d: crates/dts/src/lib.rs crates/dts/src/automaton.rs crates/dts/src/execution.rs crates/dts/src/explore.rs crates/dts/src/invariant.rs crates/dts/src/liveness.rs crates/dts/src/montecarlo.rs crates/dts/src/stabilize.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_dts-0ad10e18e50658a7.rmeta: crates/dts/src/lib.rs crates/dts/src/automaton.rs crates/dts/src/execution.rs crates/dts/src/explore.rs crates/dts/src/invariant.rs crates/dts/src/liveness.rs crates/dts/src/montecarlo.rs crates/dts/src/stabilize.rs Cargo.toml

crates/dts/src/lib.rs:
crates/dts/src/automaton.rs:
crates/dts/src/execution.rs:
crates/dts/src/explore.rs:
crates/dts/src/invariant.rs:
crates/dts/src/liveness.rs:
crates/dts/src/montecarlo.rs:
crates/dts/src/stabilize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
