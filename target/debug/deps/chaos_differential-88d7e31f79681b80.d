/root/repo/target/debug/deps/chaos_differential-88d7e31f79681b80.d: tests/chaos_differential.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_differential-88d7e31f79681b80.rmeta: tests/chaos_differential.rs Cargo.toml

tests/chaos_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
