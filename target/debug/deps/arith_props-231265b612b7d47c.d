/root/repo/target/debug/deps/arith_props-231265b612b7d47c.d: crates/geom/tests/arith_props.rs

/root/repo/target/debug/deps/arith_props-231265b612b7d47c: crates/geom/tests/arith_props.rs

crates/geom/tests/arith_props.rs:
