/root/repo/target/debug/deps/model_check-cbcb7785f5ebe42e.d: tests/model_check.rs

/root/repo/target/debug/deps/model_check-cbcb7785f5ebe42e: tests/model_check.rs

tests/model_check.rs:
