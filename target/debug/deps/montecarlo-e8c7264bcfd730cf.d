/root/repo/target/debug/deps/montecarlo-e8c7264bcfd730cf.d: tests/montecarlo.rs

/root/repo/target/debug/deps/montecarlo-e8c7264bcfd730cf: tests/montecarlo.rs

tests/montecarlo.rs:
