/root/repo/target/debug/deps/equivalence-cbfba5dadc1a33e0.d: crates/net/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-cbfba5dadc1a33e0: crates/net/tests/equivalence.rs

crates/net/tests/equivalence.rs:
