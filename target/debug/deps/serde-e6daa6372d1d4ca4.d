/root/repo/target/debug/deps/serde-e6daa6372d1d4ca4.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e6daa6372d1d4ca4.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e6daa6372d1d4ca4.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
