/root/repo/target/debug/deps/cellflow_bench-c2d2c5d3ccea78ce.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcellflow_bench-c2d2c5d3ccea78ce.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcellflow_bench-c2d2c5d3ccea78ce.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
