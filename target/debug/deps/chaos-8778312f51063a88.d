/root/repo/target/debug/deps/chaos-8778312f51063a88.d: crates/net/tests/chaos.rs

/root/repo/target/debug/deps/chaos-8778312f51063a88: crates/net/tests/chaos.rs

crates/net/tests/chaos.rs:
