/root/repo/target/debug/deps/rand-61e542368929d8be.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-61e542368929d8be.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
