/root/repo/target/debug/deps/multi_props-1715640ec82d2d3a.d: crates/multiflow/tests/multi_props.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_props-1715640ec82d2d3a.rmeta: crates/multiflow/tests/multi_props.rs Cargo.toml

crates/multiflow/tests/multi_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
