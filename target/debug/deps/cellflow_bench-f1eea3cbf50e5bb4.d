/root/repo/target/debug/deps/cellflow_bench-f1eea3cbf50e5bb4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cellflow_bench-f1eea3cbf50e5bb4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
