/root/repo/target/debug/deps/serde-e1be46c862f4a124.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e1be46c862f4a124.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
