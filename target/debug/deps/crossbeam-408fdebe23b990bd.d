/root/repo/target/debug/deps/crossbeam-408fdebe23b990bd.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-408fdebe23b990bd.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-408fdebe23b990bd.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
