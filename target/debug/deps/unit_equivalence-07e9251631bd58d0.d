/root/repo/target/debug/deps/unit_equivalence-07e9251631bd58d0.d: crates/tess/tests/unit_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libunit_equivalence-07e9251631bd58d0.rmeta: crates/tess/tests/unit_equivalence.rs Cargo.toml

crates/tess/tests/unit_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
