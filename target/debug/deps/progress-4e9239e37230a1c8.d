/root/repo/target/debug/deps/progress-4e9239e37230a1c8.d: crates/core/tests/progress.rs

/root/repo/target/debug/deps/progress-4e9239e37230a1c8: crates/core/tests/progress.rs

crates/core/tests/progress.rs:
