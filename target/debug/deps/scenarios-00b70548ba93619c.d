/root/repo/target/debug/deps/scenarios-00b70548ba93619c.d: crates/bench/benches/scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libscenarios-00b70548ba93619c.rmeta: crates/bench/benches/scenarios.rs Cargo.toml

crates/bench/benches/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
