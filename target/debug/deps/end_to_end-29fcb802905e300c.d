/root/repo/target/debug/deps/end_to_end-29fcb802905e300c.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-29fcb802905e300c: tests/end_to_end.rs

tests/end_to_end.rs:
