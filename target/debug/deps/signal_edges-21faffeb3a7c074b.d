/root/repo/target/debug/deps/signal_edges-21faffeb3a7c074b.d: crates/core/tests/signal_edges.rs

/root/repo/target/debug/deps/signal_edges-21faffeb3a7c074b: crates/core/tests/signal_edges.rs

crates/core/tests/signal_edges.rs:
