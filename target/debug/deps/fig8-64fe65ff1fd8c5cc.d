/root/repo/target/debug/deps/fig8-64fe65ff1fd8c5cc.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-64fe65ff1fd8c5cc.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
