/root/repo/target/debug/deps/cellflow_multiflow-e6084e31035a67d6.d: crates/multiflow/src/lib.rs crates/multiflow/src/cell.rs crates/multiflow/src/config.rs crates/multiflow/src/phases.rs crates/multiflow/src/safety.rs crates/multiflow/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_multiflow-e6084e31035a67d6.rmeta: crates/multiflow/src/lib.rs crates/multiflow/src/cell.rs crates/multiflow/src/config.rs crates/multiflow/src/phases.rs crates/multiflow/src/safety.rs crates/multiflow/src/types.rs Cargo.toml

crates/multiflow/src/lib.rs:
crates/multiflow/src/cell.rs:
crates/multiflow/src/config.rs:
crates/multiflow/src/phases.rs:
crates/multiflow/src/safety.rs:
crates/multiflow/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
