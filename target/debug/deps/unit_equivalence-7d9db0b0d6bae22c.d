/root/repo/target/debug/deps/unit_equivalence-7d9db0b0d6bae22c.d: crates/tess/tests/unit_equivalence.rs

/root/repo/target/debug/deps/unit_equivalence-7d9db0b0d6bae22c: crates/tess/tests/unit_equivalence.rs

crates/tess/tests/unit_equivalence.rs:
