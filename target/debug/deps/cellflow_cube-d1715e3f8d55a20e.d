/root/repo/target/debug/deps/cellflow_cube-d1715e3f8d55a20e.d: crates/cube/src/lib.rs crates/cube/src/analysis.rs crates/cube/src/cell.rs crates/cube/src/geometry.rs crates/cube/src/phases.rs crates/cube/src/safety.rs crates/cube/src/system.rs

/root/repo/target/debug/deps/cellflow_cube-d1715e3f8d55a20e: crates/cube/src/lib.rs crates/cube/src/analysis.rs crates/cube/src/cell.rs crates/cube/src/geometry.rs crates/cube/src/phases.rs crates/cube/src/safety.rs crates/cube/src/system.rs

crates/cube/src/lib.rs:
crates/cube/src/analysis.rs:
crates/cube/src/cell.rs:
crates/cube/src/geometry.rs:
crates/cube/src/phases.rs:
crates/cube/src/safety.rs:
crates/cube/src/system.rs:
