/root/repo/target/debug/deps/congestion-3e404fb037396d6b.d: crates/bench/src/bin/congestion.rs

/root/repo/target/debug/deps/congestion-3e404fb037396d6b: crates/bench/src/bin/congestion.rs

crates/bench/src/bin/congestion.rs:
