/root/repo/target/debug/deps/props-176be657dd7849b1.d: crates/grid/tests/props.rs

/root/repo/target/debug/deps/props-176be657dd7849b1: crates/grid/tests/props.rs

crates/grid/tests/props.rs:
