/root/repo/target/debug/deps/cellflow_dts-45af5b8cd791d7d9.d: crates/dts/src/lib.rs crates/dts/src/automaton.rs crates/dts/src/execution.rs crates/dts/src/explore.rs crates/dts/src/invariant.rs crates/dts/src/liveness.rs crates/dts/src/montecarlo.rs crates/dts/src/stabilize.rs

/root/repo/target/debug/deps/cellflow_dts-45af5b8cd791d7d9: crates/dts/src/lib.rs crates/dts/src/automaton.rs crates/dts/src/execution.rs crates/dts/src/explore.rs crates/dts/src/invariant.rs crates/dts/src/liveness.rs crates/dts/src/montecarlo.rs crates/dts/src/stabilize.rs

crates/dts/src/lib.rs:
crates/dts/src/automaton.rs:
crates/dts/src/execution.rs:
crates/dts/src/explore.rs:
crates/dts/src/invariant.rs:
crates/dts/src/liveness.rs:
crates/dts/src/montecarlo.rs:
crates/dts/src/stabilize.rs:
