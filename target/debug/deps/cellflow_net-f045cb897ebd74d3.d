/root/repo/target/debug/deps/cellflow_net-f045cb897ebd74d3.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs crates/net/src/sync.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libcellflow_net-f045cb897ebd74d3.rlib: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs crates/net/src/sync.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libcellflow_net-f045cb897ebd74d3.rmeta: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs crates/net/src/sync.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/node.rs:
crates/net/src/runtime.rs:
crates/net/src/sync.rs:
crates/net/src/transport.rs:
