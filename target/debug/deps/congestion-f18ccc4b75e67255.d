/root/repo/target/debug/deps/congestion-f18ccc4b75e67255.d: crates/bench/src/bin/congestion.rs Cargo.toml

/root/repo/target/debug/deps/libcongestion-f18ccc4b75e67255.rmeta: crates/bench/src/bin/congestion.rs Cargo.toml

crates/bench/src/bin/congestion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
