/root/repo/target/debug/deps/safety_props-9f30d764c702f936.d: crates/core/tests/safety_props.rs Cargo.toml

/root/repo/target/debug/deps/libsafety_props-9f30d764c702f936.rmeta: crates/core/tests/safety_props.rs Cargo.toml

crates/core/tests/safety_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
