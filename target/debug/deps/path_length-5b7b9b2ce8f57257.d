/root/repo/target/debug/deps/path_length-5b7b9b2ce8f57257.d: crates/bench/src/bin/path_length.rs Cargo.toml

/root/repo/target/debug/deps/libpath_length-5b7b9b2ce8f57257.rmeta: crates/bench/src/bin/path_length.rs Cargo.toml

crates/bench/src/bin/path_length.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
