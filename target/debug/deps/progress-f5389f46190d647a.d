/root/repo/target/debug/deps/progress-f5389f46190d647a.d: crates/core/tests/progress.rs Cargo.toml

/root/repo/target/debug/deps/libprogress-f5389f46190d647a.rmeta: crates/core/tests/progress.rs Cargo.toml

crates/core/tests/progress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
