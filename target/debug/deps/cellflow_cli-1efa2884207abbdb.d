/root/repo/target/debug/deps/cellflow_cli-1efa2884207abbdb.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libcellflow_cli-1efa2884207abbdb.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libcellflow_cli-1efa2884207abbdb.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
