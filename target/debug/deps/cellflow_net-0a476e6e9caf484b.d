/root/repo/target/debug/deps/cellflow_net-0a476e6e9caf484b.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs

/root/repo/target/debug/deps/cellflow_net-0a476e6e9caf484b: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/node.rs:
crates/net/src/runtime.rs:
