/root/repo/target/debug/deps/model_check-b850dd5dfd8ebd28.d: tests/model_check.rs

/root/repo/target/debug/deps/model_check-b850dd5dfd8ebd28: tests/model_check.rs

tests/model_check.rs:
