/root/repo/target/debug/deps/fig9-501e75b2a3b48018.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-501e75b2a3b48018: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
