/root/repo/target/debug/deps/stabilization-0b84a4eab19d5979.d: crates/routing/tests/stabilization.rs Cargo.toml

/root/repo/target/debug/deps/libstabilization-0b84a4eab19d5979.rmeta: crates/routing/tests/stabilization.rs Cargo.toml

crates/routing/tests/stabilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
