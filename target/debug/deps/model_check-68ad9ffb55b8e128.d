/root/repo/target/debug/deps/model_check-68ad9ffb55b8e128.d: tests/model_check.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_check-68ad9ffb55b8e128.rmeta: tests/model_check.rs Cargo.toml

tests/model_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
