/root/repo/target/debug/deps/cellflow_net-32259f220bac5e85.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs crates/net/src/sync.rs crates/net/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_net-32259f220bac5e85.rmeta: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs crates/net/src/sync.rs crates/net/src/transport.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/node.rs:
crates/net/src/runtime.rs:
crates/net/src/sync.rs:
crates/net/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
