/root/repo/target/debug/deps/congestion-dd0436220d646789.d: crates/bench/src/bin/congestion.rs

/root/repo/target/debug/deps/congestion-dd0436220d646789: crates/bench/src/bin/congestion.rs

crates/bench/src/bin/congestion.rs:
