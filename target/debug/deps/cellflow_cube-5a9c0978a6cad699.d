/root/repo/target/debug/deps/cellflow_cube-5a9c0978a6cad699.d: crates/cube/src/lib.rs crates/cube/src/analysis.rs crates/cube/src/cell.rs crates/cube/src/geometry.rs crates/cube/src/phases.rs crates/cube/src/safety.rs crates/cube/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_cube-5a9c0978a6cad699.rmeta: crates/cube/src/lib.rs crates/cube/src/analysis.rs crates/cube/src/cell.rs crates/cube/src/geometry.rs crates/cube/src/phases.rs crates/cube/src/safety.rs crates/cube/src/system.rs Cargo.toml

crates/cube/src/lib.rs:
crates/cube/src/analysis.rs:
crates/cube/src/cell.rs:
crates/cube/src/geometry.rs:
crates/cube/src/phases.rs:
crates/cube/src/safety.rs:
crates/cube/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
