/root/repo/target/debug/deps/arith_props-d6841d108830b26b.d: crates/geom/tests/arith_props.rs Cargo.toml

/root/repo/target/debug/deps/libarith_props-d6841d108830b26b.rmeta: crates/geom/tests/arith_props.rs Cargo.toml

crates/geom/tests/arith_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
