/root/repo/target/debug/deps/cellflow_routing-a62fda580e3c3560.d: crates/routing/src/lib.rs crates/routing/src/dist.rs crates/routing/src/table.rs crates/routing/src/topology.rs

/root/repo/target/debug/deps/cellflow_routing-a62fda580e3c3560: crates/routing/src/lib.rs crates/routing/src/dist.rs crates/routing/src/table.rs crates/routing/src/topology.rs

crates/routing/src/lib.rs:
crates/routing/src/dist.rs:
crates/routing/src/table.rs:
crates/routing/src/topology.rs:
