/root/repo/target/debug/deps/cellflow_sim-b242919efe587ee0.d: crates/sim/src/lib.rs crates/sim/src/baseline.rs crates/sim/src/failure.rs crates/sim/src/heatmap.rs crates/sim/src/metrics.rs crates/sim/src/render.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_sim-b242919efe587ee0.rmeta: crates/sim/src/lib.rs crates/sim/src/baseline.rs crates/sim/src/failure.rs crates/sim/src/heatmap.rs crates/sim/src/metrics.rs crates/sim/src/render.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/baseline.rs:
crates/sim/src/failure.rs:
crates/sim/src/heatmap.rs:
crates/sim/src/metrics.rs:
crates/sim/src/render.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenario.rs:
crates/sim/src/stats.rs:
crates/sim/src/sweep.rs:
crates/sim/src/table.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
