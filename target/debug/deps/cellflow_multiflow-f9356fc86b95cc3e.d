/root/repo/target/debug/deps/cellflow_multiflow-f9356fc86b95cc3e.d: crates/multiflow/src/lib.rs crates/multiflow/src/cell.rs crates/multiflow/src/config.rs crates/multiflow/src/phases.rs crates/multiflow/src/safety.rs crates/multiflow/src/types.rs

/root/repo/target/debug/deps/cellflow_multiflow-f9356fc86b95cc3e: crates/multiflow/src/lib.rs crates/multiflow/src/cell.rs crates/multiflow/src/config.rs crates/multiflow/src/phases.rs crates/multiflow/src/safety.rs crates/multiflow/src/types.rs

crates/multiflow/src/lib.rs:
crates/multiflow/src/cell.rs:
crates/multiflow/src/config.rs:
crates/multiflow/src/phases.rs:
crates/multiflow/src/safety.rs:
crates/multiflow/src/types.rs:
