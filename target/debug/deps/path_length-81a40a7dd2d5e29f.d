/root/repo/target/debug/deps/path_length-81a40a7dd2d5e29f.d: crates/bench/src/bin/path_length.rs Cargo.toml

/root/repo/target/debug/deps/libpath_length-81a40a7dd2d5e29f.rmeta: crates/bench/src/bin/path_length.rs Cargo.toml

crates/bench/src/bin/path_length.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
