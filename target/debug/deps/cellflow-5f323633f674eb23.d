/root/repo/target/debug/deps/cellflow-5f323633f674eb23.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/cellflow-5f323633f674eb23: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
