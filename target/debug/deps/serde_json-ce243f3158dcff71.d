/root/repo/target/debug/deps/serde_json-ce243f3158dcff71.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-ce243f3158dcff71.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
