/root/repo/target/debug/deps/cellflow_multiflow-127286b617905b1d.d: crates/multiflow/src/lib.rs crates/multiflow/src/cell.rs crates/multiflow/src/config.rs crates/multiflow/src/phases.rs crates/multiflow/src/safety.rs crates/multiflow/src/types.rs

/root/repo/target/debug/deps/libcellflow_multiflow-127286b617905b1d.rlib: crates/multiflow/src/lib.rs crates/multiflow/src/cell.rs crates/multiflow/src/config.rs crates/multiflow/src/phases.rs crates/multiflow/src/safety.rs crates/multiflow/src/types.rs

/root/repo/target/debug/deps/libcellflow_multiflow-127286b617905b1d.rmeta: crates/multiflow/src/lib.rs crates/multiflow/src/cell.rs crates/multiflow/src/config.rs crates/multiflow/src/phases.rs crates/multiflow/src/safety.rs crates/multiflow/src/types.rs

crates/multiflow/src/lib.rs:
crates/multiflow/src/cell.rs:
crates/multiflow/src/config.rs:
crates/multiflow/src/phases.rs:
crates/multiflow/src/safety.rs:
crates/multiflow/src/types.rs:
