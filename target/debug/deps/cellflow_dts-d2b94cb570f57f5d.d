/root/repo/target/debug/deps/cellflow_dts-d2b94cb570f57f5d.d: crates/dts/src/lib.rs crates/dts/src/automaton.rs crates/dts/src/execution.rs crates/dts/src/explore.rs crates/dts/src/invariant.rs crates/dts/src/liveness.rs crates/dts/src/montecarlo.rs crates/dts/src/stabilize.rs

/root/repo/target/debug/deps/libcellflow_dts-d2b94cb570f57f5d.rlib: crates/dts/src/lib.rs crates/dts/src/automaton.rs crates/dts/src/execution.rs crates/dts/src/explore.rs crates/dts/src/invariant.rs crates/dts/src/liveness.rs crates/dts/src/montecarlo.rs crates/dts/src/stabilize.rs

/root/repo/target/debug/deps/libcellflow_dts-d2b94cb570f57f5d.rmeta: crates/dts/src/lib.rs crates/dts/src/automaton.rs crates/dts/src/execution.rs crates/dts/src/explore.rs crates/dts/src/invariant.rs crates/dts/src/liveness.rs crates/dts/src/montecarlo.rs crates/dts/src/stabilize.rs

crates/dts/src/lib.rs:
crates/dts/src/automaton.rs:
crates/dts/src/execution.rs:
crates/dts/src/explore.rs:
crates/dts/src/invariant.rs:
crates/dts/src/liveness.rs:
crates/dts/src/montecarlo.rs:
crates/dts/src/stabilize.rs:
