/root/repo/target/debug/deps/serde_roundtrip-3299588a754e5a42.d: tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-3299588a754e5a42: tests/serde_roundtrip.rs

tests/serde_roundtrip.rs:
