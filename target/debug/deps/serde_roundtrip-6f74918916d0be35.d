/root/repo/target/debug/deps/serde_roundtrip-6f74918916d0be35.d: tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-6f74918916d0be35: tests/serde_roundtrip.rs

tests/serde_roundtrip.rs:
