/root/repo/target/debug/deps/custom_topology-8d22b8b4a24f909c.d: crates/routing/tests/custom_topology.rs Cargo.toml

/root/repo/target/debug/deps/libcustom_topology-8d22b8b4a24f909c.rmeta: crates/routing/tests/custom_topology.rs Cargo.toml

crates/routing/tests/custom_topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
