/root/repo/target/debug/deps/cellflow_grid-a0e0e3e03bf49c1d.d: crates/grid/src/lib.rs crates/grid/src/cell_id.rs crates/grid/src/connectivity.rs crates/grid/src/dims.rs crates/grid/src/path.rs

/root/repo/target/debug/deps/libcellflow_grid-a0e0e3e03bf49c1d.rlib: crates/grid/src/lib.rs crates/grid/src/cell_id.rs crates/grid/src/connectivity.rs crates/grid/src/dims.rs crates/grid/src/path.rs

/root/repo/target/debug/deps/libcellflow_grid-a0e0e3e03bf49c1d.rmeta: crates/grid/src/lib.rs crates/grid/src/cell_id.rs crates/grid/src/connectivity.rs crates/grid/src/dims.rs crates/grid/src/path.rs

crates/grid/src/lib.rs:
crates/grid/src/cell_id.rs:
crates/grid/src/connectivity.rs:
crates/grid/src/dims.rs:
crates/grid/src/path.rs:
