/root/repo/target/debug/deps/rand-e15e15d6657cf47f.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e15e15d6657cf47f.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e15e15d6657cf47f.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
