/root/repo/target/debug/deps/cellflow_routing-98779020d7297507.d: crates/routing/src/lib.rs crates/routing/src/dist.rs crates/routing/src/table.rs crates/routing/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_routing-98779020d7297507.rmeta: crates/routing/src/lib.rs crates/routing/src/dist.rs crates/routing/src/table.rs crates/routing/src/topology.rs Cargo.toml

crates/routing/src/lib.rs:
crates/routing/src/dist.rs:
crates/routing/src/table.rs:
crates/routing/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
