/root/repo/target/debug/deps/cellflow_cli-34f4ce254550e09a.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/cellflow_cli-34f4ce254550e09a: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
