/root/repo/target/debug/deps/lemmas-00432152e95c307b.d: crates/core/tests/lemmas.rs

/root/repo/target/debug/deps/lemmas-00432152e95c307b: crates/core/tests/lemmas.rs

crates/core/tests/lemmas.rs:
