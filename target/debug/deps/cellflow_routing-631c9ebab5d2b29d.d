/root/repo/target/debug/deps/cellflow_routing-631c9ebab5d2b29d.d: crates/routing/src/lib.rs crates/routing/src/dist.rs crates/routing/src/table.rs crates/routing/src/topology.rs

/root/repo/target/debug/deps/libcellflow_routing-631c9ebab5d2b29d.rlib: crates/routing/src/lib.rs crates/routing/src/dist.rs crates/routing/src/table.rs crates/routing/src/topology.rs

/root/repo/target/debug/deps/libcellflow_routing-631c9ebab5d2b29d.rmeta: crates/routing/src/lib.rs crates/routing/src/dist.rs crates/routing/src/table.rs crates/routing/src/topology.rs

crates/routing/src/lib.rs:
crates/routing/src/dist.rs:
crates/routing/src/table.rs:
crates/routing/src/topology.rs:
