/root/repo/target/debug/deps/cellflow_tess-d71ca693b6496e0c.d: crates/tess/src/lib.rs crates/tess/src/phases.rs crates/tess/src/safety.rs crates/tess/src/system.rs crates/tess/src/tessellation.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_tess-d71ca693b6496e0c.rmeta: crates/tess/src/lib.rs crates/tess/src/phases.rs crates/tess/src/safety.rs crates/tess/src/system.rs crates/tess/src/tessellation.rs Cargo.toml

crates/tess/src/lib.rs:
crates/tess/src/phases.rs:
crates/tess/src/safety.rs:
crates/tess/src/system.rs:
crates/tess/src/tessellation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
