/root/repo/target/debug/deps/equivalence-0fee21a9d31f902e.d: crates/net/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-0fee21a9d31f902e: crates/net/tests/equivalence.rs

crates/net/tests/equivalence.rs:
