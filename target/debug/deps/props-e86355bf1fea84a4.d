/root/repo/target/debug/deps/props-e86355bf1fea84a4.d: crates/grid/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-e86355bf1fea84a4.rmeta: crates/grid/tests/props.rs Cargo.toml

crates/grid/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
