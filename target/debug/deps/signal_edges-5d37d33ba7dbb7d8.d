/root/repo/target/debug/deps/signal_edges-5d37d33ba7dbb7d8.d: crates/core/tests/signal_edges.rs Cargo.toml

/root/repo/target/debug/deps/libsignal_edges-5d37d33ba7dbb7d8.rmeta: crates/core/tests/signal_edges.rs Cargo.toml

crates/core/tests/signal_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
