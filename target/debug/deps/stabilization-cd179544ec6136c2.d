/root/repo/target/debug/deps/stabilization-cd179544ec6136c2.d: crates/routing/tests/stabilization.rs

/root/repo/target/debug/deps/stabilization-cd179544ec6136c2: crates/routing/tests/stabilization.rs

crates/routing/tests/stabilization.rs:
