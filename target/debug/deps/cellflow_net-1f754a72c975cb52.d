/root/repo/target/debug/deps/cellflow_net-1f754a72c975cb52.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs crates/net/src/sync.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/cellflow_net-1f754a72c975cb52: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs crates/net/src/sync.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/node.rs:
crates/net/src/runtime.rs:
crates/net/src/sync.rs:
crates/net/src/transport.rs:
