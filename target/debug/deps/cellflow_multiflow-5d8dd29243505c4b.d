/root/repo/target/debug/deps/cellflow_multiflow-5d8dd29243505c4b.d: crates/multiflow/src/lib.rs crates/multiflow/src/cell.rs crates/multiflow/src/config.rs crates/multiflow/src/phases.rs crates/multiflow/src/safety.rs crates/multiflow/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_multiflow-5d8dd29243505c4b.rmeta: crates/multiflow/src/lib.rs crates/multiflow/src/cell.rs crates/multiflow/src/config.rs crates/multiflow/src/phases.rs crates/multiflow/src/safety.rs crates/multiflow/src/types.rs Cargo.toml

crates/multiflow/src/lib.rs:
crates/multiflow/src/cell.rs:
crates/multiflow/src/config.rs:
crates/multiflow/src/phases.rs:
crates/multiflow/src/safety.rs:
crates/multiflow/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
