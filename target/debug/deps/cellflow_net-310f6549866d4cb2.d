/root/repo/target/debug/deps/cellflow_net-310f6549866d4cb2.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs

/root/repo/target/debug/deps/libcellflow_net-310f6549866d4cb2.rlib: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs

/root/repo/target/debug/deps/libcellflow_net-310f6549866d4cb2.rmeta: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/node.rs crates/net/src/runtime.rs

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/node.rs:
crates/net/src/runtime.rs:
