/root/repo/target/debug/deps/cellflow-9b8581ebb58cb89e.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/cellflow-9b8581ebb58cb89e: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
