/root/repo/target/debug/deps/cellular_flows-cdbb23f3c3872be8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcellular_flows-cdbb23f3c3872be8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
