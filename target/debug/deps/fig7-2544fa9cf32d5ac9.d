/root/repo/target/debug/deps/fig7-2544fa9cf32d5ac9.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-2544fa9cf32d5ac9: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
