/root/repo/target/debug/deps/custom_topology-2dae40a17a1428f2.d: crates/routing/tests/custom_topology.rs

/root/repo/target/debug/deps/custom_topology-2dae40a17a1428f2: crates/routing/tests/custom_topology.rs

crates/routing/tests/custom_topology.rs:
