/root/repo/target/debug/deps/props-0ae63750d35240dd.d: crates/geom/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-0ae63750d35240dd.rmeta: crates/geom/tests/props.rs Cargo.toml

crates/geom/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
