/root/repo/target/debug/deps/cellular_flows-282d0b749799067b.d: src/lib.rs

/root/repo/target/debug/deps/cellular_flows-282d0b749799067b: src/lib.rs

src/lib.rs:
