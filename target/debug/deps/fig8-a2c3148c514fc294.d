/root/repo/target/debug/deps/fig8-a2c3148c514fc294.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-a2c3148c514fc294: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
