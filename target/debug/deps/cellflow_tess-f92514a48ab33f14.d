/root/repo/target/debug/deps/cellflow_tess-f92514a48ab33f14.d: crates/tess/src/lib.rs crates/tess/src/phases.rs crates/tess/src/safety.rs crates/tess/src/system.rs crates/tess/src/tessellation.rs

/root/repo/target/debug/deps/libcellflow_tess-f92514a48ab33f14.rlib: crates/tess/src/lib.rs crates/tess/src/phases.rs crates/tess/src/safety.rs crates/tess/src/system.rs crates/tess/src/tessellation.rs

/root/repo/target/debug/deps/libcellflow_tess-f92514a48ab33f14.rmeta: crates/tess/src/lib.rs crates/tess/src/phases.rs crates/tess/src/safety.rs crates/tess/src/system.rs crates/tess/src/tessellation.rs

crates/tess/src/lib.rs:
crates/tess/src/phases.rs:
crates/tess/src/safety.rs:
crates/tess/src/system.rs:
crates/tess/src/tessellation.rs:
