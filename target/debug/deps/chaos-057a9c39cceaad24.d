/root/repo/target/debug/deps/chaos-057a9c39cceaad24.d: crates/net/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-057a9c39cceaad24.rmeta: crates/net/tests/chaos.rs Cargo.toml

crates/net/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
