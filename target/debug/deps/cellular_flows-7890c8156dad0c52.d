/root/repo/target/debug/deps/cellular_flows-7890c8156dad0c52.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcellular_flows-7890c8156dad0c52.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
