/root/repo/target/debug/deps/cellflow_bench-1fc4ca282eaabded.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_bench-1fc4ca282eaabded.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
