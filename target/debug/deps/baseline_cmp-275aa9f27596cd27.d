/root/repo/target/debug/deps/baseline_cmp-275aa9f27596cd27.d: crates/bench/src/bin/baseline_cmp.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_cmp-275aa9f27596cd27.rmeta: crates/bench/src/bin/baseline_cmp.rs Cargo.toml

crates/bench/src/bin/baseline_cmp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
