/root/repo/target/debug/deps/cellflow_grid-8c3a560181c2840c.d: crates/grid/src/lib.rs crates/grid/src/cell_id.rs crates/grid/src/connectivity.rs crates/grid/src/dims.rs crates/grid/src/path.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_grid-8c3a560181c2840c.rmeta: crates/grid/src/lib.rs crates/grid/src/cell_id.rs crates/grid/src/connectivity.rs crates/grid/src/dims.rs crates/grid/src/path.rs Cargo.toml

crates/grid/src/lib.rs:
crates/grid/src/cell_id.rs:
crates/grid/src/connectivity.rs:
crates/grid/src/dims.rs:
crates/grid/src/path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
