/root/repo/target/debug/deps/ablation_token-e9541aaec7c2e490.d: crates/bench/benches/ablation_token.rs Cargo.toml

/root/repo/target/debug/deps/libablation_token-e9541aaec7c2e490.rmeta: crates/bench/benches/ablation_token.rs Cargo.toml

crates/bench/benches/ablation_token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
