/root/repo/target/debug/deps/figure_shapes-05226e0f4bb6251f.d: tests/figure_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libfigure_shapes-05226e0f4bb6251f.rmeta: tests/figure_shapes.rs Cargo.toml

tests/figure_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
