/root/repo/target/debug/deps/equivalence-7e36deb3ba3fb3de.d: crates/net/tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-7e36deb3ba3fb3de.rmeta: crates/net/tests/equivalence.rs Cargo.toml

crates/net/tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
