/root/repo/target/debug/deps/cellular_flows-f8f7ac35f2a96b3b.d: src/lib.rs

/root/repo/target/debug/deps/libcellular_flows-f8f7ac35f2a96b3b.rlib: src/lib.rs

/root/repo/target/debug/deps/libcellular_flows-f8f7ac35f2a96b3b.rmeta: src/lib.rs

src/lib.rs:
