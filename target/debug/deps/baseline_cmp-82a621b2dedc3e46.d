/root/repo/target/debug/deps/baseline_cmp-82a621b2dedc3e46.d: crates/bench/src/bin/baseline_cmp.rs

/root/repo/target/debug/deps/baseline_cmp-82a621b2dedc3e46: crates/bench/src/bin/baseline_cmp.rs

crates/bench/src/bin/baseline_cmp.rs:
