/root/repo/target/debug/deps/cellflow_tess-52c9227f8fc69912.d: crates/tess/src/lib.rs crates/tess/src/phases.rs crates/tess/src/safety.rs crates/tess/src/system.rs crates/tess/src/tessellation.rs

/root/repo/target/debug/deps/cellflow_tess-52c9227f8fc69912: crates/tess/src/lib.rs crates/tess/src/phases.rs crates/tess/src/safety.rs crates/tess/src/system.rs crates/tess/src/tessellation.rs

crates/tess/src/lib.rs:
crates/tess/src/phases.rs:
crates/tess/src/safety.rs:
crates/tess/src/system.rs:
crates/tess/src/tessellation.rs:
