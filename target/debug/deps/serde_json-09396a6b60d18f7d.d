/root/repo/target/debug/deps/serde_json-09396a6b60d18f7d.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-09396a6b60d18f7d.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-09396a6b60d18f7d.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
