/root/repo/target/debug/deps/fig9-38820646a7798484.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-38820646a7798484: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
