/root/repo/target/debug/deps/end_to_end-7867477d84448b02.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7867477d84448b02: tests/end_to_end.rs

tests/end_to_end.rs:
