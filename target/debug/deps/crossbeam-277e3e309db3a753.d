/root/repo/target/debug/deps/crossbeam-277e3e309db3a753.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-277e3e309db3a753.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
