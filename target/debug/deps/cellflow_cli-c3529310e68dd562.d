/root/repo/target/debug/deps/cellflow_cli-c3529310e68dd562.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libcellflow_cli-c3529310e68dd562.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libcellflow_cli-c3529310e68dd562.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
