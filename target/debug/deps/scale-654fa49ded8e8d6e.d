/root/repo/target/debug/deps/scale-654fa49ded8e8d6e.d: tests/scale.rs

/root/repo/target/debug/deps/scale-654fa49ded8e8d6e: tests/scale.rs

tests/scale.rs:
