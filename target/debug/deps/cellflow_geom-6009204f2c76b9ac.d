/root/repo/target/debug/deps/cellflow_geom-6009204f2c76b9ac.d: crates/geom/src/lib.rs crates/geom/src/direction.rs crates/geom/src/fixed.rs crates/geom/src/point.rs crates/geom/src/square.rs

/root/repo/target/debug/deps/cellflow_geom-6009204f2c76b9ac: crates/geom/src/lib.rs crates/geom/src/direction.rs crates/geom/src/fixed.rs crates/geom/src/point.rs crates/geom/src/square.rs

crates/geom/src/lib.rs:
crates/geom/src/direction.rs:
crates/geom/src/fixed.rs:
crates/geom/src/point.rs:
crates/geom/src/square.rs:
