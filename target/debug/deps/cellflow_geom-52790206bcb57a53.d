/root/repo/target/debug/deps/cellflow_geom-52790206bcb57a53.d: crates/geom/src/lib.rs crates/geom/src/direction.rs crates/geom/src/fixed.rs crates/geom/src/point.rs crates/geom/src/square.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_geom-52790206bcb57a53.rmeta: crates/geom/src/lib.rs crates/geom/src/direction.rs crates/geom/src/fixed.rs crates/geom/src/point.rs crates/geom/src/square.rs Cargo.toml

crates/geom/src/lib.rs:
crates/geom/src/direction.rs:
crates/geom/src/fixed.rs:
crates/geom/src/point.rs:
crates/geom/src/square.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
