/root/repo/target/debug/deps/cellflow_bench-922bbf7647a36d4e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_bench-922bbf7647a36d4e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
