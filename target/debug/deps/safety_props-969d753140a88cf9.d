/root/repo/target/debug/deps/safety_props-969d753140a88cf9.d: crates/core/tests/safety_props.rs

/root/repo/target/debug/deps/safety_props-969d753140a88cf9: crates/core/tests/safety_props.rs

crates/core/tests/safety_props.rs:
