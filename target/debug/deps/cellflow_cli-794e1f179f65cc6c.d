/root/repo/target/debug/deps/cellflow_cli-794e1f179f65cc6c.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow_cli-794e1f179f65cc6c.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
