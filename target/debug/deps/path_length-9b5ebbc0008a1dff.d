/root/repo/target/debug/deps/path_length-9b5ebbc0008a1dff.d: crates/bench/src/bin/path_length.rs

/root/repo/target/debug/deps/path_length-9b5ebbc0008a1dff: crates/bench/src/bin/path_length.rs

crates/bench/src/bin/path_length.rs:
