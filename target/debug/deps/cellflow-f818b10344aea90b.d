/root/repo/target/debug/deps/cellflow-f818b10344aea90b.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libcellflow-f818b10344aea90b.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
