/root/repo/target/debug/deps/chaos_differential-53828d7b7a861ace.d: tests/chaos_differential.rs

/root/repo/target/debug/deps/chaos_differential-53828d7b7a861ace: tests/chaos_differential.rs

tests/chaos_differential.rs:
