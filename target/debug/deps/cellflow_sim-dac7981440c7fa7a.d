/root/repo/target/debug/deps/cellflow_sim-dac7981440c7fa7a.d: crates/sim/src/lib.rs crates/sim/src/baseline.rs crates/sim/src/failure.rs crates/sim/src/heatmap.rs crates/sim/src/metrics.rs crates/sim/src/render.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/cellflow_sim-dac7981440c7fa7a: crates/sim/src/lib.rs crates/sim/src/baseline.rs crates/sim/src/failure.rs crates/sim/src/heatmap.rs crates/sim/src/metrics.rs crates/sim/src/render.rs crates/sim/src/runner.rs crates/sim/src/scenario.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/baseline.rs:
crates/sim/src/failure.rs:
crates/sim/src/heatmap.rs:
crates/sim/src/metrics.rs:
crates/sim/src/render.rs:
crates/sim/src/runner.rs:
crates/sim/src/scenario.rs:
crates/sim/src/stats.rs:
crates/sim/src/sweep.rs:
crates/sim/src/table.rs:
crates/sim/src/trace.rs:
