/root/repo/target/debug/deps/baseline_cmp-27690e0345be0062.d: crates/bench/src/bin/baseline_cmp.rs

/root/repo/target/debug/deps/baseline_cmp-27690e0345be0062: crates/bench/src/bin/baseline_cmp.rs

crates/bench/src/bin/baseline_cmp.rs:
