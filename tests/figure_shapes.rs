//! Figure-shape regression tests: the qualitative claims of the paper's
//! Section IV, checked at reduced K so they run in CI. The full-K numbers are
//! recorded in `EXPERIMENTS.md` (regenerate with the `cellflow-bench` bins).

use cellflow_bench as bench;

const K: u64 = 1_000;
const THREADS: usize = 8;

/// Figure 7: throughput decreases with `rs` and generally increases with `v`;
/// the curves saturate at large `rs` (one entity per cell regime).
#[test]
fn fig7_shape() {
    let series = bench::fig7(K, THREADS);
    assert_eq!(series.len(), 4);
    for s in &series {
        let ys: Vec<f64> = s.ys().collect();
        // Weak monotonicity: first point strictly above last, and no increase
        // larger than noise between consecutive points.
        assert!(
            ys.first().unwrap() > ys.last().unwrap(),
            "{}: not decreasing overall",
            s.label
        );
        for w in ys.windows(2) {
            assert!(
                w[1] <= w[0] * 1.10 + 1e-9,
                "{}: throughput rose sharply within the rs sweep: {w:?}",
                s.label
            );
        }
        // Saturation: the last three points are nearly equal.
        let tail = &ys[ys.len() - 3..];
        let spread = tail.iter().cloned().fold(f64::MIN, f64::max)
            - tail.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread <= tail[0] * 0.15 + 1e-9,
            "{}: no saturation at high rs: {tail:?}",
            s.label
        );
    }
    // Velocity ordering at moderate rs (index 3 → rs = 0.2): v=0.25 ≥ v=0.2 ≥
    // v=0.1 ≥ v=0.05. (The paper notes possible inversions only at tiny rs.)
    let at = |i: usize| series[i].points[3].1;
    assert!(
        at(3) >= at(2) && at(2) >= at(1) && at(1) >= at(0),
        "velocity ordering broken: {:?}",
        (at(0), at(1), at(2), at(3))
    );
}

/// Figure 8: throughput is non-increasing in the number of turns (up to
/// noise) and saturates at high turn counts.
#[test]
fn fig8_shape() {
    let series = bench::fig8(K, THREADS);
    assert_eq!(series.len(), 4);
    for s in &series {
        let ys: Vec<f64> = s.ys().collect();
        assert_eq!(ys.len(), 7);
        assert!(
            ys[0] >= *ys.last().unwrap() * 0.98,
            "{}: straight path slower than serpentine: {ys:?}",
            s.label
        );
        // No sharp increases along the sweep.
        for w in ys.windows(2) {
            assert!(
                w[1] <= w[0] * 1.15 + 1e-9,
                "{}: throughput increased with turns: {ys:?}",
                s.label
            );
        }
    }
    // Series ordering: (l=0.2, v=0.2) dominates (l=0.2, v=0.1) everywhere.
    for (a, b) in series[0].points.iter().zip(series[1].points.iter()) {
        assert!(
            a.1 >= b.1 * 0.98,
            "faster series dipped below slower: {a:?} vs {b:?}"
        );
    }
}

/// Figure 9: throughput decreases with failure rate `pf` and increases with
/// recovery rate `pr`, with diminishing returns in `pr`.
#[test]
fn fig9_shape() {
    // More smoothing here: stochastic churn at small K is noisy.
    let series = bench::fig9(2_000, THREADS, 3);
    assert_eq!(series.len(), 4);
    for s in &series {
        let ys: Vec<f64> = s.ys().collect();
        // Overall decreasing: first two average above last two.
        let head = (ys[0] + ys[1]) / 2.0;
        let tail = (ys[ys.len() - 2] + ys[ys.len() - 1]) / 2.0;
        assert!(head > tail, "{}: not decreasing in pf: {ys:?}", s.label);
    }
    // pr ordering at the median pf (index 4): higher pr ⇒ higher throughput.
    let at = |i: usize| series[i].points[4].1;
    assert!(
        at(3) > at(0),
        "pr=0.2 should beat pr=0.05: {} vs {}",
        at(3),
        at(0)
    );
    // Diminishing returns: gain from pr 0.05→0.1 exceeds gain 0.15→0.2,
    // averaged across the pf sweep (the paper's "marginal return" remark).
    let avg = |i: usize| -> f64 {
        let ys: Vec<f64> = series[i].ys().collect();
        ys.iter().sum::<f64>() / ys.len() as f64
    };
    let first_gain = avg(1) - avg(0);
    let last_gain = avg(3) - avg(2);
    assert!(
        first_gain >= last_gain - 0.002,
        "no diminishing returns: Δ(0.05→0.1)={first_gain:.4} Δ(0.15→0.2)={last_gain:.4}"
    );
}

/// §IV: throughput is independent of (sufficient) path length.
#[test]
fn path_length_independence() {
    let s = bench::path_length(K, THREADS);
    let pipelined: Vec<f64> = s
        .points
        .iter()
        .filter(|&&(len, _)| len >= 4.0)
        .map(|&(_, y)| y)
        .collect();
    let max = pipelined.iter().cloned().fold(f64::MIN, f64::max);
    let min = pipelined.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        min > 0.0 && max / min < 1.1,
        "length dependence: {pipelined:?}"
    );
}

/// Ablation B: the centralized baseline weakly dominates the distributed
/// protocol but does not crush it — the distributed penalty is a constant
/// factor, not an asymptotic loss.
#[test]
fn baseline_dominates_but_close() {
    let (dist, central) = bench::baseline_comparison(K, THREADS);
    let d: f64 = dist.ys().sum::<f64>() / dist.points.len() as f64;
    let c: f64 = central.ys().sum::<f64>() / central.points.len() as f64;
    assert!(c >= d * 0.95, "centralized lost: {c} vs {d}");
    assert!(c <= d * 3.0, "distributed unreasonably slow: {c} vs {d}");
}
