//! Property-based differential testing of the arena-backed round engine:
//! random grids, sources, token policies, and crash/recover/corruption
//! schedules driven simultaneously through the engine-backed `System` and
//! the legacy clone-based phase composition (`update` =
//! `route_phase ∘ signal_phase ∘ move_phase`), asserting identical
//! `SystemState` *and* identical `RoundEvents` after every single round.
//!
//! The pure phases are the specification (they mirror the paper's Figures
//! 4–6 line by line); the engine is the optimization. This suite is what
//! licenses every caller to run on the fast path.

use cellular_flows::core::{
    update, Corruption, Engine, Params, System, SystemConfig, TokenPolicy,
};
use cellular_flows::geom::Dir;
use cellular_flows::grid::{CellId, GridDims};
use cellular_flows::routing::Dist;
use proptest::prelude::*;

/// One scheduled disturbance in a differential run.
#[derive(Clone, Copy, Debug)]
enum Event {
    Crash,
    Recover,
    Corrupt(Corruption),
}

fn decode_dir(code: u64) -> Option<Dir> {
    match code % 5 {
        0 => None,
        k => Some(Dir::ALL[(k - 1) as usize]),
    }
}

/// Decodes `(kind, salt)` into a disturbance, covering every `Corruption`
/// variant plus crash and recovery.
fn decode_event(kind: u8, salt: u64, dist_cap: u32) -> Event {
    match kind % 10 {
        0 => Event::Crash,
        1 => Event::Recover,
        2 => Event::Corrupt(Corruption::Dist(Dist::Finite((salt % dist_cap as u64) as u32))),
        3 => Event::Corrupt(Corruption::Dist(Dist::Infinity)),
        4 => Event::Corrupt(Corruption::Next(decode_dir(salt))),
        5 => Event::Corrupt(Corruption::Token(decode_dir(salt))),
        6 => Event::Corrupt(Corruption::Signal(decode_dir(salt))),
        7 => Event::Corrupt(Corruption::NePrev { mask: (salt % 16) as u8 }),
        8 => Event::Corrupt(Corruption::Jostle { salt }),
        _ => Event::Corrupt(Corruption::Scramble { salt }),
    }
}

fn config(n: u16, policy_code: u8, extra_source: bool) -> SystemConfig {
    let policy = match policy_code % 3 {
        0 => TokenPolicy::RoundRobin,
        1 => TokenPolicy::Randomized { salt: 0xD1FF },
        _ => TokenPolicy::FixedPriority,
    };
    let mut cfg = SystemConfig::new(
        GridDims::square(n),
        CellId::new(1, n - 1),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(1, 0))
    .with_token_policy(policy);
    if extra_source {
        cfg = cfg.with_source(CellId::new(n - 1, 0));
    }
    cfg
}

/// A random disturbance schedule: `(round, (i, j), kind, salt)` tuples.
fn schedule_strategy(rounds: u64) -> impl Strategy<Value = Vec<(u64, (u16, u16), u8, u64)>> {
    proptest::collection::vec(
        (1..rounds, (0u16..8, 0u16..8), 0u8..10, 0u64..u64::MAX),
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The engine-backed `System` and the legacy phase chain agree on the
    /// full successor state and the full event record, round for round,
    /// under arbitrary crash/recover/corruption schedules and every token
    /// policy.
    #[test]
    fn engine_and_legacy_phases_are_differential(
        n in 3u16..=6,
        rounds in 10u64..=60,
        policy_code in 0u8..3,
        extra_source in proptest::bool::ANY,
        schedule in schedule_strategy(60),
    ) {
        let cfg = config(n, policy_code, extra_source);
        let dims = cfg.dims();
        let target = cfg.target();
        let dist_cap = cfg.dist_cap();

        let mut sys = System::new(cfg.clone()); // engine path
        let mut state = cfg.initial_state();    // legacy path

        for round in 0..rounds {
            for &(when, (i, j), kind, salt) in &schedule {
                if when != round {
                    continue;
                }
                // Clamp out-of-grid victims back in bounds.
                let cell = CellId::new(i % n, j % n);
                match decode_event(kind, salt, dist_cap) {
                    Event::Crash => {
                        sys.fail(cell);
                        state.fail(dims, cell);
                    }
                    Event::Recover => {
                        sys.recover(cell);
                        state.recover(dims, cell, target);
                    }
                    Event::Corrupt(c) => {
                        sys.corrupt(cell, c);
                        c.apply(&cfg, cell, state.cell_mut(dims, cell));
                    }
                }
            }
            let (next, legacy_events) = update(&cfg, &state, round);
            let engine_events = sys.step();
            state = next;
            prop_assert_eq!(
                sys.state(),
                &state,
                "state diverged at round {} (n = {}, policy {})",
                round,
                n,
                policy_code
            );
            prop_assert_eq!(
                &engine_events,
                &legacy_events,
                "events diverged at round {} (n = {}, policy {})",
                round,
                n,
                policy_code
            );
        }
    }
}

/// The zero-clone claim, checked mechanically: once warm, a steady-state
/// engine round grows no buffer — no full-state clone, no per-cell
/// `BTreeSet`/`BTreeMap` rebuild, nothing.
#[test]
fn steady_state_engine_rounds_do_not_allocate() {
    let cfg = config(8, 0, true);
    let mut engine = Engine::new(cfg);
    for _ in 0..500 {
        engine.step();
    }
    engine.reset_alloc_events();
    for _ in 0..500 {
        engine.step();
    }
    assert_eq!(engine.alloc_events(), 0, "steady-state rounds must be allocation-free");
}
