//! Workspace-level model checking: Theorem 5 verified exhaustively on several
//! bounded instances, across crates (`core` + `dts`).

use cellular_flows::core::mc::BoundedSystem;
use cellular_flows::core::{safety, Params, SystemConfig};
use cellular_flows::dts::{check_invariant, ExploreConfig, Explorer};
use cellular_flows::grid::{CellId, GridDims};

fn explore_cfg() -> ExploreConfig {
    ExploreConfig {
        max_states: 3_000_000,
        max_depth: usize::MAX,
    }
}

fn safe_everywhere(cfg: &SystemConfig) -> impl Fn(&cellular_flows::core::SystemState) -> bool + '_ {
    move |s| {
        safety::check_safe(cfg, s).is_ok()
            && safety::check_invariant1(cfg, s).is_ok()
            && safety::check_invariant2(cfg, s).is_ok()
    }
}

#[test]
fn corridor_3x1_with_failures_and_recovery() {
    let cfg = SystemConfig::new(
        GridDims::new(3, 1),
        CellId::new(2, 0),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(0, 0))
    .with_entity_budget(2);
    let sys =
        BoundedSystem::new(cfg.clone()).with_fallible([CellId::new(1, 0), CellId::new(2, 0)], true);
    let report = check_invariant(&sys, safe_everywhere(&cfg), &explore_cfg())
        .expect("Theorem 5 on the failing corridor");
    assert!(report.exhaustive);
    assert!(report.states_explored > 100);
}

#[test]
fn square_2x2_diagonal_flow() {
    let cfg = SystemConfig::new(
        GridDims::square(2),
        CellId::new(1, 1),
        Params::from_milli(300, 100, 300).unwrap(), // v = l corner case
    )
    .unwrap()
    .with_source(CellId::new(0, 0))
    .with_entity_budget(2);
    let sys = BoundedSystem::new(cfg.clone()).with_fallible([CellId::new(1, 0)], true);
    let report = check_invariant(&sys, safe_everywhere(&cfg), &explore_cfg())
        .expect("Theorem 5 on the 2x2 grid with v = l");
    assert!(report.exhaustive);
}

#[test]
fn l_corridor_3x2_two_sources() {
    // Two sources merging, plus one fallible mid cell, without recovery.
    let cfg = SystemConfig::new(
        GridDims::new(3, 2),
        CellId::new(2, 0),
        Params::from_milli(250, 50, 250).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(0, 0))
    .with_source(CellId::new(0, 1))
    .with_entity_budget(2);
    let sys = BoundedSystem::new(cfg.clone()).with_fallible([CellId::new(1, 0)], false);
    let report = check_invariant(&sys, safe_everywhere(&cfg), &explore_cfg())
        .expect("Theorem 5 with merging sources");
    assert!(report.exhaustive);
    assert!(report.states_explored > 100);
}

#[test]
fn h_predicate_after_signal_reachable_states() {
    // Lemma 3 mechanized: from every reachable state, applying Route+Signal
    // yields a state satisfying H. (H need not hold in the reachable states
    // themselves, which are post-Move.)
    let cfg = SystemConfig::new(
        GridDims::new(3, 1),
        CellId::new(2, 0),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(0, 0))
    .with_entity_budget(2);
    let sys = BoundedSystem::new(cfg.clone());
    let mut ex = Explorer::new(&sys);
    let report = ex.run(&explore_cfg());
    assert!(report.states > 0);
    for state in ex.states() {
        let routed = cellular_flows::core::route_phase(&cfg, state);
        let signaled = cellular_flows::core::signal_phase(&cfg, &routed, 0);
        assert!(
            safety::check_h(&cfg, &signaled).is_ok(),
            "H broken after Signal from reachable state: {:?}",
            safety::check_h(&cfg, &signaled)
        );
    }
}

#[test]
fn progress_reachable_in_model() {
    // In the failure-free corridor, some reachable state has everything
    // consumed — the model-level witness of Theorem 10.
    let cfg = SystemConfig::new(
        GridDims::new(4, 1),
        CellId::new(3, 0),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(0, 0))
    .with_entity_budget(2);
    let sys = BoundedSystem::new(cfg);
    let mut ex = Explorer::new(&sys);
    ex.run(&explore_cfg());
    assert!(ex
        .states()
        .iter()
        .any(|s| s.next_entity_id == 2 && s.entity_count() == 0));
}

#[test]
fn capacity_invariant_holds_exhaustively_on_corridor() {
    // Finite-capacity variant: on the budgeted failing corridor with
    // capacity = entity budget, occupancy ≤ capacity holds in every
    // reachable state — the model-checking leg of the cascade PR's
    // acceptance criteria (`cellflow mc --capacity` runs this closure).
    use cellular_flows::core::overload::check_capacity;
    let cfg = SystemConfig::new(
        GridDims::new(3, 1),
        CellId::new(2, 0),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(0, 0))
    .with_entity_budget(2)
    .with_capacity(2);
    let sys =
        BoundedSystem::new(cfg.clone()).with_fallible([CellId::new(1, 0), CellId::new(2, 0)], true);
    let cfg_for_check = cfg.clone();
    let report = check_invariant(
        &sys,
        move |s| {
            safety::check_safe(&cfg_for_check, s).is_ok()
                && check_capacity(&cfg_for_check, s).is_ok()
        },
        &explore_cfg(),
    )
    .expect("occupancy ≤ capacity on the failing corridor");
    assert!(report.exhaustive);
    assert!(report.states_explored > 100);

    // Sanity: a capacity of 1 is genuinely violable — two budgeted
    // entities can share a cell, so the checker must find that state.
    let tight = cfg.with_capacity(1);
    let sys = BoundedSystem::new(tight.clone());
    let tight_check = tight.clone();
    let cex = check_invariant(
        &sys,
        move |s| check_capacity(&tight_check, s).is_ok(),
        &explore_cfg(),
    )
    .expect_err("capacity 1 must be violated by a 2-entity budget");
    assert!(check_capacity(&tight, &cex.state).is_err());
}

#[test]
fn theorem10_model_level_liveness() {
    // AG EF "everything consumed": from every reachable state of the
    // budgeted corridor — including states with crashed cells, because
    // recovery is enabled — full consumption remains possible. This is the
    // model-level form of Theorem 10's "once failures cease, entities reach
    // the target".
    use cellular_flows::dts::check_possibly;
    let cfg = SystemConfig::new(
        GridDims::new(3, 1),
        CellId::new(2, 0),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(0, 0))
    .with_entity_budget(2);
    let sys =
        BoundedSystem::new(cfg.clone()).with_fallible([CellId::new(1, 0), CellId::new(2, 0)], true);
    let report = check_possibly(
        &sys,
        |s| s.next_entity_id == 2 && s.entity_count() == 0,
        &explore_cfg(),
    )
    .expect("no reachable state is trapped away from full consumption");
    assert!(report.exhaustive, "proof-grade for this instance");
    assert!(report.goal_states > 0);
}

#[test]
fn liveness_fails_without_recovery() {
    // Sanity: with recovery disabled, crashing the corridor's middle cell
    // traps in-flight entities — the checker must find that trap.
    use cellular_flows::dts::check_possibly;
    let cfg = SystemConfig::new(
        GridDims::new(3, 1),
        CellId::new(2, 0),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(0, 0))
    .with_entity_budget(1);
    let sys = BoundedSystem::new(cfg.clone()).with_fallible([CellId::new(1, 0)], false);
    let trap = check_possibly(
        &sys,
        |s| s.next_entity_id == 1 && s.entity_count() == 0,
        &explore_cfg(),
    )
    .expect_err("permanent mid-corridor crash must trap the entity");
    // The trapped state indeed has the middle cell down with cargo stranded.
    assert!(
        trap.state
            .cell(GridDims::new(3, 1), CellId::new(1, 0))
            .failed
            || trap.state.entity_count() > 0
    );
}
