//! Causal-trace properties under arbitrary fault schedules: every span
//! tree a traced run emits must be *causal* (ids unique per round, every
//! parent present in the same round and closing only after its children
//! open), and the deterministic span fields — ids, parents, labels, work,
//! logical clocks — must be **byte-identical across reruns** of the same
//! seed, on both the message-passing deployment (chaos and partition
//! campaigns included) and the shared-variable reference simulation.
//!
//! Exactly two span fields are exempt from the rerun contract, by design:
//! the measured `ns` and the barrier/timeout spans' `cell` attribution
//! (last completer / first detector — thread-scheduling races). The
//! normalizer below blanks precisely those and nothing else.

use std::sync::Arc;

use cellular_flows::core::{standard_monitors, FaultPlan, Params, PartitionPlan, SystemConfig};
use cellular_flows::grid::{CellId, GridDims};
use cellular_flows::net::{NetSystem, NetTelemetry};
use cellular_flows::sim::{SimTelemetry, Simulation};
use cellular_flows::telemetry::{EventLog, Registry, SharedBuffer, Trace, TraceSpan, Tracer};
use proptest::prelude::*;

fn single_source_config(n: u16) -> SystemConfig {
    SystemConfig::new(
        GridDims::square(n),
        CellId::new(1, n - 1),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(1, 0))
}

/// A random crash/recover schedule over an `n × n` grid — the same shape
/// `chaos_differential.rs` fires at the runtimes.
fn plan_strategy(n: u16, rounds: u64) -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec((0..rounds, (0..n, 0..n), proptest::bool::ANY), 0..6).prop_map(
        move |events| {
            let mut plan = FaultPlan::new();
            for (round, (i, j), recover) in events {
                let cell = CellId::new(i, j);
                plan = if recover {
                    plan.recover_at(round, cell)
                } else {
                    plan.crash_at(round, cell)
                };
            }
            plan
        },
    )
}

/// Runs a traced deployment campaign and returns the raw event stream.
/// `partition` optionally overlays a scripted link-fault schedule.
fn traced_net_stream(
    n: u16,
    seed: u64,
    rounds: u64,
    plan: &FaultPlan,
    partition: Option<&PartitionPlan>,
) -> String {
    let buffer = SharedBuffer::new();
    let telemetry = Arc::new(
        NetTelemetry::new(&Registry::new())
            .with_event_log(EventLog::new().with_stream(Box::new(buffer.clone()))),
    );
    let config = single_source_config(n);
    let monitors = standard_monitors(&config);
    let mut net = NetSystem::new(config)
        .unwrap()
        .with_plan(plan.clone())
        .with_telemetry(Arc::clone(&telemetry))
        .with_tracer(Tracer::new(seed));
    if let Some(p) = partition {
        net = net.with_partition(p.clone());
    }
    net.run_monitored(rounds, monitors).unwrap();
    buffer.contents()
}

/// Runs a traced reference simulation and returns the raw event stream.
fn traced_sim_stream(n: u16, seed: u64, rounds: u64) -> String {
    let buffer = SharedBuffer::new();
    let registry = Registry::new();
    let telemetry = SimTelemetry::new(&registry)
        .with_event_log(EventLog::new().with_stream(Box::new(buffer.clone())));
    let mut sim = Simulation::new(single_source_config(n), seed)
        .with_telemetry(telemetry)
        .with_tracer(Tracer::new(seed));
    sim.run(rounds);
    if let Some(tel) = sim.telemetry_mut() {
        tel.flush();
    }
    buffer.contents()
}

/// `(round, id, parent, label, cell, work, open, close)` — every span
/// field the rerun contract covers.
type SpanView = (u64, u64, u64, String, Option<(u16, u16)>, u64, u64, u64);

/// The deterministic projection of a span: everything except the measured
/// `ns`, with the barrier/timeout spans' scheduling-dependent cell
/// attribution blanked.
fn deterministic_view(span: &TraceSpan) -> SpanView {
    let cell = if span.label == "barrier" || span.label == "timeout" {
        None
    } else {
        span.cell.map(|c| (c.i(), c.j()))
    };
    (
        span.round,
        span.id,
        span.parent,
        span.label.clone(),
        cell,
        span.work,
        span.open,
        span.close,
    )
}

/// Parses, causality-checks, and projects a stream to its deterministic
/// span list.
fn causal_projection(stream: &str) -> Vec<SpanView> {
    let trace = Trace::parse(stream).expect("traced stream is schema-valid");
    assert!(!trace.spans.is_empty(), "traced run emitted spans");
    trace.check_causality().expect("span tree is causal");
    trace.spans.iter().map(deterministic_view).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any crash/recover schedule yields a causal span tree whose
    /// cell-attributed leaves carry exactly the id the cell's envelopes
    /// used as their causal context that round.
    #[test]
    fn chaos_schedules_emit_causal_span_trees(
        seed in 0u64..1_000,
        plan in plan_strategy(4, 40),
    ) {
        let stream = traced_net_stream(4, seed, 40, &plan, None);
        let trace = Trace::parse(&stream).unwrap();
        prop_assert!(trace.check_causality().is_ok());
        let tracer = Tracer::new(seed);
        for span in &trace.spans {
            if span.label == "cell" || span.label == "silent" {
                let cell = span.cell.expect("cell leaves name their cell");
                prop_assert_eq!(span.id, tracer.cell_round_id(span.round, cell));
            }
        }
    }

    /// Rerunning the same seeded chaos campaign reproduces the span tree
    /// bit for bit on every deterministic field.
    #[test]
    fn chaos_trace_ids_are_identical_across_reruns(
        seed in 0u64..1_000,
        plan in plan_strategy(4, 32),
    ) {
        let a = traced_net_stream(4, seed, 32, &plan, None);
        let b = traced_net_stream(4, seed, 32, &plan, None);
        prop_assert_eq!(causal_projection(&a), causal_projection(&b));
    }

    /// The same holds through a scripted split-brain partition window.
    #[test]
    fn partition_trace_ids_are_identical_across_reruns(
        seed in 0u64..1_000,
        col in 1u16..4,
    ) {
        let partition = PartitionPlan::for_grid(GridDims::square(4))
            .split_col(col, 6, Some(20));
        let plan = FaultPlan::new();
        let a = traced_net_stream(4, seed, 32, &plan, Some(&partition));
        let b = traced_net_stream(4, seed, 32, &plan, Some(&partition));
        prop_assert_eq!(causal_projection(&a), causal_projection(&b));
    }

    /// The reference simulation's trace obeys the same two contracts.
    #[test]
    fn sim_trace_is_causal_and_identical_across_reruns(
        seed in 0u64..1_000,
        n in 4u16..6,
    ) {
        let a = traced_sim_stream(n, seed, 40);
        let b = traced_sim_stream(n, seed, 40);
        prop_assert_eq!(causal_projection(&a), causal_projection(&b));
    }
}

/// Parents referenced by any span exist in the same round and stay open
/// past their children — spelled out once against a concrete run so the
/// guarantee isn't only as strong as `check_causality`'s implementation.
#[test]
fn parents_exist_and_close_after_their_children_open() {
    let stream = traced_net_stream(5, 7, 48, &FaultPlan::new().crash_at(9, CellId::new(2, 2)), None);
    let trace = Trace::parse(&stream).unwrap();
    for span in &trace.spans {
        if span.parent == 0 {
            continue;
        }
        let parent = trace
            .spans
            .iter()
            .find(|p| p.round == span.round && p.id == span.parent)
            .unwrap_or_else(|| panic!("round {} span {:#x} has an absent parent", span.round, span.id));
        assert!(
            parent.close > span.open,
            "round {}: parent {:#x} closed at {} before child {:#x} opened at {}",
            span.round,
            parent.id,
            parent.close,
            span.id,
            span.open
        );
        assert!(parent.close > parent.open, "parents close after opening");
    }
}
