//! Serde round-trips for the workspace's data types.
//!
//! Runs only with `--features serde`; uses `serde_json` (dev-dependency,
//! justified in `DESIGN.md`) as the transport.

#![cfg(feature = "serde")]

use cellular_flows::core::{CellState, Params, System, SystemConfig, SystemState};
use cellular_flows::cube::{CellId3, Dims3, Point3};
use cellular_flows::geom::{Dir, Fixed, Point, Square};
use cellular_flows::grid::{CellId, GridDims, Path};
use cellular_flows::multiflow::{FlowType, TypedEntity};
use cellular_flows::routing::Dist;
use cellular_flows::sim::{FailureEvents, Metrics, Simulation, TraceEvent};

fn roundtrip<T>(value: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string(value).expect("serializable");
    let back: T = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(&back, value, "round-trip changed the value: {json}");
}

#[test]
fn geometry_types_roundtrip() {
    roundtrip(&Fixed::from_milli(1_250));
    roundtrip(&(-Fixed::HALF));
    roundtrip(&Point::new(Fixed::HALF, Fixed::from_milli(2_750)));
    roundtrip(&Square::unit_cell(3, 4));
    for d in Dir::ALL {
        roundtrip(&d);
    }
}

#[test]
fn grid_types_roundtrip() {
    roundtrip(&CellId::new(7, 11));
    roundtrip(&GridDims::new(8, 3));
    roundtrip(&Path::straight(CellId::new(1, 0), Dir::North, 5).unwrap());
    roundtrip(&Dist::Finite(9));
    roundtrip(&Dist::Infinity);
}

#[test]
fn protocol_state_roundtrips_mid_execution() {
    let params = Params::from_milli(250, 50, 200).unwrap();
    roundtrip(&params);
    let cfg = SystemConfig::new(GridDims::square(5), CellId::new(1, 4), params)
        .unwrap()
        .with_source(CellId::new(1, 0));
    roundtrip(&cfg);
    // A populated, mid-flight state with failures: the interesting case.
    let mut sys = System::new(cfg);
    sys.run(20);
    sys.fail(CellId::new(2, 2));
    sys.run(10);
    let state: SystemState = sys.state().clone();
    assert!(state.entity_count() > 0, "want a nontrivial state");
    roundtrip(&state);
    roundtrip(&CellState::initial_target());
}

#[test]
fn extension_types_roundtrip() {
    roundtrip(&CellId3::new(1, 2, 3));
    roundtrip(&Dims3::new(4, 4, 2));
    roundtrip(&Point3::new(
        Fixed::ONE,
        Fixed::HALF,
        Fixed::from_milli(250),
    ));
    roundtrip(&FlowType(3));
    roundtrip(&TypedEntity::new(
        Point::new(Fixed::HALF, Fixed::HALF),
        FlowType(1),
    ));
}

#[test]
fn trace_events_roundtrip() {
    use cellular_flows::core::EntityId;
    roundtrip(&TraceEvent::Insert {
        cell: CellId::new(1, 0),
        entity: EntityId(7),
    });
    roundtrip(&TraceEvent::Transfer {
        entity: EntityId(7),
        from: CellId::new(1, 0),
        to: CellId::new(1, 1),
    });
    roundtrip(&TraceEvent::Consume { entity: EntityId(7) });
    roundtrip(&TraceEvent::Grant {
        granter: CellId::new(1, 1),
        grantee: CellId::new(1, 0),
    });
    roundtrip(&TraceEvent::Block {
        blocker: CellId::new(1, 1),
        blocked: CellId::new(1, 0),
    });
    roundtrip(&TraceEvent::Fail {
        cell: CellId::new(2, 2),
    });
    roundtrip(&TraceEvent::Recover {
        cell: CellId::new(2, 2),
    });
}

#[test]
fn metrics_keep_failure_history_across_roundtrip() {
    // The regression this suite exists for: `failures_per_round` used to be
    // `serde(skip)`, so a metrics round-trip silently lost the failure
    // history (failed_total() collapsed to 0 after restore).
    let params = Params::from_milli(250, 50, 200).unwrap();
    let cfg = SystemConfig::new(GridDims::square(5), CellId::new(1, 4), params)
        .unwrap()
        .with_source(CellId::new(1, 0));
    let mut sim = Simulation::new(cfg, 11).with_failure_model(
        cellular_flows::sim::failure::RandomFailRecover::new(0.05, 0.2, 13),
    );
    sim.run(120);
    let metrics: &Metrics = sim.metrics();
    assert!(metrics.failed_total() > 0, "want a nontrivial failure history");
    roundtrip(metrics);
}

#[test]
fn metrics_from_old_json_default_failure_history() {
    // JSON written before the failure history was serialized has no
    // `failures_per_round` key; it must still deserialize (to an empty
    // history), not error.
    let old = r#"{
        "consumed_per_round": [0, 1, 2],
        "inserted_per_round": [1, 1, 0],
        "blocked_per_round": [0, 0, 0],
        "grants_per_round": [1, 2, 2],
        "moved_per_round": [1, 2, 2]
    }"#;
    let m: Metrics = serde_json::from_str(old).expect("legacy JSON still loads");
    assert_eq!(m.rounds(), 3);
    assert_eq!(m.consumed_total(), 3);
    assert_eq!(m.failed_total(), 0);
    assert!(m.failure_history().is_empty());
}

#[test]
fn failure_events_roundtrip() {
    roundtrip(&FailureEvents::default());
    roundtrip(&FailureEvents {
        failed: vec![CellId::new(1, 1), CellId::new(3, 2)],
        recovered: vec![CellId::new(0, 4)],
        corrupted: vec![CellId::new(2, 2)],
    });
}

#[test]
fn resumed_state_continues_identically() {
    // The operational payoff: snapshot a running system to JSON, restore it,
    // and verify the continuation is bit-identical to never having stopped.
    let params = Params::from_milli(250, 50, 200).unwrap();
    let cfg = SystemConfig::new(GridDims::square(5), CellId::new(1, 4), params)
        .unwrap()
        .with_source(CellId::new(1, 0));
    let mut original = System::new(cfg.clone());
    original.run(30);
    let snapshot = serde_json::to_string(original.state()).unwrap();

    let mut resumed = System::new(cfg);
    resumed.set_state(serde_json::from_str(&snapshot).unwrap());
    original.run(40);
    resumed.run(40);
    assert_eq!(original.state(), resumed.state());
}
