//! Property-based round-trips for the telemetry event schema: every
//! [`Event`] must survive `to_line` → `parse_line` bit-exactly, and any
//! monotone sequence of lines must pass the stream validator with the
//! census the generator knows it produced.
//!
//! Unlike `serde_roundtrip.rs`, this suite runs in the hermetic tier-1
//! build — the telemetry JSON codec is hand-rolled and needs no serde.

use cellular_flows::grid::CellId;
use cellular_flows::telemetry::{validate_stream, Event};
use proptest::prelude::*;

fn cell_strategy() -> impl Strategy<Value = CellId> {
    (0u16..32, 0u16..32).prop_map(|(i, j)| CellId::new(i, j))
}

/// Detail strings exercising JSON escaping: quotes, backslashes, newlines,
/// control characters, and non-ASCII.
fn detail_strategy() -> impl Strategy<Value = String> {
    const DETAILS: &[&str] = &[
        "",
        "plain detail",
        "quote \" backslash \\ done",
        "line\nbreak\tand\rcontrols",
        "nul \u{0} and unit \u{1f} separators",
        "non-ascii: ü ∆ 安",
    ];
    proptest::sample::select(DETAILS).prop_map(str::to_string)
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (cell_strategy(), any::<u64>()).prop_map(|(cell, entity)| Event::Insert { cell, entity }),
        (any::<u64>(), cell_strategy(), cell_strategy())
            .prop_map(|(entity, from, to)| Event::Transfer { entity, from, to }),
        any::<u64>().prop_map(|entity| Event::Consume { entity }),
        (cell_strategy(), cell_strategy())
            .prop_map(|(granter, grantee)| Event::Grant { granter, grantee }),
        (cell_strategy(), cell_strategy())
            .prop_map(|(blocker, blocked)| Event::Block { blocker, blocked }),
        cell_strategy().prop_map(|cell| Event::Fail { cell }),
        cell_strategy().prop_map(|cell| Event::Recover { cell }),
        cell_strategy().prop_map(|cell| Event::Corrupt { cell }),
        (detail_strategy(), detail_strategy())
            .prop_map(|(monitor, detail)| Event::Violation { monitor, detail }),
        detail_strategy().prop_map(|detail| Event::Timeout { detail }),
        (detail_strategy(), detail_strategy())
            .prop_map(|(action, detail)| Event::Supervisor { action, detail }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(consumed, inserted, blocked, moved)| Event::RoundSummary {
                consumed,
                inserted,
                blocked,
                moved,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse_line(to_line(e))` is the identity on `(round, event)`.
    #[test]
    fn event_lines_roundtrip(round in any::<u64>(), event in event_strategy()) {
        let line = event.to_line(round);
        let (back_round, back) = Event::parse_line(&line)
            .unwrap_or_else(|e| panic!("own line rejected: {e}\n{line}"));
        prop_assert_eq!(back_round, round);
        prop_assert_eq!(back, event);
    }

    /// A generated stream with non-decreasing rounds validates, and the
    /// validator's census matches what the generator emitted.
    #[test]
    fn generated_streams_validate(
        deltas in proptest::collection::vec((0u64..3, event_strategy()), 1..40),
    ) {
        let mut text = String::new();
        let mut round = 0u64;
        let mut violations = 0usize;
        let mut timeouts = 0usize;
        for (delta, event) in &deltas {
            round += delta;
            match event {
                Event::Violation { .. } => violations += 1,
                Event::Timeout { .. } => timeouts += 1,
                _ => {}
            }
            text.push_str(&event.to_line(round));
            text.push('\n');
        }
        let stats = validate_stream(&text)
            .unwrap_or_else(|(line, e)| panic!("line {line}: {e}"));
        prop_assert_eq!(stats.events, deltas.len());
        prop_assert_eq!(stats.last_round, round);
        prop_assert_eq!(stats.violations, violations);
        prop_assert_eq!(stats.timeouts, timeouts);
    }

    /// Round regressions are rejected with the offending line number.
    #[test]
    fn non_monotone_streams_are_rejected(
        event in event_strategy(),
        high in 10u64..100,
        low in 0u64..10,
    ) {
        let text = format!("{}\n{}\n", event.to_line(high), event.to_line(low));
        let (line, _) = validate_stream(&text).expect_err("regression must be caught");
        prop_assert_eq!(line, 2);
    }
}
