//! Monte-Carlo safety checking on instances far beyond exhaustive
//! enumeration: the paper's own 8×8 evaluation grid, with nondeterministic
//! failures and recoveries of arbitrary cells.

use cellular_flows::core::mc::{BoundedSystem, McAction};
use cellular_flows::core::{safety, Params, SystemConfig};
use cellular_flows::dts::{random_walks, WalkConfig};
use cellular_flows::grid::{CellId, GridDims};

fn fig7_bounded(budget: u64) -> (SystemConfig, BoundedSystem) {
    let cfg = SystemConfig::new(
        GridDims::square(8),
        CellId::new(1, 7),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(1, 0))
    .with_entity_budget(budget);
    // Every cell of the straight route plus a few off-route cells may crash
    // and recover nondeterministically.
    let fallible: Vec<CellId> = (1..7)
        .map(|j| CellId::new(1, j))
        .chain([CellId::new(0, 3), CellId::new(2, 3), CellId::new(1, 7)])
        .collect();
    let sys = BoundedSystem::new(cfg.clone()).with_fallible(fallible, true);
    (cfg, sys)
}

#[test]
fn random_walks_find_no_safety_violation_on_8x8() {
    let (cfg, sys) = fig7_bounded(6);
    let report = random_walks(
        &sys,
        |s| {
            safety::check_safe(&cfg, s).is_ok()
                && safety::check_invariant1(&cfg, s).is_ok()
                && safety::check_invariant2(&cfg, s).is_ok()
        },
        &WalkConfig {
            walks: 48,
            depth: 400,
            seed: 0xC0FFEE,
        },
    )
    .expect("no violation in ~19k sampled states");
    assert!(report.states_checked > 15_000);
    assert_eq!(report.deadlocked_walks, 0, "update is always enabled");
}

#[test]
fn random_walks_catch_seeded_bugs() {
    // Sanity that the harness *can* fail: a deliberately wrong predicate
    // (demanding an empty system) must be refuted quickly with a valid trace.
    let (_cfg, sys) = fig7_bounded(2);
    let violation = random_walks(
        &sys,
        |s| s.entity_count() == 0,
        &WalkConfig {
            walks: 8,
            depth: 100,
            seed: 1,
        },
    )
    .expect_err("sources must eventually insert");
    assert!(violation.last().entity_count() > 0);
    assert_eq!(violation.validate(&sys), Ok(()));
    // The trace is made of real actions.
    assert!(violation.actions().iter().all(|a| matches!(
        a,
        McAction::Update | McAction::Fail(_) | McAction::Recover(_)
    )));
}
