//! Property-based differential testing of the chaos subsystem: arbitrary
//! fault campaigns driven simultaneously through the message-passing runtime
//! (`cellflow-net`) and the shared-variable reference (`cellflow-core` via
//! `cellflow-sim`'s `FailureModel`), asserting the deployments are
//! observationally identical — the paper's §II-B claim, now under fire.

use cellular_flows::core::{FaultPlan, Params, SystemConfig};
use cellular_flows::grid::{CellId, GridDims};
use cellular_flows::net::NetSystem;
use cellular_flows::sim::{FailureModel, Simulation};
use proptest::prelude::*;

fn single_source_config(n: u16) -> SystemConfig {
    SystemConfig::new(
        GridDims::square(n),
        CellId::new(1, n - 1),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(1, 0))
}

/// Runs the shared-variable reference under `plan` via the `FailureModel`
/// impl — the exact code path simulations use, not a bespoke reimplementation.
fn reference(config: &SystemConfig, rounds: u64, plan: &FaultPlan) -> (Vec<String>, u64, u64) {
    let mut sim = Simulation::new(config.clone(), 0)
        .with_failure_model(plan.clone())
        .with_safety_checks(true);
    sim.run(rounds);
    let dists = sim
        .system()
        .state()
        .cells
        .iter()
        .map(|c| format!("{:?}", c.dist))
        .collect();
    (
        dists,
        sim.system().consumed_total(),
        sim.system().inserted_total(),
    )
}

/// A random crash/recover event stream over an `n × n` grid.
fn plan_strategy(n: u16, rounds: u64) -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec(
        (0..rounds, (0..n, 0..n), proptest::bool::ANY),
        0..8,
    )
    .prop_map(move |events| {
        let mut plan = FaultPlan::new();
        for (round, (i, j), recover) in events {
            let cell = CellId::new(i, j);
            plan = if recover {
                plan.recover_at(round, cell)
            } else {
                plan.crash_at(round, cell)
            };
        }
        plan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random crash/recovery schedules: the net runtime (driven by
    /// `with_schedule`-style plans) and the reference (driven by the
    /// `FailureModel` impl of the same plan) agree on consumed/inserted
    /// counts and the entire final `dist` table.
    #[test]
    fn random_schedules_are_differential(
        n in 3u16..=5,
        rounds in 10u64..=80,
        plan in plan_strategy(5, 80),
    ) {
        let cfg = single_source_config(n);
        // Clamp cells outside smaller grids back in bounds.
        let mut clamped = FaultPlan::new();
        for event in plan.events() {
            let cell = CellId::new(event.cell.i() % n, event.cell.j() % n);
            clamped = match event.kind {
                cellular_flows::core::FaultKind::Recover => clamped.recover_at(event.round, cell),
                _ => clamped.crash_at(event.round, cell),
            };
        }
        let net = NetSystem::new(cfg.clone())
            .unwrap()
            .with_plan(clamped.clone())
            .run(rounds)
            .unwrap();
        let (ref_dists, ref_consumed, ref_inserted) = reference(&cfg, rounds, &clamped);
        let net_dists: Vec<String> = net
            .state
            .cells
            .iter()
            .map(|c| format!("{:?}", c.dist))
            .collect();
        prop_assert_eq!(net_dists, ref_dists);
        prop_assert_eq!(net.consumed, ref_consumed);
        prop_assert_eq!(net.inserted, ref_inserted);
    }

    /// Hard crashes (real thread death + checkpointed re-spawn in the net
    /// runtime, plain `fail` in the reference) preserve the differential
    /// guarantee on a lossless fabric.
    #[test]
    fn hard_crash_respawns_are_differential(
        victim in (0u16..4, 0u16..4),
        crash_round in 5u64..30,
        gap in 5u64..25,
    ) {
        let cfg = single_source_config(4);
        let cell = CellId::new(victim.0, victim.1);
        let plan = FaultPlan::new()
            .hard_crash_at(crash_round, cell)
            .recover_at(crash_round + gap, cell);
        let net = NetSystem::new(cfg.clone())
            .unwrap()
            .with_plan(plan.clone())
            .run(80)
            .unwrap();
        let (ref_dists, ref_consumed, ref_inserted) = reference(&cfg, 80, &plan);
        let net_dists: Vec<String> = net
            .state
            .cells
            .iter()
            .map(|c| format!("{:?}", c.dist))
            .collect();
        prop_assert_eq!(net_dists, ref_dists);
        prop_assert_eq!(net.consumed, ref_consumed);
        prop_assert_eq!(net.inserted, ref_inserted);
    }
}

/// The `FailureModel` impl and `with_schedule` interpret one plan
/// identically (a guard against the two runtimes drifting apart in how they
/// read the shared vocabulary).
#[test]
fn failure_model_and_schedule_read_plans_identically() {
    let cfg = single_source_config(4);
    let cell = CellId::new(2, 1);
    let plan = FaultPlan::new().crash_at(7, cell).recover_at(19, cell);
    let via_plan = NetSystem::new(cfg.clone())
        .unwrap()
        .with_plan(plan.clone())
        .run(50)
        .unwrap();
    let via_schedule = NetSystem::new(cfg.clone())
        .unwrap()
        .with_schedule([(7u64, cell, false), (19, cell, true)])
        .run(50)
        .unwrap();
    assert_eq!(via_plan, via_schedule);
    let mut model = plan;
    let mut sys = cellular_flows::core::System::new(cfg);
    for round in 0..50 {
        model.apply(&mut sys, round);
        sys.step();
    }
    assert_eq!(via_plan.state.cells, sys.state().cells);
}
