//! Scale smoke tests: the full stack on grids larger than the paper's, with
//! churn — catching anything that only breaks beyond toy sizes.

use cellular_flows::core::{analysis, safety, Params, SystemConfig};
use cellular_flows::grid::{CellId, GridDims};
use cellular_flows::net::NetSystem;
use cellular_flows::sim::failure::RandomFailRecover;
use cellular_flows::sim::Simulation;

#[test]
fn sixteen_by_sixteen_with_four_sources_and_churn() {
    let params = Params::from_milli(200, 50, 150).unwrap();
    let config = SystemConfig::new(GridDims::square(16), CellId::new(8, 8), params)
        .unwrap()
        .with_sources([
            CellId::new(0, 0),
            CellId::new(15, 0),
            CellId::new(0, 15),
            CellId::new(15, 15),
        ]);
    let mut sim = Simulation::new(config, 5)
        .with_failure_model(RandomFailRecover::new(0.005, 0.1, 21).protect_target())
        .with_safety_checks(true); // every round, all 256 cells
    sim.run(1_500);
    assert!(
        sim.metrics().consumed_total() > 100,
        "only {} delivered",
        sim.metrics().consumed_total()
    );
    assert_eq!(
        sim.system().inserted_total(),
        sim.system().consumed_total() + sim.system().state().entity_count() as u64
    );
}

#[test]
fn large_grid_stabilizes_in_quadratic_bound() {
    let params = Params::from_milli(250, 50, 200).unwrap();
    let config = SystemConfig::new(GridDims::square(20), CellId::new(10, 10), params).unwrap();
    let mut sim = Simulation::new(config, 1).with_safety_checks(false);
    // Carve a big random hole pattern, then verify Corollary 7's bound.
    for k in 0..40u16 {
        let c = CellId::new((k * 7) % 20, (k * 13) % 20);
        if c != CellId::new(10, 10) {
            sim.system_mut().fail(c);
        }
    }
    let bound = 2 * 400 + 2;
    sim.run(bound);
    assert!(analysis::routing_stabilized(
        sim.system().config(),
        sim.system().state()
    ));
}

#[test]
fn twelve_by_twelve_deployment_matches_reference() {
    // 144 threads exchanging ~3·4·144 messages per round, still bit-identical.
    let params = Params::from_milli(250, 50, 200).unwrap();
    let config = SystemConfig::new(GridDims::square(12), CellId::new(6, 11), params)
        .unwrap()
        .with_source(CellId::new(6, 0));
    let report = NetSystem::new(config.clone())
        .unwrap()
        .with_schedule([
            (20u64, CellId::new(6, 5), false),
            (70, CellId::new(6, 5), true),
        ])
        .run(150)
        .unwrap();
    let mut reference = cellular_flows::core::System::new(config);
    for round in 0..150u64 {
        if round == 20 {
            reference.fail(CellId::new(6, 5));
        }
        if round == 70 {
            reference.recover(CellId::new(6, 5));
        }
        reference.step();
    }
    assert_eq!(report.state.cells, reference.state().cells);
    assert_eq!(report.consumed, reference.consumed_total());
    assert!(safety::check_safe(reference.config(), reference.state()).is_ok());
}
