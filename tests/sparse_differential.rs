//! Property-based differential testing of the sparse active-set scheduler
//! and the sharded row-band executor: random grids, token policies,
//! crash/recover/corruption schedules, scripted partitions, and
//! endogenous-overload campaigns driven simultaneously through a dense
//! `System`, a sparse one, and a sparse+sharded one — asserting identical
//! `SystemState`, identical `RoundEvents`, and identical monitor verdicts
//! after every single round.
//!
//! The dense engine is the reference (itself pinned to the pure phase
//! composition by `engine_differential.rs`); the active-set scheduler and
//! the shard fan-out are the optimizations. This suite is what licenses
//! running every campaign — chaos, stabilize, cascade, partition — on the
//! sparse path by default.

use cellular_flows::core::monitor::MonitorViolation;
use cellular_flows::core::{
    expand_overload, standard_monitors, Corruption, Engine, ExecMode, Monitor, OverloadTrigger,
    Params, PartitionPlan, System, SystemConfig, TokenPolicy,
};
use cellular_flows::core::monitor::MonitorCtx;
use cellular_flows::geom::Dir;
use cellular_flows::grid::{CellId, GridDims};
use cellular_flows::routing::Dist;
use cellular_flows::sim::FailureModel;
use proptest::prelude::*;

/// One scheduled disturbance in a differential run.
#[derive(Clone, Copy, Debug)]
enum Event {
    Crash,
    Recover,
    Corrupt(Corruption),
}

fn decode_dir(code: u64) -> Option<Dir> {
    match code % 5 {
        0 => None,
        k => Some(Dir::ALL[(k - 1) as usize]),
    }
}

/// Decodes `(kind, salt)` into a disturbance, covering every `Corruption`
/// variant plus crash and recovery.
fn decode_event(kind: u8, salt: u64, dist_cap: u32) -> Event {
    match kind % 10 {
        0 => Event::Crash,
        1 => Event::Recover,
        2 => Event::Corrupt(Corruption::Dist(Dist::Finite((salt % dist_cap as u64) as u32))),
        3 => Event::Corrupt(Corruption::Dist(Dist::Infinity)),
        4 => Event::Corrupt(Corruption::Next(decode_dir(salt))),
        5 => Event::Corrupt(Corruption::Token(decode_dir(salt))),
        6 => Event::Corrupt(Corruption::Signal(decode_dir(salt))),
        7 => Event::Corrupt(Corruption::NePrev { mask: (salt % 16) as u8 }),
        8 => Event::Corrupt(Corruption::Jostle { salt }),
        _ => Event::Corrupt(Corruption::Scramble { salt }),
    }
}

fn config(n: u16, policy_code: u8, extra_source: bool, capacity: Option<u32>) -> SystemConfig {
    let policy = match policy_code % 3 {
        0 => TokenPolicy::RoundRobin,
        1 => TokenPolicy::Randomized { salt: 0xD1FF },
        _ => TokenPolicy::FixedPriority,
    };
    let mut cfg = SystemConfig::new(
        GridDims::square(n),
        CellId::new(1, n - 1),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(1, 0))
    .with_token_policy(policy);
    if extra_source {
        cfg = cfg.with_source(CellId::new(n - 1, 0));
    }
    if let Some(c) = capacity {
        cfg = cfg.with_capacity(c);
    }
    cfg
}

/// A random disturbance schedule: `(round, (i, j), kind, salt)` tuples.
fn schedule_strategy(rounds: u64) -> impl Strategy<Value = Vec<(u64, (u16, u16), u8, u64)>> {
    proptest::collection::vec(
        (1..rounds, (0u16..8, 0u16..8), 0u8..10, 0u64..u64::MAX),
        0..12,
    )
}

/// One execution variant under test, with its own monitor suite.
struct Variant {
    system: System,
    monitors: Vec<Box<dyn Monitor>>,
    violations: Vec<MonitorViolation>,
}

impl Variant {
    fn new(cfg: &SystemConfig, mode: ExecMode, workers: usize) -> Variant {
        let mut system = System::new(cfg.clone());
        system.set_exec_mode(mode);
        if workers > 1 {
            system.set_workers(workers);
            system.set_shard_min(1); // engage sharding on these tiny grids
        }
        Variant {
            system,
            monitors: standard_monitors(cfg),
            violations: Vec::new(),
        }
    }

    /// Evaluates the monitor suite on the just-completed round.
    fn observe(&mut self, cfg: &SystemConfig, round: u64, corrupted: &[CellId]) {
        let ctx = MonitorCtx {
            config: cfg,
            state: self.system.state(),
            round: round + 1,
            failed: &[],
            recovered: &[],
            corrupted,
            ambient_chaos: false,
            consumed_total: self.system.consumed_total(),
            inserted_total: self.system.inserted_total(),
        };
        for monitor in self.monitors.iter_mut() {
            self.violations.extend(monitor.observe(&ctx));
        }
    }

    fn summaries(&self) -> Vec<String> {
        self.monitors.iter().map(|m| m.summary()).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A dense `System`, a sparse one, and a sparse one sharded across
    /// three row-band workers agree on the full successor state, the full
    /// event record, and every monitor verdict, round for round, under
    /// arbitrary crash/recover/corruption schedules, scripted partitions
    /// (with heal), endogenous-overload campaigns on finite-capacity
    /// grids, and every token policy.
    #[test]
    fn sparse_and_sharded_match_dense_under_random_schedules(
        shape in (3u16..=6, 10u64..=60),
        knobs in (0u8..3, proptest::bool::ANY, proptest::bool::ANY),
        split in (0u64..20, 1u16..5), // round 0 = run without a partition
        schedule in schedule_strategy(60),
    ) {
        let (n, rounds) = shape;
        let (policy_code, extra_source, overloaded) = knobs;
        let (split_round, split_col) = split;
        let cfg = config(n, policy_code, extra_source, overloaded.then_some(2));
        let dims = cfg.dims();
        let dist_cap = cfg.dist_cap();

        // Endogenous overload: precompute the cascade the same way the
        // campaign runner does, then replay its plan on every variant
        // (one clone each — `apply` advances an internal cursor).
        let overload_plan = overloaded.then(|| {
            let base = cellular_flows::core::FaultPlan::new()
                .crash_at(2, CellId::new(1, n / 2));
            expand_overload(&cfg, &base, OverloadTrigger::new(2, 2), None, None, rounds).plan
        });
        let mut overload_plans = overload_plan.map(|p| [p.clone(), p.clone(), p]);

        // Scripted partition: a column split that heals mid-run.
        let partition = (split_round > 0).then(|| {
            PartitionPlan::for_grid(dims)
                .split_col(split_col % n, split_round, Some(split_round + 15))
                .expand(rounds)
        });

        let mut dense = Variant::new(&cfg, ExecMode::Dense, 1);
        let mut sparse = Variant::new(&cfg, ExecMode::Sparse, 1);
        let mut sharded = Variant::new(&cfg, ExecMode::Sparse, 3);

        for round in 0..rounds {
            let mut corrupted: Vec<CellId> = Vec::new();
            for &(when, (i, j), kind, salt) in &schedule {
                if when != round {
                    continue;
                }
                let cell = CellId::new(i % n, j % n);
                let event = decode_event(kind, salt, dist_cap);
                for v in [&mut dense, &mut sparse, &mut sharded] {
                    match event {
                        Event::Crash => v.system.fail(cell),
                        Event::Recover => v.system.recover(cell),
                        Event::Corrupt(c) => v.system.corrupt(cell, c),
                    }
                }
                if matches!(event, Event::Corrupt(_)) {
                    corrupted.push(cell);
                }
            }
            if let Some([pd, ps, ph]) = overload_plans.as_mut() {
                pd.apply(&mut dense.system, round);
                ps.apply(&mut sparse.system, round);
                ph.apply(&mut sharded.system, round);
            }
            if let Some(schedule) = &partition {
                for v in [&mut dense, &mut sparse, &mut sharded] {
                    v.system.set_link_cuts(schedule.mask_row(round));
                }
            }

            let dense_events = dense.system.step();
            let sparse_events = sparse.system.step();
            let sharded_events = sharded.system.step();
            prop_assert_eq!(
                sparse.system.state(),
                dense.system.state(),
                "sparse state diverged at round {} (n = {}, policy {})",
                round, n, policy_code
            );
            prop_assert_eq!(
                sharded.system.state(),
                dense.system.state(),
                "sharded state diverged at round {} (n = {}, policy {})",
                round, n, policy_code
            );
            prop_assert_eq!(&sparse_events, &dense_events, "sparse events diverged at round {}", round);
            prop_assert_eq!(&sharded_events, &dense_events, "sharded events diverged at round {}", round);

            for v in [&mut dense, &mut sparse, &mut sharded] {
                v.observe(&cfg, round, &corrupted);
            }
            prop_assert_eq!(&sparse.violations, &dense.violations, "sparse verdicts diverged at round {}", round);
            prop_assert_eq!(&sharded.violations, &dense.violations, "sharded verdicts diverged at round {}", round);
        }
        prop_assert_eq!(sparse.summaries(), dense.summaries());
        prop_assert_eq!(sharded.summaries(), dense.summaries());
    }
}

/// The sparse zero-alloc claim, checked mechanically: once warm, a
/// steady-state sparse round grows no buffer — the epoch-stamped mark sets
/// recycle their backing stores, the band scratch is reused, and the
/// active lists only shrink back to their high-water marks.
#[test]
fn steady_state_sparse_rounds_do_not_allocate() {
    let cfg = config(8, 0, true, None);
    let mut engine = Engine::new(cfg);
    assert_eq!(engine.exec_mode(), ExecMode::Sparse, "sparse is the default");
    for _ in 0..500 {
        engine.step();
    }
    engine.reset_alloc_events();
    for _ in 0..500 {
        engine.step();
    }
    assert_eq!(engine.alloc_events(), 0, "steady-state sparse rounds must be allocation-free");
    // And the scheduler is actually sparse: the steady flow keeps the
    // active set well under the full 64-cell grid.
    assert!(engine.active_cells() < 64, "active set never shrank");
}

/// A quiescent grid is O(active): with no sources there is nothing to do,
/// and the active set collapses to empty — rounds become no-ops rather
/// than full sweeps.
#[test]
fn quiescent_grids_run_empty_rounds() {
    let cfg = SystemConfig::new(
        GridDims::square(12),
        CellId::new(1, 11),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap();
    let mut engine = Engine::new(cfg);
    for _ in 0..600 {
        engine.step();
    }
    assert_eq!(engine.active_cells(), 0, "quiescent grid kept cells active");
}
