//! Property-based round-trips for the deterministic flight recordings
//! (DESIGN.md §15): the snapshot codec must reconstruct states exactly,
//! keyframe-seek materialization must agree with linear replay, bisection
//! must pinpoint an injected corruption to its exact round and cell, and a
//! recording must be a pure observation — attaching one never perturbs the
//! run, and recording-off keeps the engine's zero-allocation steady state.

use cellular_flows::core::snapshot::{
    self, apply_delta, bisect, decode_state, diff_states, encode_delta, encode_state, Recorder,
};
use cellular_flows::core::{Engine, Params, System, SystemConfig, SystemState};
use cellular_flows::grid::{CellId, GridDims};
use cellular_flows::telemetry::{FrameKind, Recording};
use proptest::prelude::*;

/// A small random system: the source keeps traffic flowing so states keep
/// changing (deltas stay non-trivial).
fn config_strategy() -> impl Strategy<Value = SystemConfig> {
    (3u16..=6, 3u16..=6).prop_map(|(nx, ny)| {
        let params = Params::from_milli(250, 50, 200).expect("paper parameters are valid");
        SystemConfig::new(GridDims::new(nx, ny), CellId::new(1, ny - 1), params)
            .expect("target in bounds")
            .with_source(CellId::new(1, 0))
    })
}

/// Drives a system `rounds` steps and returns every state: index `r` is
/// the state after `r` rounds (index 0 is the initial state).
fn state_sequence(config: &SystemConfig, rounds: u64) -> Vec<SystemState> {
    let mut sys = System::new(config.clone());
    let mut states = vec![sys.state().clone()];
    for _ in 0..rounds {
        sys.step();
        states.push(sys.state().clone());
    }
    states
}

/// Records a state sequence through a [`Recorder`] and parses it back.
fn record_sequence(
    config: &SystemConfig,
    states: &[SystemState],
    keyframe_interval: u64,
) -> Recording {
    let mut rec = Recorder::for_config(config, 1, keyframe_interval, "prop");
    for (round, state) in states.iter().enumerate() {
        rec.record(round as u64, state);
    }
    Recording::parse(&rec.finish()).expect("a fresh recording parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Keyframes and deltas reconstruct every state bit-exactly:
    /// `decode(encode(s)) == s` and `apply(prev, delta(prev, cur)) == cur`.
    #[test]
    fn snapshot_codec_round_trips(config in config_strategy(), rounds in 2u64..30) {
        let dims = config.dims();
        let states = state_sequence(&config, rounds);
        for pair in states.windows(2) {
            let decoded = decode_state(&encode_state(&pair[1]), dims)
                .expect("keyframe body decodes");
            prop_assert_eq!(&decoded, &pair[1]);
            let mut patched = pair[0].clone();
            apply_delta(&mut patched, &encode_delta(&pair[0], &pair[1]))
                .expect("delta body applies");
            prop_assert_eq!(&patched, &pair[1]);
            prop_assert!(diff_states(dims, &patched, &pair[1]).is_empty());
        }
    }

    /// `state_at` (keyframe seek + delta walk) agrees with the linear
    /// ground truth at every round, for every keyframe cadence.
    #[test]
    fn keyframe_seek_equals_linear_replay(
        config in config_strategy(),
        rounds in 2u64..30,
        keyframe_interval in 1u64..12,
    ) {
        let states = state_sequence(&config, rounds);
        let rec = record_sequence(&config, &states, keyframe_interval);
        prop_assert_eq!(rec.round_span(), Some((0, rounds)));
        prop_assert_eq!(rec.frames[0].kind, FrameKind::Keyframe);
        for (round, expected) in states.iter().enumerate() {
            let sought = snapshot::state_at(&rec, round as u64)
                .expect("every recorded round materializes");
            prop_assert_eq!(&sought, expected);
        }
    }

    /// Bisecting a recording against a copy with one injected corruption
    /// reports exactly the corrupted round and cell.
    #[test]
    fn bisect_pinpoints_an_injected_corruption(
        config in config_strategy(),
        rounds in 3u64..25,
        keyframe_interval in 1u64..8,
        round_seed in 0u64..10_000,
        cell_seed in 0usize..10_000,
    ) {
        let dims = config.dims();
        let states = state_sequence(&config, rounds);
        let corrupt_round = 1 + round_seed % rounds;
        let cell_index = cell_seed % states[0].cells.len();

        let mut corrupted = states.clone();
        let victim = &mut corrupted[corrupt_round as usize].cells[cell_index];
        victim.failed = !victim.failed;

        let a = record_sequence(&config, &states, keyframe_interval);
        let b = record_sequence(&config, &corrupted, keyframe_interval);
        let d = bisect(&a, &b)
            .expect("recordings are comparable")
            .expect("the corruption diverges the recordings");
        prop_assert_eq!(d.round, corrupt_round);
        prop_assert_eq!(d.cell, Some(dims.id_at(cell_index)));

        // Identical recordings never diverge.
        prop_assert!(bisect(&a, &a).expect("comparable").is_none());
    }

    /// A recording is a pure observation: the recorded run's states are
    /// bit-identical to an unrecorded run of the same system, and the
    /// recording itself is reproducible.
    #[test]
    fn recording_never_perturbs_the_run(
        config in config_strategy(),
        rounds in 2u64..30,
        keyframe_interval in 1u64..12,
    ) {
        let mut bare = System::new(config.clone());
        let mut recorded = System::new(config.clone());
        recorded.attach_recorder(Box::new(Recorder::for_config(
            &config, 1, keyframe_interval, "prop",
        )));
        for _ in 0..rounds {
            bare.step();
            recorded.step();
        }
        prop_assert_eq!(bare.state(), recorded.state());

        let bytes = recorded
            .take_recorder()
            .expect("the recorder stays attached")
            .finish();
        let rec = Recording::parse(&bytes).expect("recording parses");
        let last = snapshot::state_at(&rec, rounds).expect("last round materializes");
        prop_assert_eq!(&last, bare.state());
    }
}

/// Recording-off is the engine's ordinary steady state: zero allocation
/// events per round, exactly as `BENCH_PR3.json` pins.
#[test]
fn recording_off_steady_state_stays_allocation_free() {
    let params = Params::from_milli(250, 50, 200).expect("paper parameters are valid");
    let config = SystemConfig::new(GridDims::square(6), CellId::new(1, 5), params)
        .expect("target in bounds")
        .with_source(CellId::new(1, 0));
    let mut engine = Engine::new(config);
    for _ in 0..200 {
        engine.step();
    }
    engine.reset_alloc_events();
    for _ in 0..200 {
        engine.step();
    }
    assert_eq!(
        engine.alloc_events(),
        0,
        "an unrecorded steady-state round allocated"
    );
}
