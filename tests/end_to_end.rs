//! End-to-end integration across all crates: long mixed runs with churn,
//! draining, trace validation, and the theorem-level guarantees.

use cellular_flows::core::{analysis, safety, Params, SourcePolicy, System, SystemConfig};
use cellular_flows::geom::Dir;
use cellular_flows::grid::{CellId, GridDims, Path};
use cellular_flows::sim::failure::{RandomFailRecover, Schedule};
use cellular_flows::sim::{Simulation, TraceRecorder};

fn fig7_config() -> SystemConfig {
    SystemConfig::new(
        GridDims::square(8),
        CellId::new(1, 7),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(1, 0))
}

#[test]
fn long_run_with_churn_stays_safe_and_consistent() {
    let mut sim = Simulation::new(fig7_config(), 11)
        .with_failure_model(RandomFailRecover::new(0.02, 0.1, 77))
        .with_trace(TraceRecorder::new())
        .with_safety_checks(true); // panics on any violation
    sim.run(3_000);
    let entities_checked = sim.trace().unwrap().validate().expect("consistent trace");
    assert!(entities_checked > 20);
    assert_eq!(
        sim.system().inserted_total(),
        sim.system().consumed_total() + sim.system().state().entity_count() as u64
    );
}

#[test]
fn serpentine_path_delivers_everything() {
    // A maximal-complexity corridor: length-8 path with 6 turns, carved.
    let dims = GridDims::square(8);
    let path = Path::with_turns(dims, CellId::new(0, 0), 8, 6).unwrap();
    let cfg = SystemConfig::new(
        dims,
        *path.target(),
        Params::from_milli(200, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(*path.source())
    .with_entity_budget(10);
    let mut sim = Simulation::new(cfg, 5)
        .with_failure_model(Schedule::new().carve(path.carve_failures(dims)))
        .with_safety_checks(true);
    // Run until all 10 budgeted entities are consumed.
    let mut rounds = 0;
    while sim.metrics().consumed_total() < 10 {
        sim.step();
        rounds += 1;
        assert!(
            rounds < 5_000,
            "stalled at {}",
            sim.metrics().consumed_total()
        );
    }
    assert_eq!(sim.system().state().entity_count(), 0);
}

#[test]
fn overload_then_recover_drains_clean() {
    // Saturate the corridor by blocking the target's column, then unblock and
    // verify full drainage.
    let mut sim = Simulation::new(fig7_config(), 3).with_safety_checks(true);
    sim.run(20);
    sim.system_mut().fail(CellId::new(1, 6));
    sim.run(200); // source keeps injecting; corridor reroutes via column 0/2
    sim.system_mut().recover(CellId::new(1, 6));
    sim.run(200);
    assert!(analysis::routing_stabilized(
        sim.system().config(),
        sim.system().state()
    ));

    // Drain.
    let drain_cfg = fig7_config().with_source_policy(SourcePolicy::Disabled);
    let mut drain = System::new(drain_cfg);
    drain.set_state(sim.system().state().clone());
    let mut rounds = 0;
    while drain.state().entity_count() > 0 {
        drain.step();
        rounds += 1;
        assert!(rounds < 10_000, "drain stalled");
    }
    assert_eq!(drain.inserted_total(), 0);
}

#[test]
fn two_targets_worth_of_flows_merge_fairly() {
    // Cross flows: west→east and south→north share the grid; both must
    // keep progressing (fair token rotation at crossing cells).
    let dims = GridDims::square(6);
    let cfg = SystemConfig::new(
        dims,
        CellId::new(5, 3),
        Params::from_milli(200, 50, 150).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(0, 3))
    .with_source(CellId::new(3, 0));
    let mut sim = Simulation::new(cfg, 9)
        .with_trace(TraceRecorder::new())
        .with_safety_checks(true);
    sim.run(1_200);
    let trace = sim.trace().unwrap();
    trace.validate().unwrap();
    // Both sources must have had entities consumed.
    use cellular_flows::sim::TraceEvent;
    let mut consumed_from = std::collections::HashSet::new();
    let inserts: std::collections::HashMap<_, _> = trace
        .events()
        .iter()
        .filter_map(|(_, e)| match e {
            TraceEvent::Insert { cell, entity } => Some((*entity, *cell)),
            _ => None,
        })
        .collect();
    for (_, e) in trace.events() {
        if let TraceEvent::Consume { entity } = e {
            consumed_from.insert(inserts[entity]);
        }
    }
    assert_eq!(
        consumed_from.len(),
        2,
        "one flow starved: {consumed_from:?}"
    );
}

#[test]
fn isolated_entities_stay_in_their_island_and_freeze() {
    // Wall off the 2×2 corner block {⟨6,6⟩, ⟨7,6⟩, ⟨6,7⟩, ⟨7,7⟩}. During the
    // count-to-infinity window the island's cells still route at each other,
    // so the entity may wander *within* the island — but it can never leave,
    // and once dist saturates to ∞ (≤ dist_cap rounds) everything freezes.
    let island = [
        CellId::new(6, 6),
        CellId::new(7, 6),
        CellId::new(6, 7),
        CellId::new(7, 7),
    ];
    let mut sys = System::new(fig7_config());
    sys.run(10);
    sys.seed_entity(CellId::new(6, 6), CellId::new(6, 6).center())
        .unwrap();
    for c in [
        CellId::new(5, 6),
        CellId::new(5, 7),
        CellId::new(6, 5),
        CellId::new(7, 5),
    ] {
        sys.fail(c);
    }
    let in_island = |sys: &System| -> usize {
        island
            .iter()
            .map(|&c| sys.state().cell(sys.config().dims(), c).members.len())
            .sum()
    };
    // The entity never leaves the island, at any round.
    for _ in 0..(sys.config().dist_cap() as u64 + 50) {
        sys.step();
        assert_eq!(in_island(&sys), 1, "entity escaped the walled island");
    }
    // After saturation: the island is a fixpoint.
    let frozen: Vec<_> = island
        .iter()
        .map(|&c| sys.state().cell(sys.config().dims(), c).members.clone())
        .collect();
    sys.run(500);
    let now: Vec<_> = island
        .iter()
        .map(|&c| sys.state().cell(sys.config().dims(), c).members.clone())
        .collect();
    assert_eq!(frozen, now, "island did not freeze after dist saturation");
    assert!(safety::check_safe(sys.config(), sys.state()).is_ok());
}

#[test]
fn straight_and_carved_paths_agree() {
    // The natural shortest route up column 1 and the explicitly carved one
    // produce identical throughput: routing finds the carved path on its own.
    let k = 1_200;
    let mut natural = Simulation::new(fig7_config(), 1).with_safety_checks(false);
    natural.run(k);

    let dims = GridDims::square(8);
    let path = Path::straight(CellId::new(1, 0), Dir::North, 8).unwrap();
    let mut carved = Simulation::new(fig7_config(), 1)
        .with_failure_model(Schedule::new().carve(path.carve_failures(dims)))
        .with_safety_checks(false);
    carved.run(k);

    assert_eq!(
        natural.metrics().consumed_total(),
        carved.metrics().consumed_total(),
        "carving the already-shortest path changed behavior"
    );
}
